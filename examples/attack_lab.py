#!/usr/bin/env python3
"""The attacker's lab: every adversary analysis against three defenses.

Reproduces the resilience story of Sections 2.1 and 5: the naive
Listing-2 bombs and SSN fall to standard analyses, BombDroid does not.

Run:  python examples/attack_lab.py
"""

from repro import BombDroid, BombDroidConfig, build_named_app
from repro.attacks import (
    DeletionAttack,
    ForcedExecutionAttack,
    InstrumentationAttack,
    SlicingAttack,
    SymbolicAttack,
    TextSearchAttack,
)
from repro.core import SSNConfig, SSNProtector
from repro.core.naive import NaiveProtector
from repro.crypto import RSAKeyPair


def verdict(result) -> str:
    return "DEFEATED" if result.defeated_defense else "resisted"


def main() -> None:
    bundle = build_named_app("Hash Droid", scale=0.5)
    attacker = RSAKeyPair.generate(seed=4242)
    original_key = bundle.apk.cert.fingerprint_hex()

    naive, _ = NaiveProtector(seed=2).protect(bundle.apk, bundle.developer_key)
    ssn, _ = SSNProtector(SSNConfig(seed=2)).protect(bundle.apk, bundle.developer_key)
    bombdroid, report = BombDroid(BombDroidConfig(seed=2, profiling_events=800)).protect(
        bundle.apk, bundle.developer_key
    )
    targets = [("naive bombs", naive), ("SSN", ssn), ("BombDroid", bombdroid)]

    print(f"target app: {bundle.name} | BombDroid bombs: {report.total_injected}\n")
    print(f"{'attack':<28}{'naive bombs':<16}{'SSN':<16}{'BombDroid':<16}")
    print("-" * 76)

    rows = []

    results = [TextSearchAttack().run(apk) for _, apk in targets]
    rows.append(("text search", results))

    results = [SymbolicAttack(max_paths=32, max_steps=1500).run(apk) for _, apk in targets]
    rows.append(("symbolic execution", results))
    symbolic_bd = results[2]

    results = [
        ForcedExecutionAttack(seed=3, per_method_branches=3).run(apk)
        for _, apk in targets
    ]
    rows.append(("forced execution", results))

    results = [SlicingAttack(seed=3, max_criteria=20).run(apk) for _, apk in targets]
    rows.append(("backward slicing", results))

    instrumentation = InstrumentationAttack(seed=3)
    results = [
        instrumentation.run_against_ssn(naive, attacker, original_key),
        instrumentation.run_against_ssn(ssn, attacker, original_key),
        instrumentation.run_against_bombdroid(bombdroid, attacker, original_key),
    ]
    rows.append(("code instrumentation", results))

    deletion = DeletionAttack(differential_events=500, seed=3)
    results = [
        deletion.run(naive, attacker, original=bundle.apk),
        deletion.run(ssn, attacker, original=bundle.apk),
        deletion.run(bombdroid, attacker, original=bundle.apk),
    ]
    rows.append(("code deletion", results))

    for name, results in rows:
        cells = "".join(f"{verdict(r):<16}" for r in results)
        print(f"{name:<28}{cells}")

    print("\nsymbolic execution against BombDroid:")
    print(f"  bombs located:   {len(symbolic_bd.bombs_found)}")
    print(f"  payloads opened: {len(symbolic_bd.bombs_exposed)}")
    print(f"  hash walls hit:  {symbolic_bd.details['hash_walls']}  <- G1")


if __name__ == "__main__":
    main()
