#!/usr/bin/env python3
"""Quickstart: protect an app, pirate it, watch it defend itself.

Run:  python examples/quickstart.py
"""

from repro import BombDroid, BombDroidConfig, build_named_app, repackage
from repro.crypto import RSAKeyPair
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import DevicePopulation, Runtime


def main() -> None:
    # 1. An honest developer builds and signs an app.
    bundle = build_named_app("AndroFish")
    print(f"built {bundle.name}: {bundle.dex.instruction_count()} instructions, "
          f"{len(bundle.dex.classes)} classes")

    # 2. BombDroid laces it with cryptographically obfuscated logic bombs.
    protected, report = BombDroid(BombDroidConfig(seed=1, profiling_events=2000)).protect(
        bundle.apk, bundle.developer_key
    )
    print(report.summary())
    print(f"  size increase: {report.size_increase:.1%}")

    # 2b. The verifier + stealth lint confirm the surgery left a
    #     well-formed app that leaks none of the defense's secrets.
    from repro.lint import errors, run_lint

    diagnostics = run_lint(protected.dex(), report=report)
    if errors(diagnostics):
        raise SystemExit("\n".join(d.format() for d in errors(diagnostics)))
    print(f"lint: 0 errors across {sum(1 for _ in protected.dex().iter_methods())} "
          f"methods ({len(diagnostics)} advisory diagnostics)")

    # 3. The protected app behaves exactly like the original for real users.
    runtime = Runtime(protected.dex(), package=protected.install_view(), seed=7)
    runtime.boot()
    for event in DynodroidGenerator(protected.dex(), seed=7).stream(500):
        runtime.dispatch(event)
    print(f"genuine install: {len(runtime.detections)} detections "
          f"(must be 0), app state intact")

    # 4. A pirate repackages it: new icon, new author, injected adware,
    #    re-signed with their own key.
    pirate_key = RSAKeyPair.generate(seed=666)
    pirated = repackage(protected, pirate_key)
    print(f"pirated copy signed by {pirated.cert.fingerprint_hex()[:16]}... "
          f"(original: {protected.cert.fingerprint_hex()[:16]}...)")

    # 5. On user devices, bombs start going off.
    population = DevicePopulation(seed=3)
    detected_on = 0
    for index in range(10):
        user_runtime = Runtime(
            pirated.dex(),
            device=population.sample(),
            package=pirated.install_view(),
            seed=index,
        )
        try:
            user_runtime.boot()
        except VMError:
            pass
        for event in DynodroidGenerator(pirated.dex(), seed=index).stream(600):
            try:
                user_runtime.dispatch(event)
            except VMError:
                pass  # crash responses look like instability to the pirate's "customers"
        if user_runtime.detections:
            detected_on += 1
    print(f"repackaging detected on {detected_on}/10 simulated user devices")


if __name__ == "__main__":
    main()
