#!/usr/bin/env python3
"""Protecting your own app written in repro assembly.

Shows the lowest-level workflow: write an app in the text ISA, package
and sign it, protect it, and read the before/after disassembly to see
exactly what BombDroid did to your qualified conditions.

Run:  python examples/custom_app.py
"""

from repro.apk import Resources, build_apk
from repro.core import BombDroid, BombDroidConfig
from repro.crypto import RSAKeyPair
from repro.dex import assemble, disassemble
from repro.vm import Runtime
from repro.vm.events import Event, EventKind

APP_SOURCE = """
.class Vault
.field balance static 1000
.field pin_ok static false
.method main 0
    const r0, 1000
    sput r0, Vault.balance
    return_void
.end
.method on_text 1
    # A string qualified condition: the PIN check.
    const r1, "0451"
    invoke r2, java.str.equals, r0, r1
    if_eqz r2, @denied
    const r3, true
    sput r3, Vault.pin_ok
@denied:
    return_void
.end
.method on_menu 1
    # An integer qualified condition: menu item 7 is "withdraw".
    const r1, 7
    if_ne r0, r1, @done
    sget r2, Vault.pin_ok
    if_eqz r2, @done
    sget r3, Vault.balance
    sub_lit r3, r3, 100
    sput r3, Vault.balance
@done:
    return_void
.end
"""


def main() -> None:
    dex = assemble(APP_SOURCE)
    developer_key = RSAKeyPair.generate(seed=51)
    apk = build_apk(
        dex,
        Resources(
            strings={
                "app_name": "Vault",
                "tagline": "keep your numbers safe with us every day and night always",
            },
            app_name="Vault",
        ),
        developer_key,
    )

    print("=== before protection: Vault.on_text ===")
    print("\n".join(disassemble(dex).splitlines()[:30]))

    protected, report = BombDroid(
        BombDroidConfig(seed=9, profiling_events=300)
    ).protect(apk, developer_key)
    print(f"\n{report.summary()}")
    for bomb in report.bombs:
        print(
            f"  {bomb.bomb_id}: {bomb.origin.value:<10} {bomb.strength.value:<7} "
            f"at {bomb.method}"
            + (f"  inner: {bomb.inner_description}" if bomb.inner_description else "")
        )

    print("\n=== after protection (excerpt) ===")
    listing = disassemble(protected.dex())
    interesting = [
        line for line in listing.splitlines() if "bomb." in line or ".method" in line
    ]
    print("\n".join(interesting[:25]))
    # The PIN was the trigger constant; it is removed from the code
    # entirely (it now only exists as a salted hash).
    print(f'\nnote: the PIN string constant survives in the code: '
          f'{chr(34) + "0451" + chr(34) in listing}')

    # And it still works.
    runtime = Runtime(protected.dex(), package=protected.install_view(), seed=1)
    runtime.boot()
    runtime.dispatch(Event(EventKind.TEXT, "Vault", ("0451",)))
    runtime.dispatch(Event(EventKind.MENU, "Vault", (7,)))
    print(f"balance after PIN + withdraw: {runtime.statics['Vault.balance']} (expect 900)")


if __name__ == "__main__":
    main()
