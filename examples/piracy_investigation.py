#!/usr/bin/env python3
"""Developer-side piracy investigation.

The paper's intro scenario: a dishonest developer unpacks your app,
swaps the author info, injects adware and resells it.  This example
shows the decentralized detection pipeline from the *honest developer's*
desk: users' devices detect the repackaging, REPORT responses flow
home, and the aggregated evidence identifies the pirate's signing key
-- the artifact you attach to a market takedown request.

Run:  python examples/piracy_investigation.py
"""

from repro import BombDroid, BombDroidConfig, build_named_app, repackage
from repro.core.config import DetectionMethod, ResponseKind
from repro.crypto import RSAKeyPair
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.repack import RepackOptions
from repro.userside import AggregatedVerdict, DetectionAggregator
from repro.vm import DevicePopulation, Runtime


def main() -> None:
    bundle = build_named_app("Calendar")
    config = BombDroidConfig(
        seed=11,
        profiling_events=1500,
        # Bias responses toward REPORT so evidence reaches the developer.
        responses=(ResponseKind.REPORT, ResponseKind.WARN, ResponseKind.CRASH),
        detection_methods=(DetectionMethod.PUBLIC_KEY, DetectionMethod.CODE_DIGEST),
    )
    protected, report = BombDroid(config).protect(bundle.apk, bundle.developer_key)
    print(f"shipped {bundle.name} with {report.total_injected} bombs")

    # Two different pirates repackage the app independently.
    pirate_a = RSAKeyPair.generate(seed=901)
    pirate_b = RSAKeyPair.generate(seed=902)
    pirated_a = repackage(protected, pirate_a, RepackOptions(new_author="free-apps-4u"))
    pirated_b = repackage(protected, pirate_b, RepackOptions(new_author="apkmirror-clone"))

    aggregator = DetectionAggregator(
        app_name=bundle.name,
        original_key_hex=bundle.developer_key.public.fingerprint().hex(),
        report_threshold=3,
    )

    # Users download from different shady sources.
    population = DevicePopulation(seed=5)
    sessions = 0
    for index in range(16):
        pirated = pirated_a if index % 3 else pirated_b
        runtime = Runtime(
            pirated.dex(),
            device=population.sample(),
            package=pirated.install_view(),
            seed=index,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        for event in DynodroidGenerator(pirated.dex(), seed=index).stream(700):
            try:
                runtime.dispatch(event)
            except VMError:
                pass
        aggregator.ingest_session(runtime)
        sessions += 1

    print(f"\naggregated {sessions} user sessions:")
    print(f"  store rating: {aggregator.average_rating:.1f} / 5.0")
    print(f"  reports received: {len(aggregator.reports)}")
    verdict, offender = aggregator.verdict()
    print(f"  verdict: {verdict.value}")
    if verdict is AggregatedVerdict.TAKEDOWN:
        owner = "pirate A" if offender == pirate_a.public.fingerprint().hex() else "pirate B"
        print(f"  takedown request against key {offender[:20]}... ({owner})")


if __name__ == "__main__":
    main()
