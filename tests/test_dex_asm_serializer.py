"""Assembler, disassembler and binary serializer round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.dex import (
    assemble,
    assemble_method,
    deserialize_dex,
    disassemble,
    serialize_dex,
)
from repro.dex.assembler import parse_literal
from repro.dex.disassembler import format_literal
from repro.errors import DexError, DexFormatError


FULL_SOURCE = """
.class Game
.field score static 0
.field name static "player one"
.field blob static hex:DEADBEEF
.field flag static true
.field slot
.method on_touch 2
    const r2, 5           # a comment
    if_eq r0, r2, @hit
    switch r1, {1 -> @a, "s" -> @b, -3 -> @a}
    return_void
@hit:
    sget r3, Game.score
    add_lit r3, r3, 10
    sput r3, Game.score
    invoke r4, java.str.from_int, r3
    invoke _, android.log.i, r4
    return_void
@a:
    const r5, "with, comma and \\"quote\\""
    return_void
@b:
    const r6, null
    new_instance r7, Game
    iput r6, r7, slot
    iget r6, r7, slot
    const r8, 3
    new_array r9, r8
    aput r8, r9, r6
    aget r6, r9, r6
    array_len r6, r9
    neg r6, r6
    not r6, r6
    cmp r6, r6, r8
    throw r5
.end
"""


def test_full_roundtrip_text_and_binary():
    dex = assemble(FULL_SOURCE)
    text = disassemble(dex)
    dex2 = assemble(text)
    assert disassemble(dex2) == text
    blob = serialize_dex(dex)
    assert serialize_dex(deserialize_dex(blob)) == blob
    assert disassemble(deserialize_dex(blob)) == text


def test_assemble_method_infers_registers():
    method = assemble_method("const r5, 1\nreturn r5", params=2)
    assert method.registers == 6
    assert method.params == 2


class TestLiterals:
    @pytest.mark.parametrize(
        "token,value",
        [
            ("42", 42),
            ("-7", -7),
            ("0x10", 16),
            ("true", True),
            ("false", False),
            ("null", None),
            ('"hi"', "hi"),
            ('"a\\nb"', "a\nb"),
            ("hex:00FF", b"\x00\xff"),
        ],
    )
    def test_parse(self, token, value):
        assert parse_literal(token) == value

    def test_parse_bad_literal(self):
        with pytest.raises(DexError):
            parse_literal("@nope")

    @given(
        st.one_of(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.booleans(),
            st.none(),
            st.text(max_size=40),
            st.binary(max_size=20),
        )
    )
    def test_format_parse_roundtrip(self, value):
        assert parse_literal(format_literal(value)) == value


class TestAssemblerErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(DexError, match="unknown mnemonic"):
            assemble_method("frobnicate r1")

    def test_wrong_operand_count(self):
        with pytest.raises(DexError, match="expects"):
            assemble_method("const r1")

    def test_undefined_label(self):
        with pytest.raises(DexError):
            assemble_method("goto @nowhere")

    def test_unterminated_method(self):
        with pytest.raises(DexError, match="unterminated"):
            assemble(".class A\n.method m 0\nreturn_void\n")

    def test_field_outside_class(self):
        with pytest.raises(DexError):
            assemble(".field x static 0")

    def test_line_numbers_in_errors(self):
        with pytest.raises(DexError, match="line 3"):
            assemble(".class A\n.method m 0\nbogus r1\nreturn_void\n.end")


class TestSerializerErrors:
    def test_bad_magic(self):
        with pytest.raises(DexFormatError, match="magic"):
            deserialize_dex(b"NOPE" + b"\x00" * 10)

    def test_truncated_blob(self):
        blob = serialize_dex(assemble(".class A\n.method m 0\nreturn_void\n.end"))
        with pytest.raises(DexFormatError):
            deserialize_dex(blob[:-3])

    def test_trailing_garbage(self):
        # With the v2 crc footer, appended junk shifts the footer and is
        # diagnosed as corruption before the parser ever runs.
        blob = serialize_dex(assemble(".class A\n.method m 0\nreturn_void\n.end"))
        with pytest.raises(DexFormatError, match="crc mismatch"):
            deserialize_dex(blob + b"junk")

    def test_trailing_garbage_legacy_v1(self):
        # Legacy v1 blobs have no footer; the parser still refuses to
        # leave unconsumed bytes behind.
        blob = serialize_dex(assemble(".class A\n.method m 0\nreturn_void\n.end"))
        legacy = blob[:4] + b"\x00\x01" + blob[6:-4]
        assert deserialize_dex(legacy).classes  # v1 still parses
        with pytest.raises(DexFormatError, match="trailing"):
            deserialize_dex(legacy + b"junk")

    def test_bit_flip_always_detected(self):
        blob = serialize_dex(assemble(".class A\n.method m 0\nreturn_void\n.end"))
        for byte_index in range(6, len(blob)):
            corrupted = bytearray(blob)
            corrupted[byte_index] ^= 0x40
            with pytest.raises(DexFormatError):
                deserialize_dex(bytes(corrupted))

    def test_random_bytes_rejected(self):
        with pytest.raises(DexFormatError):
            deserialize_dex(b"RDEX\x00\x01\x00\x05" + b"\xff" * 40)


@given(st.binary(min_size=8, max_size=64))
def test_fuzzed_blobs_never_crash_uncontrolled(data):
    # The class loader feeds attacker-influenced bytes here; only the
    # library's own error type may escape.
    try:
        deserialize_dex(b"RDEX" + data)
    except DexFormatError:
        pass
    except (UnicodeDecodeError, OverflowError, MemoryError):
        pytest.fail("deserializer leaked a non-library exception")
