"""Shared fixtures.

Protection runs are expensive (profiling + payload crypto), so the
fixtures that produce protected/repackaged apps are session-scoped and
derived from one small deterministic app.
"""

from __future__ import annotations

import pytest

from repro.apk.package import Apk, build_apk
from repro.apk.resources import Resources
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind
from repro.crypto import RSAKeyPair
from repro.dex import assemble


SMALL_APP_SOURCE = """
.class Game
.field score static 0
.field mode static 0
.field label static "idle"
.field flag static false
.method main 0
    const r0, 0
    sput r0, Game.score
    return_void
.end
.method on_touch 2
    const r2, 5
    if_ne r0, r2, @skip
    sget r3, Game.score
    add_lit r3, r3, 10
    sput r3, Game.score
@skip:
    sget r4, Game.mode
    add r4, r4, r0
    sput r4, Game.mode
    return_void
.end
.method on_menu 1
    switch r0, {1 -> @one, 2 -> @two}
    return_void
@one:
    const r1, 100
    sput r1, Game.score
    goto @end
@two:
    const r1, 200
    sput r1, Game.score
    goto @end
@end:
    return_void
.end
.method on_text 1
    const r1, "cheat"
    invoke r2, java.str.equals, r0, r1
    if_eqz r2, @no
    const r3, 9999
    sput r3, Game.score
@no:
    sput r0, Game.label
    return_void
.end
.method on_key 1
    rem_lit r1, r0, 8
    const r2, 3
    if_ne r1, r2, @out
    sget r3, Game.mode
    add_lit r3, r3, 1
    sput r3, Game.mode
@out:
    return_void
.end
.method helper 1
    mul_lit r1, r0, 3
    add_lit r1, r1, 2
    return r1
.end
"""


@pytest.fixture(scope="session")
def developer_key() -> RSAKeyPair:
    return RSAKeyPair.generate(seed=11)


@pytest.fixture(scope="session")
def attacker_key() -> RSAKeyPair:
    return RSAKeyPair.generate(seed=666)


@pytest.fixture(scope="session")
def small_apk(developer_key) -> Apk:
    dex = assemble(SMALL_APP_SOURCE)
    resources = Resources(
        strings={
            "app_name": "Game",
            "greeting": "Welcome to the Game application enjoy playing it today friend",
        },
        app_name="Game",
        author="honest-dev",
    )
    return build_apk(dex, resources, developer_key)


@pytest.fixture(scope="session")
def protection(small_apk, developer_key):
    """ProtectionResult for the small app, all detection methods."""
    # Seed picked so the fixture app yields bombs of every origin AND a
    # repackaged build detonates quickly under the detection tests.
    config = BombDroidConfig(
        seed=4,
        profiling_events=400,
        detection_methods=(
            DetectionMethod.PUBLIC_KEY,
            DetectionMethod.CODE_DIGEST,
            DetectionMethod.CODE_SCAN,
        ),
        responses=(
            ResponseKind.CRASH,
            ResponseKind.WARN,
            ResponseKind.REPORT,
            ResponseKind.SLOWDOWN,
        ),
    )
    return BombDroid(config).protect(small_apk, developer_key)


@pytest.fixture(scope="session")
def protected_apk(protection) -> Apk:
    return protection.apk


@pytest.fixture(scope="session")
def protection_report(protection):
    return protection.report


@pytest.fixture(scope="session")
def pirated_apk(protected_apk, attacker_key) -> Apk:
    from repro.repack import repackage

    return repackage(protected_apk, attacker_key)
