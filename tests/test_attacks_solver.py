"""The symbolic-execution constraint solver."""

import pytest
from hypothesis import given, strategies as st

from repro.attacks.solver import (
    BinExpr,
    Const,
    Constraint,
    EqExpr,
    HashExpr,
    Solver,
    Sym,
    Unsat,
    make_binop,
)
from repro.errors import UnsolvableConstraint


X = Sym("x", "int")
S = Sym("s", "str")


def solve(*constraints):
    return Solver().solve(list(constraints))


class TestBasics:
    def test_direct_equality(self):
        model = solve(Constraint("eq", X, Const(42)))
        assert model["x"] == 42

    def test_contradiction(self):
        with pytest.raises(Unsat):
            solve(Constraint("eq", X, Const(1)), Constraint("eq", X, Const(2)))

    def test_eq_and_ne_conflict(self):
        with pytest.raises(Unsat):
            solve(Constraint("eq", X, Const(5)), Constraint("ne", X, Const(5)))

    def test_interval(self):
        model = solve(
            Constraint("ge", X, Const(10)), Constraint("lt", X, Const(12))
        )
        assert model["x"] in (10, 11)

    def test_empty_interval(self):
        with pytest.raises(Unsat):
            solve(Constraint("ge", X, Const(10)), Constraint("lt", X, Const(10)))

    def test_exclusions_respected(self):
        model = solve(
            Constraint("ge", X, Const(0)),
            Constraint("le", X, Const(2)),
            Constraint("ne", X, Const(0)),
            Constraint("ne", X, Const(1)),
        )
        assert model["x"] == 2

    def test_string_equality(self):
        model = solve(Constraint("eq", S, Const("magic")))
        assert model["s"] == "magic"

    def test_string_ne_avoided(self):
        model = solve(Constraint("ne", S, Const("?")))
        assert model["s"] != "?"

    def test_concrete_tautology_ok(self):
        solve(Constraint("eq", Const(3), Const(3)))

    def test_concrete_contradiction(self):
        with pytest.raises(Unsat):
            solve(Constraint("eq", Const(3), Const(4)))


class TestAffineInversion:
    def test_add_chain(self):
        expr = make_binop("add", X, Const(10))
        model = solve(Constraint("eq", expr, Const(17)))
        assert model["x"] == 7

    def test_mul_add_chain(self):
        # 3x + 2 == 11  =>  x == 3
        expr = make_binop("add", make_binop("mul", X, Const(3)), Const(2))
        model = solve(Constraint("eq", expr, Const(11)))
        assert model["x"] == 3

    def test_mul_without_integer_solution(self):
        expr = make_binop("mul", X, Const(3))
        with pytest.raises(Unsat):
            solve(Constraint("eq", expr, Const(10)))

    def test_xor_inversion(self):
        expr = make_binop("xor", X, Const(0xFF))
        model = solve(Constraint("eq", expr, Const(0x0F)))
        assert model["x"] == 0xF0

    def test_const_minus_x(self):
        expr = make_binop("sub", Const(100), X)
        model = solve(Constraint("eq", expr, Const(58)))
        assert model["x"] == 42

    def test_congruence(self):
        # x % 8 == 5
        expr = make_binop("rem", X, Const(8))
        model = solve(Constraint("eq", expr, Const(5)))
        assert model["x"] % 8 == 5

    def test_congruence_with_bounds(self):
        expr = make_binop("rem", X, Const(8))
        model = solve(
            Constraint("eq", expr, Const(5)),
            Constraint("ge", X, Const(100)),
            Constraint("lt", X, Const(120)),
        )
        assert 100 <= model["x"] < 120 and model["x"] % 8 == 5

    @given(
        st.integers(min_value=-(2**20), max_value=2**20),
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=-1000, max_value=1000),
    )
    def test_affine_roundtrip_property(self, x_value, scale, offset):
        """solve(scale*x + offset == scale*v + offset) recovers a valid x."""
        target = scale * x_value + offset
        expr = make_binop("add", make_binop("mul", X, Const(scale)), Const(offset))
        model = solve(Constraint("eq", expr, Const(target)))
        assert scale * model["x"] + offset == target


class TestHashOpacity:
    def test_hash_equality_unsolvable(self):
        expr = HashExpr(X, "salt")
        with pytest.raises(UnsolvableConstraint):
            solve(Constraint("eq", expr, Const("ab" * 20)))

    def test_hash_disequality_satisfiable(self):
        expr = HashExpr(X, "salt")
        solve(Constraint("ne", expr, Const("ab" * 20)))

    def test_eq_expr_over_hash_unsolvable(self):
        # (hash(x) == Hc) == true  -- the exact bomb branch shape.
        boolean = EqExpr(HashExpr(X, "salt"), Const("ab" * 20))
        with pytest.raises(UnsolvableConstraint):
            solve(Constraint("ne", boolean, Const(0)))

    def test_eq_expr_over_hash_false_side_fine(self):
        boolean = EqExpr(HashExpr(X, "salt"), Const("ab" * 20))
        solve(Constraint("eq", boolean, Const(0)))


class TestEqExprReduction:
    def test_string_compare_true_branch(self):
        boolean = EqExpr(S, Const("magic"))
        model = solve(Constraint("ne", boolean, Const(0)))
        assert model["s"] == "magic"

    def test_string_compare_false_branch(self):
        boolean = EqExpr(S, Const("magic"))
        model = solve(Constraint("eq", boolean, Const(0)))
        assert model["s"] != "magic"


class TestFolding:
    def test_constant_folding(self):
        assert make_binop("add", Const(2), Const(3)) == Const(5)
        assert make_binop("mul", Const(-4), Const(3)) == Const(-12)

    def test_folding_wraps_32bit(self):
        folded = make_binop("add", Const(2**31 - 1), Const(1))
        assert folded == Const(-(2**31))

    def test_division_by_zero_stays_symbolic(self):
        expr = make_binop("div", Const(4), Const(0))
        assert isinstance(expr, BinExpr)
