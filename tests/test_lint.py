"""Stealth lint rules over seeded violations and real protected apps.

Each seeded test plants exactly the defect its rule hunts (a bomb woven
inside a loop, a trigger constant back in plaintext, a tampered unpack
sequence...) and asserts the exact rule id.  The clean-app tests then
pin the other direction: the whole corpus and freshly protected apps
must produce zero error-severity diagnostics.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.qualified_conditions import Strength
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind
from repro.core.stats import Bomb, BombOrigin
from repro.corpus.generator import generate_corpus
from repro.crypto import RSAKeyPair
from repro.dex import assemble
from repro.errors import VerificationError
from repro.lint import (
    RULES,
    Severity,
    bomb_sites,
    errors,
    format_report,
    max_severity,
    run_lint,
    selected_rules,
)


def bomb_record(**overrides) -> Bomb:
    base = dict(
        bomb_id="b001",
        method="A.m",
        origin=BombOrigin.EXISTING,
        strength=Strength.MEDIUM,
        const_value=5,
        salt_hex="aa" * 12,
        hc_hex="bb" * 20,
        payload_class="Bomb$b001",
        woven=True,
        detection=DetectionMethod.PUBLIC_KEY,
        response=ResponseKind.CRASH,
    )
    base.update(overrides)
    return Bomb(**base)


def report_with(*bombs):
    return SimpleNamespace(bombs=list(bombs))


def stealth_only(dex, **kwargs):
    """Lint without the verifier layer: seeded methods here are minimal
    shapes, not fully-formed programs."""
    return run_lint(dex, include_verifier=False, **kwargs)


class TestLeakedTriggerConst:
    def test_erased_const_back_in_comparison(self):
        dex = assemble(
            ".class A\n.method m 1\n"
            "const r1, 5\nif_eq r0, r1, @hit\nreturn_void\n"
            "@hit:\nreturn_void\n.end"
        )
        report = report_with(bomb_record(const_value=5, const_erased=True))
        diagnostics = stealth_only(dex, report=report)
        assert [d.rule for d in diagnostics] == ["leaked-trigger-const"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_value_collision_outside_comparison_not_flagged(self):
        # The same literal used as a loop bound is not a leak.
        dex = assemble(
            ".class A\n.method m 1\n"
            "const r1, 5\nadd r2, r0, r1\nreturn r2\n.end"
        )
        report = report_with(bomb_record(const_value=5, const_erased=True))
        assert stealth_only(dex, report=report) == []

    def test_surviving_trigger_string_warns(self):
        dex = assemble(
            '.class A\n.method m 1\n'
            'const r1, "magic-word"\n'
            'invoke r2, java.str.equals, r0, r1\n'
            'return r2\n.end'
        )
        report = report_with(
            bomb_record(const_value="magic-word", const_erased=False)
        )
        diagnostics = stealth_only(dex, report=report)
        assert [d.rule for d in diagnostics] == ["leaked-trigger-const"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_needs_report(self):
        dex = assemble(
            ".class A\n.method m 1\nconst r1, 5\n"
            "if_eq r0, r1, @x\n@x:\nreturn_void\n.end"
        )
        assert stealth_only(dex) == []


class TestBombInLoop:
    def test_hash_inside_natural_loop(self):
        dex = assemble(
            ".class A\n.method m 1\n"
            "const r1, 0\n"
            "@loop:\n"
            "if_ge r1, r0, @done\n"
            'const r2, "aabb"\nconst r3, "b001"\n'
            "invoke r4, bomb.hash, r1, r2, r3\n"
            "add_lit r1, r1, 1\n"
            "goto @loop\n"
            "@done:\nreturn_void\n.end"
        )
        diagnostics = stealth_only(dex)
        assert "bomb-in-loop" in {d.rule for d in diagnostics}
        assert errors(diagnostics)

    def test_hash_outside_loop_clean(self):
        dex = assemble(
            ".class A\n.method m 1\n"
            'const r2, "aabb"\nconst r3, "b001"\n'
            "invoke r4, bomb.hash, r0, r2, r3\n"
            "return_void\n.end"
        )
        assert all(d.rule != "bomb-in-loop" for d in stealth_only(dex))


class TestLiveSetMismatch:
    # A minimal Listing-3 shape: one live register (r0) packed into
    # slot 0 of a 3-slot array (1 live + control + return-value slots),
    # then unpacked after bomb.load_run.
    SHAPE = (
        ".class A\n.method m 1\n"
        'const r2, "aabb"\nconst r3, "b001"\n'
        "invoke r4, bomb.hash, r0, r2, r3\n"
        "const r5, 3\n"
        "new_array r6, r5\n"
        "const r7, 0\n"
        "aput r0, r6, r7\n"
        'const r8, "Bomb$b001.run"\n'
        "invoke r9, bomb.load_run, r4, r8, r6, r0\n"
        "const r7, 0\n"
        "aget {unpack_reg}, r9, r7\n"
        "return_void\n.end"
    )

    def test_tampered_unpack_detected(self):
        # The adversary retargets the unpack AGET: r0 went into the
        # payload, but r1 comes back out, so the woven state no longer
        # round-trips.
        dex = assemble(self.SHAPE.format(unpack_reg="r1"))
        diagnostics = stealth_only(dex)
        flagged = [d for d in diagnostics if d.rule == "live-set-mismatch"]
        assert flagged and flagged[0].is_error
        assert "unpacks" in flagged[0].message

    def test_missing_slot_detected(self):
        # Declared length says one live slot, but nothing is packed.
        source = self.SHAPE.format(unpack_reg="r0").replace(
            "aput r0, r6, r7\n", ""
        )
        diagnostics = stealth_only(assemble(source))
        flagged = [d for d in diagnostics if d.rule == "live-set-mismatch"]
        assert flagged and "packs slots" in flagged[0].message

    def test_round_tripping_shape_clean(self):
        dex = assemble(self.SHAPE.format(unpack_reg="r0"))
        diagnostics = stealth_only(dex)
        assert all(d.rule != "live-set-mismatch" for d in diagnostics)

    def test_intact_app_clean(self, protected_apk, protection_report):
        diagnostics = stealth_only(protected_apk.dex(), report=protection_report)
        assert all(d.rule != "live-set-mismatch" for d in diagnostics)

    def test_recorded_regs_cross_checked(self, protected_apk, protection_report):
        # Every recovered site's packing must match the liveness result
        # the instrumenter recorded at weave time.
        sites = bomb_sites(protected_apk.dex())
        by_id = {b.bomb_id: b for b in protection_report.bombs}
        checked = 0
        for site in sites:
            bomb = by_id.get(site.bomb_id)
            if bomb is None or site.packed_count is None:
                continue
            packed = tuple(
                site.packed_stores[i] for i in sorted(site.packed_stores)
            )
            assert packed == bomb.packed_regs
            checked += 1
        assert checked > 0


class TestTextSearchSurface:
    def test_plaintext_detection_api_invoke(self):
        dex = assemble(
            ".class A\n.method m 0\n"
            "invoke r0, android.pm.get_public_key\nreturn r0\n.end"
        )
        diagnostics = stealth_only(dex)
        assert [d.rule for d in diagnostics] == ["text-search-surface"]
        assert diagnostics[0].is_error

    def test_api_name_in_string_constant(self):
        dex = assemble(
            '.class A\n.method m 0\n'
            'const r0, "calls get_manifest_digest later"\nreturn r0\n.end'
        )
        assert [d.rule for d in stealth_only(dex)] == ["text-search-surface"]

    def test_innocent_strings_clean(self):
        dex = assemble(
            '.class A\n.method m 0\nconst r0, "hello world"\nreturn r0\n.end'
        )
        assert stealth_only(dex) == []


class TestWeakSalt:
    def test_salt_reuse_across_bombs(self):
        dex = assemble(".class A\n.method m 0\nreturn_void\n.end")
        report = report_with(
            bomb_record(bomb_id="b001", salt_hex="cc" * 12),
            bomb_record(bomb_id="b002", salt_hex="cc" * 12, const_value=None),
        )
        diagnostics = stealth_only(dex, report=report)
        assert [d.rule for d in diagnostics] == ["weak-salt"]
        assert "b001" in diagnostics[0].message

    def test_salt_reuse_recovered_from_bytecode(self):
        # No report: the rule must find the duplicate salts in the
        # prologues themselves.
        dex = assemble(
            ".class A\n.method m 1\n"
            'const r2, "deadbeef"\nconst r3, "b001"\n'
            "invoke r4, bomb.hash, r0, r2, r3\n"
            'const r5, "deadbeef"\nconst r6, "b002"\n'
            "invoke r7, bomb.hash, r0, r5, r6\n"
            "return_void\n.end"
        )
        diagnostics = stealth_only(dex, rules=["weak-salt"])
        assert [d.rule for d in diagnostics] == ["weak-salt"]

    def test_distinct_salts_clean(self):
        dex = assemble(".class A\n.method m 0\nreturn_void\n.end")
        report = report_with(
            bomb_record(bomb_id="b001", salt_hex="cc" * 12),
            bomb_record(bomb_id="b002", salt_hex="dd" * 12, const_value=None),
        )
        assert stealth_only(dex, report=report) == []


class TestLowEntropyQc:
    SOURCE = (
        ".class A\n.field mode static 0\n.method m 0\n"
        "sget r0, A.mode\n"
        'const r1, "aabb"\nconst r2, "b001"\n'
        "invoke r3, bomb.hash, r0, r1, r2\n"
        "return_void\n.end"
    )

    def test_low_entropy_field_warns(self):
        diagnostics = stealth_only(
            assemble(self.SOURCE), field_entropy={"A.mode": 2}
        )
        flagged = [d for d in diagnostics if d.rule == "low-entropy-qc"]
        assert flagged and flagged[0].severity is Severity.WARNING

    def test_high_entropy_field_clean(self):
        diagnostics = stealth_only(
            assemble(self.SOURCE), field_entropy={"A.mode": 40}
        )
        assert all(d.rule != "low-entropy-qc" for d in diagnostics)


class TestEngine:
    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            selected_rules(["no-such-rule"])

    def test_rule_selection_restricts(self):
        dex = assemble(
            ".class A\n.method m 0\n"
            "invoke r0, android.pm.get_public_key\nreturn r0\n.end"
        )
        assert stealth_only(dex, rules=["weak-salt"]) == []
        assert stealth_only(dex, rules=["text-search-surface"])

    def test_catalog_severities(self):
        assert {rule.severity for rule in RULES.values()} <= {
            Severity.ERROR,
            Severity.WARNING,
        }
        for rule in RULES.values():
            assert rule.paper_ref.startswith("§")

    def test_format_report_and_max_severity(self):
        dex = assemble(
            ".class A\n.method m 0\n"
            "invoke r0, android.pm.get_public_key\nreturn r0\n.end"
        )
        diagnostics = stealth_only(dex)
        assert max_severity(diagnostics) is Severity.ERROR
        rendered = format_report(diagnostics)
        assert "text-search-surface" in rendered
        assert "1 error" in rendered


class TestCleanApps:
    def test_corpus_lints_clean(self):
        for bundle in generate_corpus("Game", 2, scale=0.25, seed=13):
            diagnostics = run_lint(bundle.apk.dex())
            assert not errors(diagnostics), format_report(diagnostics)

    def test_protected_app_lints_clean(self, protected_apk, protection_report):
        diagnostics = run_lint(protected_apk.dex(), report=protection_report)
        assert not errors(diagnostics), format_report(diagnostics)

    def test_protected_corpus_app_lints_clean(self):
        (bundle,) = generate_corpus("Game", 1, scale=0.25, seed=21)
        key = RSAKeyPair.generate(seed=4021)
        protected, report = BombDroid(BombDroidConfig(seed=21)).protect(
            bundle.apk, key
        )
        diagnostics = run_lint(protected.dex(), report=report)
        assert not errors(diagnostics), format_report(diagnostics)


class TestStrictMode:
    def test_strict_protect_succeeds_on_clean_app(self, small_apk, developer_key):
        config = BombDroidConfig(seed=3, profiling_events=400)
        protected, report = BombDroid(config).protect(
            small_apk, developer_key, strict=True
        )
        assert report.total_injected > 0

    def test_strict_protect_refuses_bad_output(
        self, small_apk, developer_key, monkeypatch
    ):
        import repro.lint as lint_module
        from repro.lint import Diagnostic

        planted = Diagnostic(
            rule="text-search-surface",
            severity=Severity.ERROR,
            message="planted for the gate test",
            method="Game.main",
        )
        monkeypatch.setattr(
            lint_module, "run_lint", lambda *args, **kwargs: [planted]
        )
        config = BombDroidConfig(seed=3, profiling_events=400)
        with pytest.raises(VerificationError) as excinfo:
            BombDroid(config).protect(small_apk, developer_key, strict=True)
        assert excinfo.value.diagnostics == [planted]

    def test_non_strict_never_gates(self, small_apk, developer_key, monkeypatch):
        import repro.lint as lint_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("lint ran without strict=True")

        monkeypatch.setattr(lint_module, "run_lint", boom)
        config = BombDroidConfig(seed=3, profiling_events=400)
        protected, _ = BombDroid(config).protect(small_apk, developer_key)
        assert protected is not None
