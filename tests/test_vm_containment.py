"""Containment boundary: payload failures degrade, never crash the host."""

import pytest

from repro.apk import Resources, build_apk
from repro.chaos import FaultPlan, active_plan
from repro.core import BombDroid, BombDroidConfig
from repro.core.payloads import (
    CONTROL_FALLTHROUGH,
    PayloadSpec,
    build_payload_dex,
    decrypt_payload,
    encrypt_payload,
)
from repro.corpus import build_app
from repro.crypto import AES128, RSAKeyPair, Salt, derive_key
from repro.dex import assemble, instructions as ins
from repro.dex.serializer import serialize_dex
from repro.errors import (
    BadPaddingError,
    CryptoError,
    DexFormatError,
    PayloadError,
    ReproError,
    VMCrash,
)
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm import CircuitBreaker, ContainmentPolicy, Runtime, fall_through
from repro.vm.containment import CONTROL_FALLTHROUGH as VM_CONTROL_FALLTHROUGH


APP_SOURCE = ".class A\n.field anchor static 5\n.method on_key 1\nreturn_void\n.end"
BUDGET = 1_000_000


def installed_runtime(containment=None):
    dex = assemble(APP_SOURCE)
    key = RSAKeyPair.generate(seed=2)
    apk = build_apk(dex, Resources(strings={"app_name": "A"}), key)
    return Runtime(
        apk.dex(), package=apk.install_view(), seed=0, containment=containment
    )


def payload_blob(bomb_id="b1", slots=1):
    spec = PayloadSpec(
        bomb_id=bomb_id, payload_class=f"Bomb${bomb_id}", slots=slots, app_name="A"
    )
    return serialize_dex(build_payload_dex(spec)), spec.entry


class TestPolicyPrimitives:
    def test_breaker_trips_after_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.failure("b")
        assert not breaker.failure("b")
        assert breaker.failure("b")          # third failure trips
        assert breaker.is_quarantined("b")
        assert not breaker.failure("b")      # already quarantined: no re-trip

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.failure("b")
        breaker.success("b")
        assert breaker.consecutive_failures("b") == 0
        assert not breaker.failure("b")
        assert not breaker.is_quarantined("b")

    def test_fall_through_sets_control_slot(self):
        assert VM_CONTROL_FALLTHROUGH == CONTROL_FALLTHROUGH
        array = [7, 99, 42]
        assert fall_through(array) is array
        assert array == [7, CONTROL_FALLTHROUGH, 42]


class TestDecryptContainment:
    def _wrong_key_ciphertext(self):
        spec = PayloadSpec(
            bomb_id="b1", payload_class="Bomb$b1", slots=0, app_name="A"
        )
        salt = Salt.from_seed(9)
        ciphertext = encrypt_payload(build_payload_dex(spec), 42, salt)
        return ciphertext, bytes(derive_key(43, salt))

    def test_legacy_wrong_key_still_crashes(self):
        runtime = installed_runtime()
        ciphertext, wrong_key = self._wrong_key_ciphertext()
        with pytest.raises(VMCrash) as info:
            runtime.framework_call(
                "bomb.decrypt", [ciphertext, wrong_key, "b1"], [BUDGET]
            )
        assert info.value.site == "crypto.aes.decrypt"
        assert info.value.bomb_id == "b1"

    def test_contained_wrong_key_returns_sentinel(self):
        runtime = installed_runtime(ContainmentPolicy())
        ciphertext, wrong_key = self._wrong_key_ciphertext()
        blob = runtime.framework_call(
            "bomb.decrypt", [ciphertext, wrong_key, "b1"], [BUDGET]
        )
        assert blob == b""
        assert runtime.bombs.counts["b1"]["payload_error"] == 1
        # The sentinel makes load_run fall through without touching state.
        array = [5, None, None]
        result = runtime.framework_call(
            "bomb.load_run", [b"", "Bomb$b1.run", array, "b1"], [BUDGET]
        )
        assert result == [5, CONTROL_FALLTHROUGH, None]

    def test_strict_policy_reraises_payload_error(self):
        runtime = installed_runtime(ContainmentPolicy(strict=True))
        ciphertext, wrong_key = self._wrong_key_ciphertext()
        with pytest.raises(PayloadError) as info:
            runtime.framework_call(
                "bomb.decrypt", [ciphertext, wrong_key, "b1"], [BUDGET]
            )
        assert info.value.bomb_id == "b1"
        assert info.value.site == "crypto.aes.decrypt"
        assert runtime.bombs.counts["b1"]["payload_error"] == 1


class TestLoadRunContainment:
    def test_garbage_that_decrypts_fine_is_contained(self):
        # A blob that decrypted cleanly (padding valid) but is not a dex.
        runtime = installed_runtime(ContainmentPolicy())
        array = [1, 2, None, None]
        result = runtime.framework_call(
            "bomb.load_run", [b"\x00" * 32, "Bomb$x.run", array, "bx"], [BUDGET]
        )
        assert result == [1, 2, CONTROL_FALLTHROUGH, None]
        assert runtime.bombs.counts["bx"]["payload_error"] == 1

    @pytest.mark.parametrize("corrupt", [
        lambda blob: blob[: len(blob) // 2],                      # truncated
        lambda blob: blob[:10] + bytes([blob[10] ^ 0x10]) + blob[11:],  # bit flip
    ])
    def test_corrupt_blob_contained(self, corrupt):
        runtime = installed_runtime(ContainmentPolicy())
        blob, entry = payload_blob()
        array = [3, None, None]
        result = runtime.framework_call(
            "bomb.load_run", [corrupt(blob), entry, array, "b1"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        assert result[0] == 3
        assert runtime.bombs.counts["b1"]["payload_error"] == 1

    def test_classload_failure_contained(self):
        runtime = installed_runtime(ContainmentPolicy())
        blob, _ = payload_blob()
        array = [3, None, None]
        result = runtime.framework_call(
            "bomb.load_run", [blob, "Bomb$b1.no_such", array, "b1"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        assert runtime.bombs.counts["b1"]["payload_error"] == 1

    def test_budget_exhaustion_inside_payload_contained(self):
        runtime = installed_runtime(
            ContainmentPolicy(payload_budget=4)   # fewer than the unpack loop
        )
        blob, entry = payload_blob()
        budget = [BUDGET]
        array = [3, None, None]
        result = runtime.framework_call(
            "bomb.load_run", [blob, entry, array, "b1"], budget
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        assert runtime.bombs.counts["b1"]["payload_error"] == 1
        # The payload sub-budget capped the damage to the host's budget.
        assert BUDGET - budget[0] <= 10

    def test_quarantine_after_consecutive_failures(self):
        runtime = installed_runtime(ContainmentPolicy(max_consecutive_failures=2))
        array = [None, None]
        for _ in range(2):
            runtime.framework_call(
                "bomb.load_run", [b"junk", "Bomb$q.run", array, "bq"], [BUDGET]
            )
        counts = runtime.bombs.counts["bq"]
        assert counts["payload_error"] == 2
        assert counts["quarantined"] == 1
        # Quarantined: the payload is skipped entirely from now on.
        blob, entry = payload_blob(bomb_id="bq")
        result = runtime.framework_call(
            "bomb.load_run", [blob, entry, [1, None, None], "bq"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        # Only the two failing runs recorded payload_run; the skipped
        # firing never reached the payload.
        assert runtime.bombs.counts["bq"]["payload_run"] == 2

    def test_success_resets_the_breaker(self):
        runtime = installed_runtime(ContainmentPolicy(max_consecutive_failures=2))
        blob, entry = payload_blob()
        runtime.framework_call(
            "bomb.load_run", [b"junk", "Bomb$b1.run", [None, None], "b1"], [BUDGET]
        )
        runtime.framework_call(
            "bomb.load_run", [blob, entry, [1, None, None], "b1"], [BUDGET]
        )
        assert runtime.breaker.consecutive_failures("b1") == 0
        assert not runtime.breaker.is_quarantined("b1")

    def test_fault_injected_inside_payload_is_contained(self):
        runtime = installed_runtime(ContainmentPolicy())
        blob, entry = payload_blob()
        plan = FaultPlan(seed=1).arm("vm.classload", "raise")
        with active_plan(plan):
            result = runtime.framework_call(
                "bomb.load_run", [blob, entry, [9, None, None], "b1"], [BUDGET]
            )
        assert result == [9, CONTROL_FALLTHROUGH, None]
        assert runtime.bombs.counts["b1"]["payload_error"] == 1

    def test_kdf_fault_degrades_to_decrypt_failure(self):
        runtime = installed_runtime(ContainmentPolicy())
        salt = Salt.from_seed(3)
        plan = FaultPlan(seed=1).arm("crypto.kdf.derive", "raise")
        with active_plan(plan):
            key = runtime.framework_call(
                "bomb.derive", [42, salt.value.hex()], [BUDGET]
            )
        assert key == b"\x00" * 16
        spec = PayloadSpec(
            bomb_id="bk", payload_class="Bomb$bk", slots=0, app_name="A"
        )
        ciphertext = encrypt_payload(build_payload_dex(spec), 42, salt)
        blob = runtime.framework_call(
            "bomb.decrypt", [ciphertext, key, "bk"], [BUDGET]
        )
        assert blob == b""
        assert runtime.bombs.counts["bk"]["payload_error"] == 1


class TestPartialLoadAndCollisions:
    def test_failed_load_leaves_no_trace(self):
        runtime = installed_runtime()
        blob, _ = payload_blob()
        with pytest.raises(VMCrash) as info:
            runtime.load_blob_method(blob, "Bomb$b1.no_such", bomb_id="b1")
        assert info.value.site == "vm.classload"
        assert info.value.bomb_id == "b1"
        # Nothing was cached or registered: methods, statics, blob cache.
        assert runtime.find_method("Bomb$b1.run") is None
        assert "Bomb$b1.leak" not in runtime.statics
        assert not runtime._blob_cache

    def test_payload_cannot_shadow_app_method(self):
        runtime = installed_runtime()
        impostor = serialize_dex(
            assemble(".class A\n.method on_key 1\nreturn_void\n.end")
        )
        with pytest.raises(VMCrash, match="redefines"):
            runtime.load_blob_method(impostor, "A.on_key")
        # The app's original method is untouched.
        assert runtime.find_method("A.on_key") is not None

    def test_shadowing_payload_contained_at_boundary(self):
        runtime = installed_runtime(ContainmentPolicy())
        impostor = serialize_dex(
            assemble(".class A\n.method on_key 1\nreturn_void\n.end")
        )
        result = runtime.framework_call(
            "bomb.load_run", [impostor, "A.on_key", [None, None], "bs"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        assert runtime.bombs.counts["bs"]["payload_error"] == 1

    def test_reloading_same_dex_object_is_not_a_collision(self):
        runtime = installed_runtime()
        blob, entry = payload_blob()
        first = runtime.load_blob_method(blob, entry)
        assert runtime.load_blob_method(blob, entry) is first


class TestDeliberateResponsesPropagate:
    def _pirated_runtime(self, containment):
        from repro.core.config import DetectionMethod, ResponseKind
        from repro.core.payloads import DetectionSpec

        runtime = installed_runtime(containment)
        spec = PayloadSpec(
            bomb_id="br", payload_class="Bomb$br", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex="ff" * 20
            ),
            response=ResponseKind.CRASH,
        )
        return runtime, serialize_dex(build_payload_dex(spec)), spec.entry

    def test_crash_response_not_contained(self):
        runtime, blob, entry = self._pirated_runtime(ContainmentPolicy())
        with pytest.raises(VMCrash, match="repackaging response"):
            runtime.framework_call(
                "bomb.load_run", [blob, entry, [None, None], "br"], [BUDGET]
            )
        assert runtime.bombs.counts["br"]["responded"] == 1
        assert "payload_error" not in runtime.bombs.counts["br"]


class TestMeshTrippedResponses:
    """Mesh guards are deliberate tamper responses: the responded-delta
    check lets them propagate, and the breaker never quarantines a bomb
    for defending the mesh."""

    def _meshed_blob(self, plan=None):
        from repro.core.config import ResponseKind
        from repro.core.payloads import MeshGuard
        from repro.core.responses import ResponsePlan

        # The guard pins a method that does not exist: bomb.shape_digest
        # returns "" for it, the compare fails, the guard trips -- the
        # same path a deleted peer bomb takes.
        spec = PayloadSpec(
            bomb_id="bm", payload_class="Bomb$bm", slots=0, app_name="A",
            mesh_guards=(
                MeshGuard(
                    peer_id="bp",
                    peer_method="A.deleted_peer",
                    expected_hex="cc" * 20,
                    kind="shape",
                ),
            ),
            mesh_response=plan or ResponsePlan(kind=ResponseKind.CRASH),
        )
        return serialize_dex(build_payload_dex(spec)), spec.entry

    def test_mesh_trip_propagates_through_containment(self):
        runtime = installed_runtime(ContainmentPolicy())
        blob, entry = self._meshed_blob()
        with pytest.raises(VMCrash, match="repackaging response"):
            runtime.framework_call(
                "bomb.load_run", [blob, entry, [None, None], "bm"], [BUDGET]
            )
        counts = runtime.bombs.counts["bm"]
        assert counts["mesh_tripped"] == 1
        assert counts["responded"] == 1
        # Deliberate, not a fault: no payload_error, no breaker damage.
        assert "payload_error" not in counts
        assert not runtime.breaker.is_quarantined("bm")
        assert runtime.breaker.consecutive_failures("bm") == 0

    def test_repeated_trips_never_quarantine(self):
        runtime = installed_runtime(
            ContainmentPolicy(max_consecutive_failures=2)
        )
        blob, entry = self._meshed_blob()
        for _ in range(4):
            with pytest.raises(VMCrash):
                runtime.framework_call(
                    "bomb.load_run", [blob, entry, [None, None], "bm"], [BUDGET]
                )
        counts = runtime.bombs.counts["bm"]
        assert counts["mesh_tripped"] == 4
        assert counts["responded"] == 4
        assert "quarantined" not in counts
        assert not runtime.breaker.is_quarantined("bm")

    def test_delayed_mesh_response_counts_trips_first(self):
        from repro.core.config import ResponseKind
        from repro.core.responses import ResponsePlan

        runtime = installed_runtime(ContainmentPolicy())
        blob, entry = self._meshed_blob(
            ResponsePlan(kind=ResponseKind.CRASH, delay_marks=2)
        )
        # First trip only increments the counter: no response yet, and
        # the clean completion must not look like a payload fault.
        result = runtime.framework_call(
            "bomb.load_run", [blob, entry, [None, None], "bm"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        counts = runtime.bombs.counts["bm"]
        assert counts["mesh_tripped"] == 1
        assert "responded" not in counts
        assert "payload_error" not in counts
        # Second trip reaches the mark threshold and fires.
        with pytest.raises(VMCrash, match="repackaging response"):
            runtime.framework_call(
                "bomb.load_run", [blob, entry, [None, None], "bm"], [BUDGET]
            )
        counts = runtime.bombs.counts["bm"]
        assert counts["mesh_tripped"] == 2
        assert counts["responded"] == 1
        assert not runtime.breaker.is_quarantined("bm")

    def test_env_gated_response_holds_fire_off_cohort(self):
        from repro.core.config import ResponseKind
        from repro.core.responses import ResponsePlan

        runtime = installed_runtime(ContainmentPolicy())
        value = runtime.framework_call(
            "android.env.get", ["build.serial_low"], [BUDGET]
        )
        off_cohort = (value % 2) ^ 1
        blob, entry = self._meshed_blob(
            ResponsePlan(
                kind=ResponseKind.CRASH,
                gate_env="build.serial_low",
                gate_modulus=2,
                gate_residue=off_cohort,
            )
        )
        result = runtime.framework_call(
            "bomb.load_run", [blob, entry, [None, None], "bm"], [BUDGET]
        )
        assert result[-2] == CONTROL_FALLTHROUGH
        counts = runtime.bombs.counts["bm"]
        # The trip is recorded for telemetry, but this device's identity
        # is outside the response cohort: silent, clean, unquarantined.
        assert counts["mesh_tripped"] == 1
        assert "responded" not in counts
        assert "payload_error" not in counts
        assert not runtime.breaker.is_quarantined("bm")


class TestTransparencyEndToEnd:
    def test_contained_faults_keep_host_output_identical(self):
        # Payload-only bombs (weave off): fall-through IS the original
        # branch semantics, so even with every decrypt failing the host
        # app must behave exactly like the unprotected build.
        bundle = build_app("Containment", seed=5, scale=0.3)
        config = BombDroidConfig(seed=5, profiling_events=300, weave=False)
        protected, report = BombDroid(config).protect(
            bundle.apk, bundle.developer_key
        )
        events = list(DynodroidGenerator(bundle.dex, seed=5).stream(400))

        def play(apk, containment=None, plan=None):
            runtime = Runtime(
                apk.dex(), package=apk.install_view(), seed=0,
                containment=containment,
            )
            def drive():
                runtime.boot()
                for event in events:
                    runtime.dispatch(event)
            if plan is not None:
                with active_plan(plan):
                    drive()
            else:
                drive()
            return runtime

        baseline = play(bundle.apk)
        plan = FaultPlan(seed=5).arm("crypto.aes.decrypt", "raise")
        chaotic = play(protected, containment=ContainmentPolicy(), plan=plan)

        assert chaotic.logs == baseline.logs
        assert chaotic.ui_effects == baseline.ui_effects
        assert not chaotic.detections
        if plan.fires():
            assert chaotic.bombs.count("payload_error") > 0


class TestDecryptPayloadHelper:
    def test_roundtrip_and_taxonomy(self):
        spec = PayloadSpec(
            bomb_id="bh", payload_class="Bomb$bh", slots=0, app_name="A"
        )
        dex = build_payload_dex(spec)
        salt = Salt.from_seed(4)
        ciphertext = encrypt_payload(dex, "c", salt)
        assert serialize_dex(decrypt_payload(ciphertext, "c", salt)) == (
            serialize_dex(dex)
        )
        with pytest.raises((BadPaddingError, CryptoError, DexFormatError)):
            decrypt_payload(ciphertext, "wrong", salt)
