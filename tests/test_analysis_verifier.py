"""Bytecode verifier: broken methods must be caught before they ship.

Each test seeds one deliberate defect into a method and asserts the
exact rule id the verifier reports -- these are the bugs a botched
weave would otherwise surface as crashes on user devices.
"""

import pytest

from repro.analysis.verifier import VERIFIER_RULES, verify_dex, verify_method
from repro.core.instrumenter import MethodEditor
from repro.dex import assemble, assemble_method
from repro.dex.instructions import Instr, const
from repro.dex.model import DexMethod
from repro.dex.opcodes import Op
from repro.lint.diagnostics import Severity, errors


def method_of(body: str, params: int = 1) -> DexMethod:
    return assemble_method(body, class_name="A", name="m", params=params)


def rules_of(diagnostics):
    return {diag.rule for diag in diagnostics}


class TestStructuralChecks:
    def test_clean_method_verifies_clean(self):
        method = method_of("const r1, 5\nadd r2, r0, r1\nreturn r2")
        assert verify_method(method) == []

    def test_empty_method(self):
        method = DexMethod(name="m", class_name="A", params=0, registers=1)
        assert rules_of(verify_method(method)) == {"empty-method"}

    def test_reg_out_of_range(self):
        # The assembler would size the register file, so build directly:
        # r7 does not exist in a 3-register method.
        method = DexMethod(
            name="m", class_name="A", params=1, registers=3,
            instructions=[
                const(1, 5),
                Instr(op=Op.ADD, dst=2, a=0, b=7),
                Instr(op=Op.RETURN, a=2),
            ],
        )
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"reg-out-of-range"}
        (diag,) = diagnostics
        assert diag.is_error
        assert diag.span == (1, 2)

    def test_dangling_label(self):
        method = DexMethod(
            name="m", class_name="A", params=1, registers=2,
            instructions=[
                Instr(op=Op.IF_EQZ, a=0, target="nowhere"),
                Instr(op=Op.RETURN_VOID),
            ],
        )
        assert rules_of(verify_method(method)) == {"dangling-label"}

    def test_duplicate_label(self):
        method = DexMethod(
            name="m", class_name="A", params=0, registers=1,
            instructions=[
                Instr(op=Op.LABEL, value="twice"),
                Instr(op=Op.LABEL, value="twice"),
                Instr(op=Op.RETURN_VOID),
            ],
        )
        assert "duplicate-label" in rules_of(verify_method(method))

    def test_switch_bad_table(self):
        method = DexMethod(
            name="m", class_name="A", params=1, registers=2,
            instructions=[
                Instr(op=Op.SWITCH, a=0, value={}),
                Instr(op=Op.RETURN_VOID),
            ],
        )
        assert rules_of(verify_method(method)) == {"switch-bad-table"}

    def test_switch_dangling_target(self):
        method = DexMethod(
            name="m", class_name="A", params=1, registers=2,
            instructions=[
                Instr(op=Op.SWITCH, a=0, value={1: "missing"}),
                Instr(op=Op.RETURN_VOID),
            ],
        )
        assert rules_of(verify_method(method)) == {"dangling-label"}


class TestStaleLabelCache:
    """Satellite: a structural edit that skips invalidate() must be caught.

    The branch below targets @out.  After inserting an instruction ahead
    of the label WITHOUT invalidating, the cached label map still points
    at the old pc -- resolve() would land the branch one instruction
    short, silently executing the guarded store.
    """

    SOURCE = (
        "const r1, 5\nif_ne r0, r1, @out\nsput r0, A.x\n@out:\nreturn_void"
    )

    def _assembled(self):
        dex = assemble(
            ".class A\n.field x static 0\n.method m 1\n" + self.SOURCE + "\n.end"
        )
        return dex.get_method("A.m")

    def test_stale_cache_detected(self):
        method = self._assembled()
        stale_pc = method.resolve("out")       # populates the cache
        method.instructions.insert(0, const(1, 9))  # bug: no invalidate()
        assert method.label_cache() is not None
        assert method.resolve("out") == stale_pc    # mis-resolves: off by one
        diagnostics = verify_method(method)
        assert "stale-label-cache" in rules_of(diagnostics)
        assert all(
            diag.is_error for diag in diagnostics
            if diag.rule == "stale-label-cache"
        )

    def test_editor_splice_invalidates(self):
        method = self._assembled()
        method.resolve("out")
        editor = MethodEditor(method)
        editor.splice(0, 0, [const(1, 9)])
        assert method.label_cache() is None    # splice() dropped the cache
        assert verify_method(method) == []

    def test_consistent_cache_not_flagged(self):
        method = self._assembled()
        method.resolve("out")  # warm cache matching the instruction list
        assert verify_method(method) == []


class TestDataflow:
    def test_read_uninit(self):
        method = method_of("add r2, r0, r1\nreturn r2")
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"read-uninit"}
        (diag,) = diagnostics
        assert diag.severity is Severity.ERROR
        assert "r1" in diag.message

    def test_maybe_uninit_is_warning(self):
        # r1 is assigned only on the branch-taken path.
        method = method_of(
            """
            if_eqz r0, @skip
            const r1, 7
        @skip:
            return r1
            """
        )
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"maybe-uninit"}
        assert not errors(diagnostics)

    def test_params_count_as_assigned(self):
        method = method_of("return r1", params=2)
        assert verify_method(method) == []

    def test_unreachable_code(self):
        method = method_of("return r0\nconst r1, 1\nconst r2, 2")
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"unreachable-code"}
        (diag,) = diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.span == (1, 3)

    def test_code_behind_label_is_reachable(self):
        method = method_of(
            "if_eqz r0, @b\nreturn r0\n@b:\nconst r1, 2\nreturn r1"
        )
        assert verify_method(method) == []

    def test_fall_off_end(self):
        method = method_of("const r1, 5")
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"fall-off-end"}
        assert not errors(diagnostics)

    def test_fall_off_end_trailing_conditional_branch(self):
        # The branch has a taken-edge successor, but the not-taken path
        # still runs past the last instruction.
        method = method_of("@top:\nconst r1, 1\nif_eqz r1, @top")
        assert "fall-off-end" in rules_of(verify_method(method))

    def test_fall_off_end_trailing_switch(self):
        method = method_of("@a:\nswitch r0, {1 -> @a}")
        assert "fall-off-end" in rules_of(verify_method(method))

    def test_trailing_goto_does_not_fall_off(self):
        method = method_of("@top:\nconst r1, 1\ngoto @top")
        assert "fall-off-end" not in rules_of(verify_method(method))

    def test_trailing_return_does_not_fall_off(self):
        assert verify_method(method_of("return r0")) == []

    def test_type_mismatch_string_into_add(self):
        method = method_of('const r1, "hi"\nadd r2, r0, r1\nreturn r2')
        diagnostics = verify_method(method)
        assert rules_of(diagnostics) == {"type-mismatch"}
        assert errors(diagnostics)

    def test_type_mismatch_int_indexed_as_array(self):
        method = method_of("const r1, 3\naget r2, r1, r0\nreturn r2")
        assert "type-mismatch" in rules_of(verify_method(method))

    def test_array_flows_correctly(self):
        method = method_of(
            "const r1, 2\nnew_array r2, r1\nconst r3, 0\n"
            "aput r0, r2, r3\naget r4, r2, r3\nreturn r4"
        )
        assert verify_method(method) == []

    def test_merged_type_not_flagged(self):
        # r1 is int on one path, string on the other: joins to VALUE,
        # which the verifier must not call a definite mismatch.
        method = method_of(
            """
            if_eqz r0, @s
            const r1, 7
            goto @join
        @s:
            const r1, "seven"
        @join:
            add r2, r0, r1
            return r2
            """
        )
        assert verify_method(method) == []

    def test_structural_error_suppresses_dataflow(self):
        # The dangling branch makes every downstream dataflow question
        # moot; the verifier must not pile misleading reports on top.
        method = DexMethod(
            name="m", class_name="A", params=0, registers=3,
            instructions=[
                Instr(op=Op.GOTO, target="gone"),
                Instr(op=Op.ADD, dst=2, a=0, b=1),
                Instr(op=Op.RETURN, a=2),
            ],
        )
        assert rules_of(verify_method(method)) == {"dangling-label"}

    def test_switch_successors_all_checked(self):
        # r1 is assigned only under case 1, read after the join.
        method = method_of(
            """
            switch r0, {1 -> @one}
            goto @join
        @one:
            const r1, 10
        @join:
            return r1
            """
        )
        assert rules_of(verify_method(method)) == {"maybe-uninit"}


class TestVerifyDex:
    def test_whole_file_clean(self):
        dex = assemble(
            ".class A\n.method m 1\nconst r1, 1\nadd r2, r0, r1\nreturn r2\n.end"
        )
        assert verify_dex(dex) == []

    def test_reports_carry_method_names(self):
        dex = assemble(
            ".class A\n.method good 1\nreturn r0\n.end\n"
            ".method bad 0\nreturn r1\n.end"
        )
        dex.get_method("A.bad").registers = 2  # make r1 in-range but uninit
        diagnostics = verify_dex(dex)
        assert [diag.method for diag in diagnostics] == ["A.bad"]
        assert rules_of(diagnostics) == {"read-uninit"}

    def test_rule_catalog_is_complete(self):
        for rule_id, (severity, description) in VERIFIER_RULES.items():
            assert isinstance(severity, Severity)
            assert description
