"""The static trigger (HSO) detector: predicates, taint, scoring."""

from repro.analysis.triggers import (
    HsoFinding,
    PredicateKind,
    TriggerScan,
    analyze_dex,
    analyze_method,
    compute_summaries,
    guard_entropy_bits,
)
from repro.dex import DexClass, DexFile, assemble_method

DIGEST = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"


def method_of(body: str, params: int = 1, name: str = "m"):
    return assemble_method(body, class_name="A", name=name, params=params)


def dex_of(*methods) -> DexFile:
    dex = DexFile()
    cls = dex.add_class(DexClass(name="A"))
    for method in methods:
        cls.add_method(method)
    return dex


class TestGuardEntropy:
    def test_long_hex_counts_nibbles(self):
        assert guard_entropy_bits(DIGEST) == 4.0 * len(DIGEST)

    def test_int_counts_bits(self):
        assert guard_entropy_bits(1) == 1.0
        assert guard_entropy_bits(255) == 8.0

    def test_none_is_zero(self):
        assert guard_entropy_bits(None) == 0.0

    def test_repeated_char_string_is_low(self):
        assert guard_entropy_bits("aaaa") == 1.0

    def test_mixed_string_uses_diversity(self):
        assert 0 < guard_entropy_bits("abc") < guard_entropy_bits(DIGEST)


class TestPredicateClassification:
    def _only_finding(self, body: str, params: int = 1) -> HsoFinding:
        findings, _, _ = analyze_method(method_of(body, params=params))
        assert len(findings) == 1, findings
        return findings[0]

    def test_time_guarded_sink(self):
        finding = self._only_finding(
            """
            invoke r1, android.time.now
            const r2, 5
            if_eq r1, r2, @quiet
            const r3, "c2.example"
            invoke r4, android.net.report, r3
        @quiet:
            return_void
        """
        )
        assert finding.kind is PredicateKind.ENV_TIME
        assert "android.net.report" in finding.sinks
        assert finding.guarded_side == "fallthrough"

    def test_env_get_tag_from_variable_name(self):
        finding = self._only_finding(
            """
            const r1, "net.wifi"
            invoke r2, android.env.get, r1
            if_eqz r2, @skip
            const r3, "x"
            invoke r4, android.net.report, r3
        @skip:
            return_void
        """
        )
        assert finding.kind is PredicateKind.ENV_NET

    def test_detection_probe_with_guarded_throw(self):
        finding = self._only_finding(
            f"""
            invoke r1, android.pm.get_public_key
            const r2, "{DIGEST}"
            invoke r3, java.str.equals, r1, r2
            if_nez r3, @genuine
            const r4, "tampered"
            throw r4
        @genuine:
            return_void
        """
        )
        assert finding.kind is PredicateKind.DETECTION_PROBE
        assert finding.sinks == ("throw",)
        # The digest constant was captured through java.str.equals.
        assert finding.features["entropy_bits"] == 160.0

    def test_hashing_launders_environment_taint(self):
        # time -> sha1: the predicate must classify as opaque, NOT as
        # time-derived -- hashing is exactly how BombDroid hides X.
        body = f"""
            const r1, "time.hour"
            invoke r2, android.env.get, r1
            invoke r3, bomb.sha1_hex, r2
            const r4, "{DIGEST}"
            invoke r5, java.str.equals, r3, r4
            if_eqz r5, @out
            const r6, "x"
            invoke r7, android.net.report, r6
        @out:
            return_void
        """
        finding = self._only_finding(body)
        assert finding.kind is PredicateKind.HASH_OPAQUE

    def test_opaque_guard_without_sink_is_not_a_finding(self):
        body = f"""
            invoke r1, bomb.hash, r0
            const r2, "{DIGEST}"
            invoke r3, java.str.equals, r1, r2
            if_eqz r3, @no_match
            invoke r4, bomb.derive, r0
            invoke r5, bomb.load_run, r4
        @no_match:
            return_void
        """
        findings, opaque, classified = analyze_method(method_of(body))
        assert findings == []
        assert opaque == ["A.m@3"]
        assert classified == 1

    def test_random_guard(self):
        finding = self._only_finding(
            """
            invoke r1, java.rand.next
            const r2, 100
            if_ge r1, r2, @skip
            const r3, "x"
            invoke r4, android.reflect.call, r3
        @skip:
            return_void
        """
        )
        assert finding.kind is PredicateKind.RANDOM
        assert "android.reflect.call" in finding.sinks

    def test_field_state_guard(self):
        finding = self._only_finding(
            """
            sget r1, A.flag
            if_eqz r1, @skip
            const r2, "x"
            throw r2
        @skip:
            return_void
        """
        )
        assert finding.kind is PredicateKind.FIELD_STATE

    def test_unguarded_sink_is_silent(self):
        findings, opaque, _ = analyze_method(
            method_of('const r1, "x"\ninvoke r2, android.net.report, r1\nreturn_void')
        )
        assert findings == [] and opaque == []

    def test_clean_branch_no_sink_is_silent(self):
        findings, opaque, classified = analyze_method(
            method_of(
                "const r1, 4\nif_eq r0, r1, @t\nconst r2, 9\n@t:\nreturn r2"
            )
        )
        assert findings == [] and opaque == []
        assert classified == 1


class TestInterprocedural:
    def test_return_taint_flows_through_helper(self):
        helper = method_of(
            'const r1, "time.hour"\ninvoke r2, android.env.get, r1\nreturn r2',
            params=0,
            name="clock",
        )
        main = method_of(
            """
            invoke r1, A.clock
            const r2, 3
            if_eq r1, r2, @skip
            const r3, "x"
            invoke r4, android.net.report, r3
        @skip:
            return_void
        """,
            name="main",
        )
        dex = dex_of(helper, main)
        scan = analyze_dex(dex)
        (finding,) = [f for f in scan.findings if f.method == "A.main"]
        assert finding.kind is PredicateKind.ENV_TIME

    def test_sink_reached_through_callee_is_attenuated(self):
        helper = method_of(
            'const r1, "x"\ninvoke r2, android.net.report, r1\nreturn_void',
            params=0,
            name="phone_home",
        )
        main = method_of(
            """
            const r1, 9
            if_ne r0, r1, @skip
            invoke r2, A.phone_home
        @skip:
            return_void
        """,
            name="main",
        )
        direct = method_of(
            """
            const r1, 9
            if_ne r0, r1, @skip
            const r2, "x"
            invoke r3, android.net.report, r2
        @skip:
            return_void
        """,
            name="direct",
        )
        scan = analyze_dex(dex_of(helper, main, direct), min_score=0.0)
        by_method = {f.method: f for f in scan.findings}
        assert "via A.phone_home: android.net.report" in by_method["A.main"].sinks
        assert by_method["A.main"].score < by_method["A.direct"].score

    def test_summaries_expose_sinks_and_tags(self):
        helper = method_of(
            'const r1, "time.hour"\ninvoke r2, android.env.get, r1\nreturn r2',
            params=0,
            name="clock",
        )
        sink = method_of(
            'const r1, "x"\ninvoke r2, android.net.report, r1\nreturn_void',
            params=0,
            name="phone_home",
        )
        summaries = compute_summaries(dex_of(helper, sink))
        assert "env.time" in summaries["A.clock"].return_tags
        assert summaries["A.phone_home"].sink_name == "android.net.report"
        assert summaries["A.phone_home"].sink_weight == 4.0


class TestScoring:
    def test_high_entropy_guard_outranks_low(self):
        template = """
            invoke r1, android.pm.get_public_key
            const r2, {const}
            invoke r3, java.str.equals, r1, r2
            if_nez r3, @ok
            const r4, "x"
            throw r4
        @ok:
            return_void
        """
        (high,), _, _ = analyze_method(method_of(template.format(const=f'"{DIGEST}"')))
        (low,), _, _ = analyze_method(method_of(template.format(const='"ab"')))
        assert high.score > low.score

    def test_min_score_filters_and_ranks(self):
        body = """
            sget r1, A.flag
            if_eqz r1, @skip
            const r2, "x"
            throw r2
        @skip:
            return_void
        """
        method = method_of(body)
        scan_all = analyze_dex(dex_of(method), min_score=0.0)
        assert len(scan_all.findings) == 1
        scan_strict = analyze_dex(dex_of(method_of(body)), min_score=100.0)
        assert scan_strict.findings == []
        assert scan_strict.branches_classified == 1

    def test_scan_counts_and_by_kind(self):
        scan = analyze_dex(dex_of(method_of("return r0")))
        assert isinstance(scan, TriggerScan)
        assert scan.methods_scanned == 1
        assert scan.by_kind() == {}

    def test_finding_serialization_roundtrip(self):
        body = """
            sget r1, A.flag
            if_eqz r1, @skip
            const r2, "x"
            throw r2
        @skip:
            return_void
        """
        (finding,), _, _ = analyze_method(method_of(body))
        payload = finding.to_dict()
        assert payload["method"] == "A.m"
        assert payload["kind"] == "field_state"
        assert finding.site == f"A.m@{payload['branch_pc']}"
        diag = finding.to_diagnostic()
        assert diag.rule == "hso-finding"
        assert diag.method == "A.m"
