"""Networked ingestion: framing, service, replication, failover, fleet."""

import dataclasses
import os
import random
import re
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro.chaos.faults import FaultPlan, active_plan
from repro.crypto import RSAKeyPair
from repro.errors import ReportingError, TransportError, WireError
from repro.reporting import (
    AggregatedVerdict,
    DetectionReport,
    FleetConfig,
    OutcomeModel,
    ReportClient,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    decode_report,
    encode_report,
    run_fleet,
    sign_report,
)
from repro.reporting.net import (
    FENCE_MAGIC,
    HEALTH_MAGIC,
    META_WAL,
    MSG_ACK,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RECORD,
    MSG_SNAPSHOT,
    FrameReader,
    HealthStatus,
    MessageReader,
    ReplicaFollower,
    ServiceHandle,
    TcpTransport,
    decode_health,
    decode_redirect,
    decode_status,
    encode_health,
    encode_message,
    encode_redirect,
    encode_status,
    format_endpoint,
    parse_endpoint,
    probe_health,
    send_fence,
)

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20
APP = "Game"


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=4242)


def make_signed(attest_key, i, ts=10.0, key=PIRATE, app=APP):
    return sign_report(
        DetectionReport(
            app_name=app,
            bomb_id=f"b{i:03d}",
            device_id=f"dev-{i:04d}",
            observed_key_hex=key,
            timestamp=ts,
            nonce=1000 + i,
        ),
        attest_key,
    )


def make_server(**kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("policy", TakedownPolicy(distinct_devices=3))
    server = ReportServer(**kwargs)
    server.register_app(APP, ORIGINAL)
    return server


# ---------------------------------------------------------------------------
# FrameReader: incremental DRPT decoding == whole-blob decoding
# ---------------------------------------------------------------------------


class TestFrameReader:
    def frames(self, attest_key, n=3):
        return [encode_report(make_signed(attest_key, i)) for i in range(n)]

    def test_whole_stream_at_once(self, attest_key):
        frames = self.frames(attest_key)
        reader = FrameReader()
        out = reader.feed(b"".join(frames))
        assert out == frames
        assert reader.pending == 0
        assert reader.frames == 3

    def test_byte_at_a_time_equals_whole_blob(self, attest_key):
        frames = self.frames(attest_key)
        stream = b"".join(frames)
        reader = FrameReader()
        out = []
        for i in range(len(stream)):
            out.extend(reader.feed(stream[i : i + 1]))
        assert out == frames
        # And the decoded report sequence matches whole-blob decoding.
        incremental = [decode_report(blob).report for blob in out]
        whole = [decode_report(blob).report for blob in frames]
        assert incremental == whole

    def test_split_at_every_offset(self, attest_key):
        frames = self.frames(attest_key, n=2)
        stream = b"".join(frames)
        for split in range(len(stream) + 1):
            reader = FrameReader()
            out = reader.feed(stream[:split])
            out.extend(reader.feed(stream[split:]))
            assert out == frames, f"split at {split}"
            assert reader.pending == 0

    def test_seeded_random_chunking(self, attest_key):
        frames = [encode_report(make_signed(attest_key, i)) for i in range(20)]
        stream = b"".join(frames)
        rng = random.Random(99)
        reader = FrameReader()
        out = []
        offset = 0
        while offset < len(stream):
            step = rng.randint(1, 97)
            out.extend(reader.feed(stream[offset : offset + step]))
            offset += step
        assert out == frames

    def test_torn_final_frame_stays_pending(self, attest_key):
        frames = self.frames(attest_key, n=2)
        stream = b"".join(frames)
        reader = FrameReader()
        out = reader.feed(stream[:-5])
        assert out == frames[:1]
        assert reader.pending == len(frames[1]) - 5
        assert reader.feed(stream[-5:]) == frames[1:]

    def test_bad_magic_raises_even_on_first_byte(self):
        with pytest.raises(WireError, match="bad magic"):
            FrameReader().feed(b"X")
        with pytest.raises(WireError, match="bad magic"):
            FrameReader().feed(b"JUNKJUNKJUNK")

    def test_oversize_declared_length_raises(self):
        blob = b"DRPT" + struct.pack(">I", 1 << 30)
        with pytest.raises(WireError, match="exceeds"):
            FrameReader().feed(blob)

    def test_desync_mid_stream(self, attest_key):
        frame = encode_report(make_signed(attest_key, 1))
        reader = FrameReader()
        assert reader.feed(frame) == [frame]
        with pytest.raises(WireError):
            reader.feed(b"garbage after a clean frame")


class TestStatusCodec:
    def test_roundtrip_every_status(self):
        for status in SubmitStatus:
            wire = encode_status(status)
            assert len(wire) == 1
            assert decode_status(wire[0]) is status

    def test_unknown_byte_raises(self):
        with pytest.raises(WireError):
            decode_status(0x00)
        with pytest.raises(WireError):
            decode_status(0xEE)


class TestMessageReader:
    def test_roundtrip_and_torn_tail(self):
        messages = [
            (MSG_HELLO, b"\x04"),
            (MSG_SNAPSHOT, b"RSNP" + b"x" * 100),
            (MSG_RECORD, bytes([META_WAL]) + b"record-bytes"),
            (MSG_ACK, struct.pack(">Q", 17)),
        ]
        stream = b"".join(encode_message(k, p) for k, p in messages)
        reader = MessageReader()
        out = []
        for i in range(len(stream)):
            out.extend(reader.feed(stream[i : i + 1]))
        assert out == messages
        assert reader.pending == 0

    def test_unknown_kind_raises(self):
        with pytest.raises(WireError, match="desynchronized"):
            MessageReader().feed(b"Z\x00\x00\x00\x00")


# ---------------------------------------------------------------------------
# The service over loopback
# ---------------------------------------------------------------------------


class TestIngestService:
    def test_round_trip_statuses_and_verdict(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            transport = TcpTransport(handle.address)
            statuses = []
            for i in range(3):
                client = ReportClient(
                    transport, attest_key, device_id=f"dev-{i:04d}", seed=i
                )
                client.report(
                    app_name=APP, bomb_id="b000",
                    observed_key_hex=PIRATE, timestamp=10.0 + i,
                )
                statuses.append(client.last_status)
            assert statuses == [SubmitStatus.ACCEPTED] * 3

            # Same frame again: the duplicate path answers over the wire.
            dup = make_signed(attest_key, 7)
            assert transport(dup) is SubmitStatus.ACCEPTED
            assert transport(dup) is SubmitStatus.DUPLICATE
            forged = dataclasses.replace(dup, signature=dup.signature ^ 1)
            assert transport(forged) is SubmitStatus.BAD_SIGNATURE
            unknown = make_signed(attest_key, 8, app="Nope")
            assert transport(unknown) is SubmitStatus.UNKNOWN_APP
            transport.close()

            handle.call(lambda s: s.process())
            verdict, offender = handle.call(lambda s: s.verdict(APP))
            assert verdict is AggregatedVerdict.TAKEDOWN
            assert offender == PIRATE
        finally:
            handle.stop()

    def test_pipelined_frames_answer_in_order(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            transport = TcpTransport(handle.address)
            signed = [make_signed(attest_key, i) for i in range(10)]
            frames = [encode_report(s) for s in signed]
            # One sendall, ten frames: statuses come back frame-ordered,
            # so the duplicate of frame 0 (appended last) must be the
            # final status.
            statuses = transport.send_many(frames + [frames[0]])
            assert statuses[:10] == [SubmitStatus.ACCEPTED] * 10
            assert statuses[10] is SubmitStatus.DUPLICATE
            transport.close()
        finally:
            handle.stop()

    def test_malformed_frame_gets_malformed_status(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            # Hand-build a frame with empty key + signature: it slices
            # cleanly (framing is fine) but fails decode_report.
            body = b"\x00" * 10
            frame = (
                b"DRPT" + struct.pack(">I", len(body)) + body
                + struct.pack(">H", 0) + struct.pack(">H", 0)
            )
            transport = TcpTransport(handle.address)
            statuses = transport.send_many([frame])
            assert statuses == [SubmitStatus.MALFORMED]
            transport.close()
            assert handle.call(
                lambda s: s.metrics.counter("reporting.rejected_malformed").value
            ) == 1
        finally:
            handle.stop()

    def test_desynchronized_stream_closes_connection(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            sock = socket.create_connection(handle.address, timeout=5)
            sock.sendall(b"not a drpt frame at all")
            assert sock.recv(1) == b""  # server hung up on us
            sock.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if handle.call(
                    lambda s: s.metrics.counter("reporting.net.desync").value
                ):
                    break
                time.sleep(0.01)
            assert handle.service.metrics.counter("reporting.net.desync").value == 1
        finally:
            handle.stop()

    def test_deterministic_backpressure_drops(self, attest_key):
        # One shard, queue depth 1: every chunk of frames can admit only
        # one before the loop answers DROPPED for the rest -- the
        # enqueue-before-await ordering makes this exact, not racy.
        server = make_server(shards=1)
        handle = ServiceHandle.start(server, shard_queue_depth=1)
        try:
            frames = [encode_report(make_signed(attest_key, i)) for i in range(30)]
            transport = TcpTransport(handle.address)
            statuses = transport.send_many(frames)
            transport.close()
            accepted = sum(1 for s in statuses if s is SubmitStatus.ACCEPTED)
            dropped = sum(1 for s in statuses if s is SubmitStatus.DROPPED)
            assert accepted + dropped == 30
            assert accepted >= 1
            assert dropped >= 20
            metrics = handle.call(lambda s: s.metrics.snapshot())
            assert metrics["reporting.dropped_backpressure"] == dropped
            assert metrics["reporting.received"] == 30
            net_metrics = handle.service.metrics
            assert net_metrics.counter("reporting.net.dropped").value == dropped
            assert (
                net_metrics.counter("reporting.net.conn.000.dropped").value
                == dropped
            )
        finally:
            handle.stop()

    def test_ingest_latency_histogram_observed(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            transport = TcpTransport(handle.address)
            transport.send_many(
                [encode_report(make_signed(attest_key, i)) for i in range(5)]
            )
            transport.close()
            hist = handle.service.metrics.histogram("reporting.net.ingest_seconds")
            assert hist.count == 5
            assert hist.quantile(0.99) > 0
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# Replication + failover
# ---------------------------------------------------------------------------


class TestReplication:
    def test_wal_shipping_failover_and_exactly_once(self, attest_key, tmp_path):
        server = make_server(
            data_dir=str(tmp_path / "leader"), snapshot_every=4
        )
        handle = ServiceHandle.start(server, replication_port=0)
        follower = ReplicaFollower(
            str(tmp_path / "replica"),
            handle.replication_address,
            expect_shards=4,
        ).start()
        assert follower.wait_applied(1)  # bootstrap snapshot
        assert follower.shard_count == 4

        transport = TcpTransport(handle.address)
        pre_kill = []
        for i in range(6):
            signed = make_signed(attest_key, i)
            pre_kill.append(signed)
            assert transport(signed) is SubmitStatus.ACCEPTED
        transport.close()
        # 1 bootstrap + 3 records + 1 compaction snapshot + 3 records.
        assert follower.wait_applied(8)
        assert follower.snapshots >= 2

        # The leader dies abruptly -- no drain, no goodbye.
        handle.kill()
        server.crash()

        promoted = follower.promote(
            shards=4, policy=TakedownPolicy(distinct_devices=3)
        )
        try:
            promoted.process()
            verdict, offender = promoted.verdict(APP)
            assert verdict is AggregatedVerdict.TAKEDOWN
            assert offender == PIRATE
            # Exactly-once across failover: a report the dead leader
            # acked is a DUPLICATE on the promoted follower.
            assert promoted.submit(pre_kill[0]) is SubmitStatus.DUPLICATE
        finally:
            promoted.close()

    def test_follower_rejects_shard_mismatch(self, attest_key, tmp_path):
        server = make_server(data_dir=str(tmp_path / "leader"))
        handle = ServiceHandle.start(server, replication_port=0)
        try:
            follower = ReplicaFollower(
                str(tmp_path / "replica"),
                handle.replication_address,
                expect_shards=2,
            ).start()
            with pytest.raises(ReportingError, match="expected 2"):
                follower.wait_applied(1, timeout=5)
        finally:
            handle.stop()

    def test_replication_requires_durable_server(self):
        server = make_server()  # no data_dir
        with pytest.raises(ReportingError, match="durable"):
            ServiceHandle.start(server, replication_port=0)


# ---------------------------------------------------------------------------
# Chaos fault sites
# ---------------------------------------------------------------------------


class TestNetFaultSites:
    def test_partition_retried_through(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            transport = TcpTransport(handle.address)
            client = ReportClient(
                transport, attest_key, device_id="dev-0001", seed=3
            )
            plan = FaultPlan(seed=5).arm(
                "net.partition", "raise", probability=1.0, max_fires=2
            )
            with active_plan(plan):
                client.report(
                    app_name=APP, bomb_id="b000",
                    observed_key_hex=PIRATE, timestamp=10.0,
                )
            assert client.last_status is SubmitStatus.ACCEPTED
            assert client.retries == 2
            assert transport.partitions == 2
            transport.close()
        finally:
            handle.stop()

    def test_slow_link_injects_virtual_delay(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            transport = TcpTransport(handle.address)
            plan = FaultPlan(seed=5).arm(
                "net.slow_link", "latency", probability=1.0,
                max_fires=3, magnitude=3,
            )
            with active_plan(plan):
                for i in range(3):
                    transport(make_signed(attest_key, i))
            assert transport.delay_injected == 9.0
            transport.close()
        finally:
            handle.stop()

    def test_failover_fault_kills_the_service(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        transport = TcpTransport(handle.address)
        assert transport(make_signed(attest_key, 0)) is SubmitStatus.ACCEPTED
        # The plan is process-global, so the service loop thread sees it.
        plan = FaultPlan(seed=5).arm(
            "net.failover", "raise", probability=1.0, max_fires=1
        )
        with active_plan(plan):
            with pytest.raises(TransportError):
                transport(make_signed(attest_key, 1))
        assert plan.fires("net.failover") == 1
        assert (
            handle.service.metrics.counter("reporting.net.failover_faults").value
            == 1
        )
        transport.close()
        handle.kill()  # idempotent after abort


# ---------------------------------------------------------------------------
# Fleet over TCP
# ---------------------------------------------------------------------------

FLEET_MODEL = OutcomeModel(
    report_rate=1.0, observed_key_hex=PIRATE, bad_experience_rate=0.35
)
FLEET_BASE = FleetConfig(
    devices=3000, batch_size=1000, shards=4, seed=9,
    target_reports=120, attestation_pool=2,
)


class TestFleetTcp:
    def test_tcp_matches_inproc_verdict_and_statuses(self):
        inproc = run_fleet(APP, ORIGINAL, FLEET_MODEL, FLEET_BASE)
        tcp = run_fleet(
            APP, ORIGINAL, FLEET_MODEL,
            dataclasses.replace(FLEET_BASE, transport="tcp"),
        )
        assert tcp.statuses == inproc.statuses
        assert tcp.verdict is inproc.verdict
        assert tcp.offender_key == inproc.offender_key
        assert tcp.verdict is AggregatedVerdict.TAKEDOWN

    def test_mid_run_failover_converges(self, tmp_path):
        config = dataclasses.replace(
            FLEET_BASE, devices=4000, batch_size=500,
            transport="tcp",
            data_dir=str(tmp_path / "leader"),
            replica_dir=str(tmp_path / "replica"),
            failover_after_batch=3, snapshot_every=16,
        )
        baseline = run_fleet(
            APP, ORIGINAL, FLEET_MODEL,
            dataclasses.replace(FLEET_BASE, devices=4000, batch_size=500),
        )
        result = run_fleet(APP, ORIGINAL, FLEET_MODEL, config)
        assert result.recoveries == 1
        assert result.verdict is baseline.verdict is AggregatedVerdict.TAKEDOWN
        assert result.offender_key == baseline.offender_key == PIRATE

    def test_config_validation(self, tmp_path):
        with pytest.raises(ReportingError, match="unknown fleet transport"):
            run_fleet(
                APP, ORIGINAL, FLEET_MODEL,
                dataclasses.replace(FLEET_BASE, transport="carrier-pigeon"),
            )
        with pytest.raises(ReportingError, match="failover_after_batch"):
            run_fleet(
                APP, ORIGINAL, FLEET_MODEL,
                dataclasses.replace(
                    FLEET_BASE, transport="tcp", failover_after_batch=1
                ),
            )
        with pytest.raises(ReportingError, match="replica_dir requires"):
            run_fleet(
                APP, ORIGINAL, FLEET_MODEL,
                dataclasses.replace(
                    FLEET_BASE, replica_dir=str(tmp_path / "r")
                ),
            )
        with pytest.raises(ReportingError, match="crash_after_batch"):
            run_fleet(
                APP, ORIGINAL, FLEET_MODEL,
                dataclasses.replace(
                    FLEET_BASE, transport="tcp",
                    data_dir=str(tmp_path / "d"), crash_after_batch=1,
                ),
            )


# ---------------------------------------------------------------------------
# CLI, end to end over real processes and signals
# ---------------------------------------------------------------------------


def _spawn(args, cwd):
    env = dict(os.environ)
    src = str((os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
    env["PYTHONPATH"] = os.path.join(src, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [sys.executable, "-m", "repro"] + args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(cwd),
    )


def _read_port(proc, label):
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.match(rf"{label} on [\d.]+:(\d+)", line.strip())
        if match:
            return int(match.group(1))
    proc.kill()
    raise AssertionError(f"never saw '{label} on host:port' from the CLI")


@pytest.mark.slow
class TestCliNet:
    def test_serve_listen_sigterm_clean_shutdown(self, attest_key, tmp_path):
        leader = _spawn(
            ["serve-reports", "--app", APP, "--key-hex", ORIGINAL,
             "--listen", "127.0.0.1:0", "--data-dir", "state"],
            cwd=tmp_path,
        )
        try:
            port = _read_port(leader, "listening")
            transport = TcpTransport(("127.0.0.1", port))
            for i in range(3):
                client = ReportClient(
                    transport, attest_key, device_id=f"dev-{i:04d}", seed=i
                )
                client.report(
                    app_name=APP, bomb_id="b000",
                    observed_key_hex=PIRATE, timestamp=10.0 + i,
                )
                assert client.last_status is SubmitStatus.ACCEPTED
            transport.close()
            leader.send_signal(signal.SIGTERM)
            out, _ = leader.communicate(timeout=30)
        finally:
            if leader.poll() is None:
                leader.kill()
        assert leader.returncode == 0, out
        assert "verdict for Game: takedown" in out
        assert "reporting.net.ingest_seconds" in out
        assert (tmp_path / "state" / "snapshot.bin").exists()

    def test_leader_replica_promote_on_leader_death(self, attest_key, tmp_path):
        leader = _spawn(
            ["serve-reports", "--app", APP, "--key-hex", ORIGINAL,
             "--listen", "127.0.0.1:0", "--replication-listen", "127.0.0.1:0",
             "--data-dir", "leader", "--snapshot-every", "4"],
            cwd=tmp_path,
        )
        replica = None
        try:
            ingest_port = _read_port(leader, "listening")
            repl_port = _read_port(leader, "replication")
            replica = _spawn(
                ["replica", "--data-dir", "replica",
                 "--leader", f"127.0.0.1:{repl_port}", "--promote"],
                cwd=tmp_path,
            )
            # Wait for the bootstrap snapshot to land in the replica's
            # directory: proof it connected before we kill the leader.
            deadline = time.monotonic() + 20
            while not (tmp_path / "replica" / "snapshot.bin").exists():
                assert time.monotonic() < deadline, "replica never bootstrapped"
                time.sleep(0.05)
            transport = TcpTransport(("127.0.0.1", ingest_port))
            for i in range(5):
                client = ReportClient(
                    transport, attest_key, device_id=f"dev-{i:04d}", seed=i
                )
                client.report(
                    app_name=APP, bomb_id="b000",
                    observed_key_hex=PIRATE, timestamp=10.0 + i,
                )
            transport.close()
            leader.send_signal(signal.SIGTERM)
            out, _ = leader.communicate(timeout=30)
            rout, _ = replica.communicate(timeout=30)
        finally:
            for proc in (leader, replica):
                if proc is not None and proc.poll() is None:
                    proc.kill()
        assert leader.returncode == 0, out
        assert replica.returncode == 0, rout
        assert "verdict for Game: takedown" in out
        # The follower held every shipped record at leader EOF and
        # promoted to the same verdict.
        assert "promoted:" in rout
        assert "verdict for Game: takedown" in rout


# ---------------------------------------------------------------------------
# The cluster control plane: health, redirects, heartbeats
# ---------------------------------------------------------------------------


class TestControlPlaneCodecs:
    def test_health_roundtrip(self):
        status = HealthStatus(
            epoch=7, role="leader", applied=123, wal_depth=45,
            queue_depth=6, dropped=2, endpoint="127.0.0.1:7788",
        )
        assert decode_health(encode_health(status)) == status

    def test_health_roundtrip_empty_endpoint_and_extremes(self):
        status = HealthStatus(
            epoch=2**64 - 1, role="fenced", applied=2**64 - 1,
            wal_depth=0, queue_depth=0, dropped=2**64 - 1, endpoint="",
        )
        assert decode_health(encode_health(status)) == status

    def test_health_truncated_raises(self):
        wire = encode_health(HealthStatus(epoch=1, role="follower"))
        for cut in range(len(wire)):
            with pytest.raises(WireError):
                decode_health(wire[:cut])

    def test_health_bad_role_byte_raises(self):
        wire = bytearray(encode_health(HealthStatus(epoch=1, role="leader")))
        wire[8] = 0x7F  # the role byte follows the 8-byte epoch
        with pytest.raises(WireError):
            decode_health(bytes(wire))

    def test_redirect_roundtrip(self):
        for endpoint in ("127.0.0.1:1", "10.0.0.9:65535", ""):
            epoch, decoded = decode_redirect(encode_redirect(3, endpoint))
            assert (epoch, decoded) == (3, endpoint)

    def test_redirect_truncated_raises(self):
        wire = encode_redirect(9, "127.0.0.1:7788")
        for cut in range(len(wire)):
            with pytest.raises(WireError):
                decode_redirect(wire[:cut])

    def test_parse_format_endpoint(self):
        assert parse_endpoint("127.0.0.1:7788") == ("127.0.0.1", 7788)
        assert format_endpoint(("127.0.0.1", 7788)) == "127.0.0.1:7788"
        with pytest.raises(WireError):
            parse_endpoint("no-port-here")
        with pytest.raises(WireError):
            parse_endpoint("host:notanint")

    def test_not_leader_status_byte_is_frozen(self):
        assert encode_status(SubmitStatus.NOT_LEADER) == b"\x08"
        assert decode_status(0x08) is SubmitStatus.NOT_LEADER


class TestMessageReaderWithHeartbeats:
    def heartbeat(self, epoch=1):
        return encode_health(
            HealthStatus(epoch=epoch, role="leader", applied=epoch * 10)
        )

    def test_heartbeat_interleaved_at_every_split_offset(self):
        messages = [
            (MSG_HELLO, b"\x04"),
            (MSG_HEARTBEAT, self.heartbeat(1)),
            (MSG_RECORD, bytes([META_WAL]) + b"record-bytes"),
            (MSG_HEARTBEAT, self.heartbeat(2)),
            (MSG_SNAPSHOT, b"RSNP" + b"x" * 64),
        ]
        stream = b"".join(encode_message(k, p) for k, p in messages)
        for split in range(len(stream) + 1):
            reader = MessageReader()
            out = reader.feed(stream[:split])
            out.extend(reader.feed(stream[split:]))
            assert out == messages, f"split at {split}"
            assert reader.pending == 0

    def test_heartbeats_decode_under_random_chunking(self):
        rng = random.Random(31)
        messages = [
            (MSG_HEARTBEAT, self.heartbeat(i)) for i in range(40)
        ]
        stream = b"".join(encode_message(k, p) for k, p in messages)
        reader = MessageReader()
        out = []
        offset = 0
        while offset < len(stream):
            step = rng.randint(1, 13)
            out.extend(reader.feed(stream[offset : offset + step]))
            offset += step
        assert out == messages
        decoded = [decode_health(payload) for _, payload in out]
        assert [h.epoch for h in decoded] == list(range(40))


class TestControlPlaneDispatch:
    """The ingest port speaks three protocols, selected by preamble."""

    def _drain_frames(self, sock, count):
        statuses = []
        while len(statuses) < count:
            byte = sock.recv(1)
            assert byte, "service closed mid-response"
            statuses.append(decode_status(byte[0]))
        return statuses

    def test_health_probe_byte_at_a_time(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.settimeout(10)
                for byte in HEALTH_MAGIC:
                    sock.sendall(bytes([byte]))
                    time.sleep(0.01)
                (length,) = struct.unpack(">H", _recv_exact(sock, 2))
                health = decode_health(_recv_exact(sock, length))
            assert health.role == "leader"
            assert health.epoch == 0
        finally:
            handle.stop()

    def test_probe_then_frames_on_separate_connections(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            health = probe_health(handle.address)
            assert health.role == "leader"
            transport = TcpTransport(handle.address)
            assert transport(make_signed(attest_key, 1)) is SubmitStatus.ACCEPTED
            transport.close()
            # Repeated probes keep answering on one connection.
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.settimeout(10)
                for _ in range(3):
                    sock.sendall(HEALTH_MAGIC)
                    (length,) = struct.unpack(">H", _recv_exact(sock, 2))
                    decode_health(_recv_exact(sock, length))
            assert handle.call(
                lambda s: int(
                    s.metrics.counter("reporting.net.health_probes").value
                )
            ) >= 4
        finally:
            handle.stop()

    def test_fence_byte_at_a_time_then_not_leader(self, attest_key):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            request = FENCE_MAGIC + encode_redirect(5, "127.0.0.1:9999")
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.settimeout(10)
                for i in range(len(request)):
                    sock.sendall(request[i : i + 1])
                assert _recv_exact(sock, 1) == b"\x01"
            # Fenced: a frame connection now answers NOT_LEADER + redirect
            # (the redirect target is dead, so delivery ultimately fails,
            # but the transport learned the epoch and followed it).
            transport = TcpTransport(handle.address)
            with pytest.raises(TransportError):
                transport(make_signed(attest_key, 2))
            assert transport.last_epoch == 5
            assert transport.redirects >= 1
            transport.close()
            assert handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            ) == 0
        finally:
            handle.stop()

    def test_stale_fence_refused(self):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            assert send_fence(handle.address, 4, "127.0.0.1:1111") is True
            # An older (or equal) epoch can never re-fence.
            assert send_fence(handle.address, 3, "127.0.0.1:2222") is False
            assert send_fence(handle.address, 4, "127.0.0.1:2222") is False
            assert send_fence(handle.address, 9, "127.0.0.1:3333") is True
        finally:
            handle.stop()

    def test_garbage_control_preamble_closes_connection(self):
        server = make_server()
        handle = ServiceHandle.start(server)
        try:
            with socket.create_connection(handle.address, timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(b"HLTHgarbage-after-a-probe")
                struct.unpack(">H", _recv_exact(sock, 2))
                # The trailing garbage desynchronizes the control stream;
                # the service closes rather than guessing.
                sock.recv(4096)  # health payload
                assert sock.recv(1) in (b"",)
        finally:
            handle.stop()


def _recv_exact(sock, count):
    chunks = bytearray()
    while len(chunks) < count:
        data = sock.recv(count - len(chunks))
        if not data:
            raise AssertionError("peer closed mid-response")
        chunks.extend(data)
    return bytes(chunks)
