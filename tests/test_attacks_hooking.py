"""API-interception attack vs code-snippet scanning (Section 4.1)."""

import pytest

from repro.attacks import VTableHijackAttack
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind


@pytest.fixture(scope="module")
def scan_heavy_protection(small_apk, developer_key):
    """Protect with every bomb using code scanning."""
    config = BombDroidConfig(
        seed=12,
        profiling_events=300,
        detection_methods=(DetectionMethod.CODE_SCAN,),
        responses=(ResponseKind.REPORT,),
    )
    return BombDroid(config).protect(small_apk, developer_key)


@pytest.fixture(scope="module")
def identity_only_protection(small_apk, developer_key):
    """Protect with only identity-based detection (pubkey + digest)."""
    config = BombDroidConfig(
        seed=12,
        profiling_events=300,
        detection_methods=(DetectionMethod.PUBLIC_KEY, DetectionMethod.CODE_DIGEST),
        responses=(ResponseKind.REPORT,),
    )
    return BombDroid(config).protect(small_apk, developer_key)


def test_identity_spoof_blinds_identity_bombs(identity_only_protection):
    protected, report = identity_only_protection
    result = VTableHijackAttack(seed=5, sessions=5, events=1000).run(protected, report)
    # With getPublicKey and the digests spoofed, identity bombs see a
    # genuine app: the attack wins against identity-only protection.
    assert result.details["identity_spoof_held"]
    assert result.defeated_defense


def test_code_scan_survives_identity_spoof(scan_heavy_protection):
    protected, report = scan_heavy_protection
    result = VTableHijackAttack(seed=5, sessions=5, events=1000).run(protected, report)
    assert result.details["code_scan_caught_it"], result.details
    assert not result.defeated_defense


def test_untampered_spoofed_run_is_clean(scan_heavy_protection):
    """Control: spoofing alone (no code edits) triggers nothing -- the
    scan bombs pin code, not identity."""
    from repro.errors import VMError
    from repro.fuzzing import DynodroidGenerator
    from repro.vm import Runtime

    protected, report = scan_heavy_protection
    runtime = Runtime(protected.dex(), package=protected.install_view(), seed=6)
    runtime.boot()
    for event in DynodroidGenerator(protected.dex(), seed=6).stream(500):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    assert not runtime.detections
