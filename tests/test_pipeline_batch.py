"""Batch pipeline: determinism, caching, parity, failure isolation.

Protection runs are expensive, so the corpus here is tiny (two small
apps at reduced profiling) and module-scoped fixtures share the
protected outputs across tests.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.apk.io import apk_to_bytes, load_apk
from repro.apk.package import build_apk
from repro.apk.resources import Resources
from repro.core import (
    BombDroid,
    BombDroidConfig,
    ProtectionResult,
    app_identity_digest,
    derive_app_seed,
)
from repro.crypto import RSAKeyPair
from repro.dex import assemble
from repro.pipeline import (
    ArtifactCache,
    BatchJob,
    BatchOptions,
    OutcomeStatus,
    artifact_key,
    config_digest,
    jobs_from_dir,
    protect_batch,
)

SECOND_APP_SOURCE = """
.class Tool
.field uses static 0
.field last static "none"
.method main 0
    const r0, 0
    sput r0, Tool.uses
    return_void
.end
.method on_touch 2
    const r2, 7
    if_ne r0, r2, @skip
    sget r3, Tool.uses
    add_lit r3, r3, 1
    sput r3, Tool.uses
@skip:
    return_void
.end
.method on_text 1
    const r1, "reset"
    invoke r2, java.str.equals, r0, r1
    if_eqz r2, @no
    const r3, 0
    sput r3, Tool.uses
@no:
    sput r0, Tool.last
    return_void
.end
.method on_key 1
    rem_lit r1, r0, 5
    const r2, 2
    if_ne r1, r2, @out
    sget r3, Tool.uses
    add_lit r3, r3, 2
    sput r3, Tool.uses
@out:
    return_void
.end
"""


@pytest.fixture(scope="module")
def batch_config():
    return BombDroidConfig(seed=4, profiling_events=200)


@pytest.fixture(scope="module")
def second_apk(developer_key):
    resources = Resources(
        strings={
            "app_name": "Tool",
            "greeting": "This handy tool application counts your taps all day",
        },
        app_name="Tool",
        author="honest-dev",
    )
    return build_apk(assemble(SECOND_APP_SOURCE), resources, developer_key)


@pytest.fixture(scope="module")
def corpus_jobs(small_apk, second_apk, developer_key):
    return [
        BatchJob.from_apk("game", small_apk, developer_key),
        BatchJob.from_apk("tool", second_apk, developer_key),
    ]


@pytest.fixture(scope="module")
def serial_batch(corpus_jobs, batch_config):
    return protect_batch(corpus_jobs, batch_config, BatchOptions(workers=1))


class TestProtectionResult:
    def test_named_fields(self, protection):
        assert isinstance(protection, ProtectionResult)
        assert protection.apk is protection[0]
        assert protection.report is protection[1]
        assert protection.app_seed != 0
        assert not protection.cache_hit

    def test_tuple_unpacking_compat(self, protection):
        protected, report = protection
        assert protected is protection.apk
        assert report is protection.report
        assert len(protection) == 2

    def test_timings_cover_all_stages(self, protection):
        for stage in ("unpack", "profile", "instrument", "verify", "package"):
            assert stage in protection.timings
        assert protection.total_seconds == sum(protection.timings.values())

    def test_summary_mentions_timing(self, protection):
        assert "s" in protection.summary()


class TestSeedDerivation:
    def test_distinct_apps_distinct_salts(self, serial_batch):
        """Regression: a shared config must not hand two apps the same
        salt stream (pre-fix, rng depended on config.seed alone)."""
        game, tool = serial_batch.outcomes
        game_salts = {b.salt_hex for b in game.result.report.bombs}
        tool_salts = {b.salt_hex for b in tool.result.report.bombs}
        assert not (game_salts & tool_salts)

    def test_app_seed_mixes_identity(self, small_apk, second_apk):
        seed = 4
        assert derive_app_seed(seed, app_identity_digest(small_apk)) != derive_app_seed(
            seed, app_identity_digest(second_apk)
        )

    def test_identity_covers_resources(self, small_apk, developer_key):
        """Two builds sharing a dex but differing in resources are
        different apps (the stego carrier differs)."""
        other = build_apk(
            small_apk.dex(),
            Resources(
                strings={"app_name": "Clone", "greeting": "o" * 60},
                app_name="Clone",
                author="honest-dev",
            ),
            developer_key,
        )
        assert app_identity_digest(other) != app_identity_digest(small_apk)


class TestDeterminism:
    def test_same_app_twice_is_byte_identical(
        self, small_apk, developer_key, batch_config
    ):
        first = BombDroid(batch_config).protect(small_apk, developer_key)
        second = BombDroid(batch_config).protect(small_apk, developer_key)
        assert apk_to_bytes(first.apk) == apk_to_bytes(second.apk)
        assert first.app_seed == second.app_seed

    def test_parallel_matches_serial(self, corpus_jobs, batch_config, serial_batch):
        parallel = protect_batch(
            corpus_jobs, batch_config, BatchOptions(workers=4)
        )
        assert serial_batch.strategy == "serial"
        assert parallel.strategy == "process-pool"
        assert [o.name for o in parallel.outcomes] == [
            o.name for o in serial_batch.outcomes
        ]
        for serial_out, parallel_out in zip(serial_batch.outcomes, parallel.outcomes):
            assert apk_to_bytes(serial_out.result.apk) == apk_to_bytes(
                parallel_out.result.apk
            )
            assert [b.bomb_id for b in serial_out.result.report.bombs] == [
                b.bomb_id for b in parallel_out.result.report.bombs
            ]


class TestCache:
    def test_cold_then_warm(self, corpus_jobs, batch_config, serial_batch, tmp_path):
        cache_dir = str(tmp_path / "cache")
        options = BatchOptions(workers=1, cache_dir=cache_dir)
        cold = protect_batch(corpus_jobs, batch_config, options)
        assert cold.cache_hits == 0
        warm = protect_batch(corpus_jobs, batch_config, options)
        assert warm.cache_hits == len(corpus_jobs)
        for baseline, cached in zip(serial_batch.outcomes, warm.outcomes):
            assert cached.result.cache_hit
            assert cached.result.cache_key
            assert apk_to_bytes(baseline.result.apk) == apk_to_bytes(
                cached.result.apk
            )
            assert [b.bomb_id for b in baseline.result.report.bombs] == [
                b.bomb_id for b in cached.result.report.bombs
            ]

    def test_config_change_misses(self, corpus_jobs, batch_config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        protect_batch(
            corpus_jobs, batch_config, BatchOptions(workers=1, cache_dir=cache_dir)
        )
        other = BombDroidConfig(seed=5, profiling_events=200)
        rerun = protect_batch(
            corpus_jobs, other, BatchOptions(workers=1, cache_dir=cache_dir)
        )
        assert rerun.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, corpus_jobs, batch_config, tmp_path):
        cache_dir = str(tmp_path / "cache")
        options = BatchOptions(workers=1, cache_dir=cache_dir)
        protect_batch(corpus_jobs, batch_config, options)
        for dirpath, _, files in os.walk(cache_dir):
            for name in files:
                with open(os.path.join(dirpath, name), "w") as handle:
                    handle.write("{not json")
        rerun = protect_batch(corpus_jobs, batch_config, options)
        assert rerun.cache_hits == 0
        assert rerun.ok_count == len(corpus_jobs)

    def test_key_depends_on_all_inputs(self, small_apk, developer_key, batch_config):
        digest = app_identity_digest(small_apk)
        base = artifact_key(digest, batch_config, developer_key)
        assert base != artifact_key(
            digest, batch_config, developer_key, strict=True
        )
        assert base != artifact_key(
            digest, BombDroidConfig(seed=99, profiling_events=200),
            developer_key,
        )
        assert base != artifact_key(
            digest, batch_config, RSAKeyPair.generate(seed=12)
        )
        assert config_digest(batch_config) == config_digest(
            BombDroidConfig(seed=4, profiling_events=200)
        )

    def test_cache_roundtrip_raw(self, tmp_path):
        cache = ArtifactCache(str(tmp_path / "c"))
        assert cache.get("ab" * 20) is None
        cache.put("ab" * 20, b"\x01\x02", {"x": 1}, app_seed=9)
        entry = cache.get("ab" * 20)
        assert entry.apk_bytes == b"\x01\x02"
        assert entry.report == {"x": 1}
        assert entry.app_seed == 9
        assert len(cache) == 1


class TestFailureIsolation:
    def test_corrupt_apk_crashes_only_itself(self, corpus_jobs, batch_config):
        bad = BatchJob(
            name="bad",
            apk_bytes=b"not an apk",
            developer_key=corpus_jobs[0].developer_key,
        )
        jobs = [corpus_jobs[0], bad, corpus_jobs[1]]
        result = protect_batch(jobs, batch_config, BatchOptions(workers=1))
        assert [o.status for o in result.outcomes] == [
            OutcomeStatus.OK,
            OutcomeStatus.CRASHED,
            OutcomeStatus.OK,
        ]
        crashed = result.outcomes[1]
        assert crashed.error_type == "ApkError"
        assert crashed.result is None
        assert result.failed_count == 1

    def test_crashes_isolated_across_workers(self, corpus_jobs, batch_config):
        bad = BatchJob(
            name="bad",
            apk_bytes=b"not an apk",
            developer_key=corpus_jobs[0].developer_key,
        )
        result = protect_batch(
            list(corpus_jobs) + [bad], batch_config, BatchOptions(workers=2)
        )
        assert result.ok_count == len(corpus_jobs)
        assert result.outcomes[-1].status is OutcomeStatus.CRASHED

    def test_metrics_aggregated(self, corpus_jobs, batch_config):
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        protect_batch(
            corpus_jobs, batch_config, BatchOptions(workers=1), metrics=registry
        )
        assert registry.counter("pipeline.apps").value == len(corpus_jobs)
        assert registry.counter("pipeline.ok").value == len(corpus_jobs)
        snapshot = registry.snapshot()
        assert "pipeline.protect_seconds" in snapshot
        assert "pipeline.stage.instrument" in snapshot


class TestCorpusDir:
    def test_jobs_from_dir_roundtrip(
        self, small_apk, second_apk, developer_key, tmp_path
    ):
        from repro.apk.io import save_apk_with_manifest

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        save_apk_with_manifest(small_apk, str(corpus / "game.rapk"))
        save_apk_with_manifest(second_apk, str(corpus / "tool.rapk"))
        (corpus / "notes.txt").write_text("ignored")
        jobs = jobs_from_dir(str(corpus), developer_key)
        assert [job.name for job in jobs] == ["game", "tool"]
        assert jobs[0].content_digest() != jobs[1].content_digest()


class TestCliProtectBatch:
    def test_end_to_end(self, small_apk, second_apk, tmp_path, capsys):
        from repro.apk.io import save_apk_with_manifest
        from repro.cli import main

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        save_apk_with_manifest(small_apk, str(corpus / "game.rapk"))
        save_apk_with_manifest(second_apk, str(corpus / "tool.rapk"))
        out_dir = tmp_path / "protected"
        argv = [
            "protect-batch",
            "--corpus", str(corpus),
            "--out", str(out_dir),
            "--key-seed", "11",
            "--seed", "4",
            "--profiling-events", "200",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert sorted(os.listdir(out_dir)) == ["game.rapk", "tool.rapk"]
        first = capsys.readouterr().out
        assert "protected 2/2" in first

        # Warm rerun: everything from cache, outputs byte-identical.
        out2 = tmp_path / "protected2"
        argv[argv.index(str(out_dir))] = str(out2)
        assert main(argv) == 0
        assert "2 from cache" in capsys.readouterr().out
        for name in ("game.rapk", "tool.rapk"):
            a = apk_to_bytes(load_apk(str(out_dir / name)))
            b = apk_to_bytes(load_apk(str(out2 / name)))
            assert a == b


class TestMetricsShim:
    def test_old_import_path_warns_and_reexports(self):
        import importlib

        import repro.reporting.metrics as shim

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(shim)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        from repro.metrics import MetricsRegistry

        assert shim.MetricsRegistry is MetricsRegistry


class TestStrategy:
    def test_unpicklable_key_falls_back_to_serial(
        self, corpus_jobs, batch_config, serial_batch
    ):
        """A task that cannot cross the process boundary forces serial
        even when the caller asked for a pool -- recorded in both
        ``serial_fallback`` (why) and ``strategy`` (what ran)."""

        class UnpicklableKey:
            def __init__(self, inner):
                object.__setattr__(self, "_inner", inner)

            def __reduce__(self):
                raise TypeError("refuses to pickle")

            def __getattr__(self, name):
                return getattr(object.__getattribute__(self, "_inner"), name)

        bad_key = UnpicklableKey(corpus_jobs[0].developer_key)
        jobs = [
            BatchJob(
                name=corpus_jobs[0].name,
                apk_bytes=corpus_jobs[0].apk_bytes,
                developer_key=bad_key,
            )
        ]
        result = protect_batch(jobs, batch_config, BatchOptions(workers=4))
        assert result.strategy == "serial"
        assert result.serial_fallback is True
        assert result.outcomes[0].ok
        assert result.metrics["pipeline.serial_fallbacks"] == 1

    def test_worker_frame_roundtrips(self, corpus_jobs, batch_config):
        """The framed entry point produces the same payload dict as the
        raw worker for the same task."""
        import pickle

        from repro.pipeline.batch import _protect_worker, _protect_worker_frame

        job = corpus_jobs[0]
        task = (job.name, job.apk_bytes, job.developer_key, batch_config, False)
        direct = _protect_worker(task)
        framed = _protect_worker_frame(pickle.dumps(task, pickle.HIGHEST_PROTOCOL))
        assert framed["status"] == direct["status"] == OutcomeStatus.OK.value
        assert framed["apk_bytes"] == direct["apk_bytes"]
        assert framed["report"] == direct["report"]
        assert framed["app_seed"] == direct["app_seed"]


class TestAutoWorkers:
    def test_auto_on_single_core_degrades_to_serial(
        self, corpus_jobs, batch_config, serial_batch, monkeypatch
    ):
        import repro.pipeline.batch as batch_mod

        monkeypatch.setattr(batch_mod.os, "cpu_count", lambda: 1)
        result = protect_batch(
            corpus_jobs, batch_config, BatchOptions(workers="auto")
        )
        assert result.workers == 1
        assert result.serial_fallback is True
        assert result.strategy == "serial"
        assert "(serial fallback)" in result.summary()
        assert result.metrics["pipeline.serial_fallbacks"] == 1
        # The decision changes scheduling only, never output bytes.
        for auto_out, serial_out in zip(result.outcomes, serial_batch.outcomes):
            assert apk_to_bytes(auto_out.result.apk) == apk_to_bytes(
                serial_out.result.apk
            )

    def test_auto_on_multi_core_caps_at_job_count(self, monkeypatch):
        import repro.pipeline.batch as batch_mod

        from repro.pipeline import resolve_workers

        monkeypatch.setattr(batch_mod.os, "cpu_count", lambda: 8)
        assert resolve_workers("auto", 2) == (2, False)
        assert resolve_workers("auto", 100) == (8, False)
        assert resolve_workers("auto", 0) == (1, False)

    def test_auto_none_cpu_count_is_serial(self, monkeypatch):
        import repro.pipeline.batch as batch_mod

        from repro.pipeline import resolve_workers

        monkeypatch.setattr(batch_mod.os, "cpu_count", lambda: None)
        assert resolve_workers("auto", 4) == (1, True)

    def test_explicit_workers_validated(self):
        from repro.pipeline import resolve_workers

        assert resolve_workers(3, 10) == (3, False)
        with pytest.raises(ValueError, match="int or 'auto'"):
            resolve_workers("turbo", 4)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0, 4)
        with pytest.raises(ValueError, match="int or 'auto'"):
            resolve_workers(True, 4)

    def test_cli_accepts_auto(self, corpus_jobs, batch_config, tmp_path, capsys):
        from repro.cli import _workers_arg

        assert _workers_arg("auto") == "auto"
        assert _workers_arg("4") == 4
