"""Device-side client: retry schedule, jitter bounds, spool, text channel."""

import pytest

from repro.crypto import RSAKeyPair
from repro.errors import TransportError
from repro.reporting import (
    AggregatedVerdict,
    ReportClient,
    ReportServer,
    SubmitStatus,
    format_report_text,
)

PIRATE = "bb" * 20


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=51)


class FlakyTransport:
    """Fails the first ``failures`` calls, then delivers."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self.delivered = []

    def __call__(self, signed):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransportError("uplink down")
        self.delivered.append(signed)
        return SubmitStatus.ACCEPTED


def _send(client):
    return client.report(
        app_name="Game", bomb_id="b001", observed_key_hex=PIRATE, timestamp=1.0
    )


class TestRetrySchedule:
    def test_succeeds_after_transient_failures(self, attest_key):
        transport = FlakyTransport(failures=2)
        client = ReportClient(transport, attest_key, "dev-1", jitter=0.0)
        assert _send(client) is SubmitStatus.ACCEPTED
        assert transport.calls == 3
        assert client.retries == 2
        assert client.delivered == 1
        assert client.spooled == 0

    def test_backoff_doubles_without_jitter(self, attest_key):
        client = ReportClient(
            FlakyTransport(failures=10),
            attest_key,
            "dev-1",
            max_attempts=4,
            base_backoff=0.5,
            jitter=0.0,
        )
        _send(client)
        # Three sleeps between four attempts: 0.5, 1.0, 2.0.
        assert client.backoff_log == [0.5, 1.0, 2.0]
        assert client.backoff_spent == pytest.approx(3.5)

    def test_backoff_capped(self, attest_key):
        client = ReportClient(
            FlakyTransport(failures=10),
            attest_key,
            "dev-1",
            max_attempts=6,
            base_backoff=1.0,
            max_backoff=3.0,
            jitter=0.0,
        )
        _send(client)
        assert client.backoff_log == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_jitter_stays_within_band(self, attest_key):
        client = ReportClient(
            FlakyTransport(failures=100),
            attest_key,
            "dev-1",
            max_attempts=5,
            base_backoff=1.0,
            max_backoff=64.0,
            jitter=0.25,
            seed=7,
        )
        _send(client)
        for attempt, delay in enumerate(client.backoff_log):
            nominal = 1.0 * (2 ** attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_sleep_callable_observes_delays(self, attest_key):
        slept = []
        client = ReportClient(
            FlakyTransport(failures=10),
            attest_key,
            "dev-1",
            max_attempts=3,
            jitter=0.0,
            sleep=slept.append,
        )
        _send(client)
        assert slept == client.backoff_log


class TestSpool:
    def test_exhausted_retries_spool(self, attest_key):
        client = ReportClient(
            FlakyTransport(failures=10), attest_key, "dev-1", max_attempts=2, jitter=0.0
        )
        assert _send(client) is None
        assert client.spooled == 1
        assert client.last_status is None

    def test_flush_after_transport_heals(self, attest_key):
        transport = FlakyTransport(failures=99)
        client = ReportClient(
            transport, attest_key, "dev-1", max_attempts=2, jitter=0.0
        )
        _send(client)
        _send(client)
        assert client.spooled == 2
        transport.failures = 0  # uplink restored
        assert client.flush() == 2
        assert client.spooled == 0
        assert client.delivered == 2
        # The spooled envelopes arrive signed and intact.
        assert all(signed.verify() for signed in transport.delivered)

    def test_flush_requeues_failures_at_back(self, attest_key):
        transport = FlakyTransport(failures=10_000)
        client = ReportClient(
            transport, attest_key, "dev-1", max_attempts=1, jitter=0.0
        )
        _send(client)
        _send(client)
        first, second = list(client.spool)
        assert client.flush() == 0
        assert list(client.spool) == [first, second]  # rotated back in order

    def test_spool_overflow_drops_oldest(self, attest_key):
        client = ReportClient(
            FlakyTransport(failures=10_000),
            attest_key,
            "dev-1",
            max_attempts=1,
            jitter=0.0,
            spool_limit=2,
        )
        for _ in range(3):
            _send(client)
        assert client.spooled == 2
        assert client.spool_dropped == 1

    def test_jitter_out_of_range_rejected(self, attest_key):
        with pytest.raises(ValueError):
            ReportClient(lambda s: None, attest_key, "dev-1", jitter=1.5)


class TestTextChannel:
    def test_send_text_reaches_server(self, attest_key):
        server = ReportServer(shards=2)
        server.register_app("Game", "aa" * 20)
        client = ReportClient(server.submit, attest_key, "dev-1")
        text = format_report_text("Game", "b003") + PIRATE
        assert client.send_text(text, timestamp=5.0) is SubmitStatus.ACCEPTED
        server.process()
        assert server.verdict("Game") == (AggregatedVerdict.SUSPECT, PIRATE)

    def test_send_text_ignores_non_report_strings(self, attest_key):
        calls = []
        client = ReportClient(calls.append, attest_key, "dev-1")
        assert client.send_text("just a log line, key=deadbeef") is None
        assert calls == []
