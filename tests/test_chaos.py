"""Fault plans, injectors, and the chaos harness itself."""

import json

import pytest

from repro.chaos import (
    FAULT_SITES,
    ChaosConfig,
    CrashRestartConfig,
    FaultPlan,
    active_plan,
    clear_plan,
    current_plan,
    fault_point,
    install_plan,
    run_chaos,
    run_crash_restart,
)
from repro.cli import EXIT_OK, main
from repro.errors import FaultInjected, ReproError, TransportError


class FakeDevice:
    def __init__(self):
        self.clock = 0.0

    def advance(self, seconds):
        self.clock += seconds


class TestArmValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultPlan(seed=1).arm("crypto.aes.encrpyt", "raise")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown fault mode"):
            FaultPlan(seed=1).arm("crypto.aes.decrypt", "corrupt")

    def test_probability_bounds(self):
        with pytest.raises(ReproError, match="probability"):
            FaultPlan(seed=1).arm("crypto.aes.decrypt", "raise", probability=1.5)

    def test_every_registered_site_arms(self):
        plan = FaultPlan(seed=1)
        for site in FAULT_SITES:
            plan.arm(site, "raise")
        assert plan.armed_sites() == tuple(sorted(FAULT_SITES))


class TestInjectors:
    def test_noop_without_plan(self):
        clear_plan()
        data = b"payload"
        assert fault_point("crypto.aes.decrypt", data) is data

    def test_noop_for_unarmed_site(self):
        plan = FaultPlan(seed=1).arm("report.transport", "raise")
        with active_plan(plan):
            assert fault_point("crypto.aes.decrypt", b"x") == b"x"
        assert plan.fires() == 0

    def test_raise_mode_carries_site(self):
        plan = FaultPlan(seed=1).arm("vm.classload", "raise")
        with active_plan(plan):
            with pytest.raises(FaultInjected) as info:
                fault_point("vm.classload")
        assert info.value.site == "vm.classload"
        assert plan.fires("vm.classload") == 1

    def test_raise_mode_custom_exception(self):
        plan = FaultPlan(seed=1).arm("report.transport", "raise", exc=TransportError)
        with active_plan(plan):
            with pytest.raises(TransportError):
                fault_point("report.transport")

    def test_flip_changes_exactly_magnitude_bits(self):
        plan = FaultPlan(seed=1).arm("crypto.aes.decrypt", "flip", magnitude=3)
        data = bytes(64)
        with active_plan(plan):
            corrupted = fault_point("crypto.aes.decrypt", data)
        assert corrupted != data
        assert len(corrupted) == len(data)
        flipped = sum(bin(a ^ b).count("1") for a, b in zip(data, corrupted))
        assert 1 <= flipped <= 3   # collisions can re-flip a bit back

    def test_flip_corrupts_int_signatures(self):
        # RSA signatures travel as integers; flip must corrupt them
        # rather than degrading to raise inside client.flush.
        plan = FaultPlan(seed=1).arm("client.spool", "flip", magnitude=2)
        signature = 0x1234_5678_9ABC_DEF0
        with active_plan(plan):
            corrupted = fault_point("client.spool", signature)
        assert isinstance(corrupted, int)
        assert corrupted != signature

    def test_truncate_halves(self):
        plan = FaultPlan(seed=1).arm("dex.deserialize", "truncate")
        with active_plan(plan):
            assert fault_point("dex.deserialize", b"abcdefgh") == b"abcd"

    def test_clamp_caps_int(self):
        plan = FaultPlan(seed=1).arm("vm.budget", "clamp", magnitude=40)
        with active_plan(plan):
            assert fault_point("vm.budget", 250_000) == 40
            assert fault_point("vm.budget", 7) == 7

    def test_latency_skews_device_clock(self):
        plan = FaultPlan(seed=1).arm("vm.clock", "latency", magnitude=5)
        device = FakeDevice()
        with active_plan(plan):
            assert fault_point("vm.clock", device=device) is None
        assert device.clock == 5.0

    def test_data_mode_without_data_degrades_to_raise(self):
        plan = FaultPlan(seed=1).arm("vm.framework", "flip")
        with active_plan(plan):
            with pytest.raises(FaultInjected):
                fault_point("vm.framework")

    def test_max_fires_cap(self):
        plan = FaultPlan(seed=1).arm("vm.classload", "raise", max_fires=2)
        with active_plan(plan):
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    fault_point("vm.classload")
            fault_point("vm.classload")   # third check: armed but spent
        assert plan.fires() == 2

    def test_probability_is_deterministic_per_seed(self):
        def pattern(seed):
            plan = FaultPlan(seed=seed).arm(
                "crypto.aes.decrypt", "raise", probability=0.5
            )
            fired = []
            with active_plan(plan):
                for _ in range(32):
                    try:
                        fault_point("crypto.aes.decrypt")
                        fired.append(0)
                    except FaultInjected:
                        fired.append(1)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)

    def test_log_signature_replays(self):
        def run(seed):
            plan = FaultPlan(seed=seed)
            plan.arm("crypto.aes.decrypt", "flip", probability=0.7, magnitude=2)
            plan.arm("dex.deserialize", "truncate", probability=0.4)
            with active_plan(plan):
                for i in range(16):
                    fault_point("crypto.aes.decrypt", bytes(16 + i))
                    fault_point("dex.deserialize", bytes(32))
            return plan.log_signature()

        assert run(9) == run(9)

    def test_active_plan_restores_previous(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        install_plan(outer)
        try:
            with active_plan(inner):
                assert current_plan() is inner
            assert current_plan() is outer
        finally:
            clear_plan()
        assert current_plan() is None


class TestChaosHarness:
    @pytest.fixture(scope="class")
    def reports(self):
        config = ChaosConfig(
            seed=11, trials=3, events=300, scale=0.3, devices=2,
            profiling_events=200,
        )
        return run_chaos(config), run_chaos(config)

    def test_invariants_hold(self, reports):
        report, _ = reports
        assert report.ok, "\n".join(report.violations)
        assert report.baseline_transparent
        assert report.bombs_injected > 0
        assert len(report.trials) == 3
        assert {r.scenario for r in report.trials} <= {
            "genuine", "pirated", "hostile"
        }

    def test_faults_actually_fired(self, reports):
        report, _ = reports
        assert sum(r.fault_fires for r in report.trials) > 0

    def test_replay_digest_identical(self, reports):
        first, second = reports
        assert first.digest() == second.digest()

    def test_report_serializes(self, reports):
        report, _ = reports
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["digest"] == report.digest()
        assert "replay digest" in report.summary()

    def test_meshed_protection_holds_invariants(self):
        """The fault matrix over a *meshed* protection: genuine runs must
        stay transparent and never trip a mesh guard (peers and pins are
        intact; a contained decrypt fault is not tampering)."""
        config = ChaosConfig(
            seed=11, trials=3, events=300, scale=0.3, devices=2,
            profiling_events=200, mesh=True,
        )
        report = run_chaos(config)
        assert report.ok, "\n".join(report.violations)
        assert report.baseline_transparent


class TestChaosCli:
    def test_chaos_smoke_exits_ok(self, capsys):
        code = main([
            "chaos", "--seed", "11", "--trials", "2",
            "--events", "300", "--scale", "0.3",
        ])
        assert code == EXIT_OK
        assert "invariants: all held" in capsys.readouterr().out

    def test_chaos_json_output(self, capsys):
        code = main([
            "chaos", "--seed", "11", "--trials", "1",
            "--events", "300", "--scale", "0.3", "--json",
        ])
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["violations"] == []


class TestCrashRestart:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        config = CrashRestartConfig(
            seed=11, reports=24, crash_offsets=(5, 12, 21),
            snapshot_every=8,
            data_dir=str(tmp_path_factory.mktemp("crash-state")),
        )
        return run_crash_restart(config), run_crash_restart(config)

    def test_exactly_once_invariants_hold(self, reports):
        report, _ = reports
        assert report.ok, "\n".join(report.violations)
        # scenarios x crash offsets, every one checked.
        assert len(report.trials) == 2 * 3
        assert {r.scenario for r in report.trials} == {"genuine", "pirated"}

    def test_pirated_takes_down_exactly_once_across_crash(self, reports):
        report, _ = reports
        for record in report.trials:
            expected = 1 if record.scenario == "pirated" else 0
            assert record.takedowns == expected

    def test_torn_tails_recovered(self, reports):
        report, _ = reports
        assert all(r.torn_records == 1 for r in report.trials)

    def test_wal_and_snapshot_paths_both_exercised(self, reports):
        report, _ = reports
        assert any(r.wal_replayed > 0 for r in report.trials)
        assert any(r.snapshot_loaded for r in report.trials)

    def test_replay_digest_identical(self, reports):
        first, second = reports
        assert first.digest() == second.digest()

    def test_report_serializes(self, reports):
        report, _ = reports
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["digest"] == report.digest()
        assert "crash-restart" in report.summary()

    def test_cli_crash_restart_exits_ok(self, capsys):
        code = main([
            "chaos", "--crash-restart", "--seed", "11", "--reports", "18",
        ])
        assert code == EXIT_OK
        assert "invariants: all held" in capsys.readouterr().out
