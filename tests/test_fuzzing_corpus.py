"""Fuzzer models, sessions, and the synthetic corpus."""

import pytest

from repro.analysis import find_qualified_conditions
from repro.corpus import (
    CATEGORY_PROFILES,
    NAMED_APPS,
    build_app,
    build_named_app,
    generate_corpus,
)
from repro.dex.serializer import serialize_dex
from repro.errors import VMError
from repro.fuzzing import (
    AndroidHookerGenerator,
    DynodroidGenerator,
    FuzzSession,
    GENERATORS,
    MonkeyGenerator,
    PumaGenerator,
)
from repro.vm import DevicePopulation, Runtime
from repro.vm.events import declared_events, handler_name_for


@pytest.fixture(scope="module")
def app():
    return build_app("FuzzMe", category="Game", seed=5, scale=0.15)


class TestGenerators:
    def test_registry_complete(self):
        assert set(GENERATORS) == {"monkey", "puma", "androidhooker", "dynodroid"}

    def test_deterministic_per_seed(self, app):
        a = MonkeyGenerator(app.dex, seed=3).stream(50)
        b = MonkeyGenerator(app.dex, seed=3).stream(50)
        assert a == b

    def test_different_seeds_differ(self, app):
        a = MonkeyGenerator(app.dex, seed=3).stream(50)
        b = MonkeyGenerator(app.dex, seed=4).stream(50)
        assert a != b

    @pytest.mark.parametrize("cls", [PumaGenerator, AndroidHookerGenerator, DynodroidGenerator])
    def test_model_aware_fuzzers_only_fire_declared(self, app, cls):
        declared = set(declared_events(app.dex))
        for event in cls(app.dex, seed=1).stream(200):
            assert (event.kind, event.target_class) in declared

    def test_monkey_wastes_events(self, app):
        """Monkey fires blindly; some events land on missing handlers."""
        declared = set(declared_events(app.dex))
        events = MonkeyGenerator(app.dex, seed=1).stream(300)
        wasted = sum(1 for e in events if (e.kind, e.target_class) not in declared)
        assert wasted > 0

    def test_dynodroid_harvests_app_strings(self, app):
        generator = DynodroidGenerator(app.dex, seed=1)
        assert generator._harvest_string_constants(app.dex)

    def test_dynodroid_coverage_feedback_shifts_weights(self, app):
        generator = DynodroidGenerator(app.dex, seed=1)
        iterator = generator.events()
        event = next(iterator)
        before = dict(generator._rewarded)
        generator.notify_coverage(event, 25)
        assert generator._rewarded != before


class TestSession:
    def test_session_tolerates_crashes(self, app):
        """Inject a crashing handler and confirm the harness restarts."""
        from repro.dex import assemble_method

        dex = app.dex
        crashy = assemble_method(
            'const r1, "bang"\nthrow r1',
            class_name=sorted(dex.classes)[0],
            name="on_back",
            params=0,
        )
        cls = dex.classes[sorted(dex.classes)[0]]
        cls.methods.pop("on_back", None)
        cls.add_method(crashy)

        session = FuzzSession(
            dex,
            MonkeyGenerator(dex, seed=2),
            DevicePopulation(seed=2).sample(),
            seed=2,
        )
        result = session.run_for(120.0)
        assert result.crashes > 0
        assert result.events_played > 100

    def test_coverage_reported(self, app):
        session = FuzzSession(
            app.dex,
            DynodroidGenerator(app.dex, seed=3),
            DevicePopulation(seed=3).sample(),
            seed=3,
        )
        result = session.run_for(60.0)
        assert 0.0 < result.coverage <= 1.0


class TestCorpusGenerator:
    def test_profiles_match_table1_rows(self):
        names = [profile.name for profile in CATEGORY_PROFILES]
        assert names == [
            "Game", "Science&Edu", "Sport&Health", "Writing",
            "Navigation", "Multimedia", "Security", "Development",
        ]
        assert sum(p.app_count for p in CATEGORY_PROFILES) == 963

    def test_named_apps_cover_table2(self):
        assert [spec.name for spec in NAMED_APPS] == [
            "AndroFish", "Angulo", "SWJournal", "Calendar",
            "BRouter", "Binaural Beat", "Hash Droid", "CatLog",
        ]

    def test_generation_deterministic(self):
        a = build_app("X", seed=9, scale=0.1)
        b = build_app("X", seed=9, scale=0.1)
        assert serialize_dex(a.dex) == serialize_dex(b.dex)

    def test_structural_targets_roughly_met(self):
        bundle = build_app("Y", category="Game", seed=2, scale=0.5)
        instructions = bundle.dex.instruction_count()
        assert 0.4 * 3043 * 0.5 <= instructions <= 2.0 * 3043 * 0.5
        qcs = sum(
            len(find_qualified_conditions(m)) for m in bundle.dex.iter_methods()
        )
        assert qcs >= 10

    def test_apps_have_env_reads(self):
        bundle = build_app("Z", category="Multimedia", seed=3, scale=0.2)
        from repro.dex.disassembler import disassemble

        assert "android.env.get" in disassemble(bundle.dex)

    def test_generated_apps_are_crash_free(self):
        bundle = build_app("W", category="Security", seed=4, scale=0.15)
        runtime = Runtime(bundle.dex, package=bundle.apk.install_view(), seed=1)
        runtime.boot()
        for event in DynodroidGenerator(bundle.dex, seed=1).stream(800):
            runtime.dispatch(event)  # any crash fails the test

    def test_androfish_has_figure3_fields(self):
        bundle = build_named_app("AndroFish")
        fish = bundle.dex.classes["Fish"]
        assert set(fish.fields) == {"dir", "width", "height", "speed", "posX", "posY"}

    def test_corpus_iterator(self):
        bundles = list(generate_corpus("Game", count=3, scale=0.1, seed=1))
        assert len(bundles) == 3
        assert len({b.apk.cert.fingerprint_hex() for b in bundles}) == 3

    def test_apk_signed_and_installable(self):
        bundle = build_app("V", seed=6, scale=0.1)
        bundle.apk.verify()
        view = bundle.apk.install_view()
        assert view.cert_fingerprint_hex == bundle.developer_key.public.fingerprint().hex()
