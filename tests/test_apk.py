"""APK packaging, signing, manifest digests, steganography."""

import pytest
from hypothesis import given, strategies as st

from repro.apk import (
    Apk,
    Manifest,
    Resources,
    build_apk,
    embed_in_cover,
    extract_from_cover,
    stego_capacity,
)
from repro.apk.package import ENTRY_DEX
from repro.crypto import RSAKeyPair, sha1_hex
from repro.dex import assemble
from repro.errors import ApkError, SignatureError


@pytest.fixture(scope="module")
def dex():
    return assemble(".class A\n.method on_key 1\nreturn_void\n.end")


@pytest.fixture(scope="module")
def key():
    return RSAKeyPair.generate(seed=21)


@pytest.fixture(scope="module")
def resources():
    return Resources(
        strings={"app_name": "Demo", "note": "hello <world> & \"friends\""},
        app_name="Demo",
        author="dev",
        assets={"data.bin": b"\x00\x01\x02" * 100},
    )


@pytest.fixture(scope="module")
def apk(dex, resources, key):
    return build_apk(dex, resources, key)


class TestBuildAndVerify:
    def test_fresh_apk_verifies(self, apk):
        apk.verify()

    def test_dex_roundtrip(self, apk, dex):
        from repro.dex import disassemble

        assert disassemble(apk.dex()) == disassemble(dex)

    def test_resources_roundtrip(self, apk, resources):
        restored = apk.resources()
        assert restored.strings == resources.strings
        assert restored.app_name == "Demo"
        assert restored.author == "dev"
        assert restored.assets == resources.assets

    def test_tampered_entry_fails_verification(self, apk):
        tampered = Apk(dict(apk.entries), apk.manifest, apk.cert)
        tampered.entries[ENTRY_DEX] = apk.entries[ENTRY_DEX] + b"\x00"
        with pytest.raises(SignatureError, match="digests"):
            tampered.verify()

    def test_tampered_manifest_fails_signature(self, apk):
        manifest = Manifest(dict(apk.manifest.digests))
        manifest.digests["extra"] = "00" * 20
        # Rebuild entries to match the forged manifest so the digest
        # check passes and the *signature* must catch it.
        entries = dict(apk.entries)
        entries["extra"] = b""
        forged = Apk(entries, manifest, apk.cert)
        with pytest.raises(SignatureError):
            forged.verify()

    def test_install_view_contents(self, apk, key):
        view = apk.install_view()
        assert view.cert_fingerprint_hex == key.public.fingerprint().hex()
        assert view.manifest_digests["classes.dex"] == sha1_hex(apk.entries[ENTRY_DEX])
        assert view.resources["app_name"] == "Demo"
        assert view.code_blob == apk.entries[ENTRY_DEX]

    def test_missing_entry_raises(self, apk):
        with pytest.raises(ApkError):
            apk.entry("nope")

    def test_total_size_counts_assets(self, apk, resources):
        assert apk.total_size() > len(resources.assets["data.bin"])


class TestManifest:
    def test_over_entries_and_match(self):
        entries = {"a": b"1", "b": b"22"}
        manifest = Manifest.over_entries(entries)
        assert manifest.matches(entries)
        assert not manifest.matches({"a": b"1", "b": b"XX"})
        assert not manifest.matches({"a": b"1"})

    def test_serialize_parse_roundtrip(self):
        manifest = Manifest.over_entries({"x/y.bin": b"data"})
        assert Manifest.parse(manifest.serialize()).digests == manifest.digests

    def test_get_missing(self):
        with pytest.raises(ApkError):
            Manifest().get("ghost")


class TestResourcesXml:
    def test_xml_roundtrip_with_escapes(self, resources):
        restored = Resources.from_xml(resources.to_xml())
        assert restored.strings == resources.strings

    def test_malformed_line_rejected(self):
        with pytest.raises(ApkError):
            Resources.from_xml('<string name="broken">')


class TestStego:
    COVER = (
        "thank you for installing this application we hope you enjoy "
        "using it every single day and tell all your friends about it"
    )

    def test_roundtrip(self):
        hidden = embed_in_cover(self.COVER, b"\xde\xad\xbe\xef")
        assert extract_from_cover(hidden, 4) == b"\xde\xad\xbe\xef"

    def test_carrier_reads_the_same(self):
        hidden = embed_in_cover(self.COVER, b"\x12\x34")
        assert hidden.lower() == self.COVER.lower()

    def test_capacity_counts_letters_only(self):
        assert stego_capacity("ab c!") == 3

    def test_insufficient_cover_rejected(self):
        with pytest.raises(ApkError, match="bits"):
            embed_in_cover("tiny", b"\x00" * 10)

    def test_short_carrier_extraction_rejected(self):
        with pytest.raises(ApkError):
            extract_from_cover("abc", 4)

    @given(st.binary(min_size=1, max_size=12))
    def test_roundtrip_property(self, data):
        hidden = embed_in_cover(self.COVER, data)
        assert extract_from_cover(hidden, len(data)) == data
