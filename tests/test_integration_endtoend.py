"""The full paper story as one integration test per act."""

import pytest

from repro import BombDroid, BombDroidConfig, build_named_app, repackage
from repro.attacks import FuzzingAttack, SymbolicAttack
from repro.crypto import RSAKeyPair
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.userside import DetectionAggregator, AggregatedVerdict
from repro.vm import DevicePopulation, Runtime


@pytest.fixture(scope="module")
def story():
    """Build -> protect -> pirate, once for the whole module."""
    bundle = build_named_app("Angulo", scale=0.5)
    config = BombDroidConfig(seed=13, profiling_events=600)
    result = BombDroid(config).protect(bundle.apk, bundle.developer_key)
    attacker = RSAKeyPair.generate(seed=1313)
    pirated = repackage(result.apk, attacker)
    return bundle, result.apk, result.report, attacker, pirated


def test_act1_protection_preserves_the_app(story):
    bundle, protected, report, _, _ = story
    assert report.total_injected >= 5
    runtime = Runtime(protected.dex(), package=protected.install_view(), seed=2)
    runtime.boot()
    for event in DynodroidGenerator(protected.dex(), seed=2).stream(400):
        runtime.dispatch(event)
    assert not runtime.detections


def test_act1b_clean_and_protected_apps_lint_clean(story):
    from repro.lint import errors, format_report, run_lint

    bundle, protected, report, _, _ = story
    original = run_lint(bundle.apk.dex())
    assert not errors(original), format_report(original)
    diagnostics = run_lint(protected.dex(), report=report)
    assert not errors(diagnostics), format_report(diagnostics)


def test_act2_attacker_analysis_stalls(story):
    bundle, protected, report, _, _ = story
    symbolic = SymbolicAttack(max_paths=32, max_steps=1500).run(protected)
    assert not symbolic.defeated_defense
    assert symbolic.details["hash_walls"] > 0

    fuzz = FuzzingAttack(duration_seconds=600, seed=3)
    outcome = fuzz.run_one(
        protected, "dynodroid", [b.bomb_id for b in report.real_bombs()]
    )
    # Some outer conditions fire in the lab; full double triggers are rare.
    assert outcome.fully_triggered_rate < 0.5


def test_act3_users_catch_the_pirate(story):
    bundle, _, report, attacker, pirated = story
    aggregator = DetectionAggregator(
        app_name=bundle.name,
        original_key_hex=bundle.developer_key.public.fingerprint().hex(),
        report_threshold=1,
    )
    population = DevicePopulation(seed=4)
    detections = 0
    for index in range(8):
        runtime = Runtime(
            pirated.dex(),
            device=population.sample(),
            package=pirated.install_view(),
            seed=index,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        for event in DynodroidGenerator(pirated.dex(), seed=index).stream(1500):
            try:
                runtime.dispatch(event)
            except VMError:
                pass
        detections += bool(runtime.detections)
        aggregator.ingest_session(runtime)
    assert detections >= 2
    verdict, key = aggregator.verdict()
    if verdict is not AggregatedVerdict.CLEAN:
        assert key == attacker.public.fingerprint().hex()
