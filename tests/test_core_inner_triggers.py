"""Inner trigger conditions: probability math, codegen agreement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.inner_triggers import (
    CmpOp,
    Connective,
    Constraint,
    InnerCondition,
    build_inner_condition,
)
from repro.dex import DexClass, DexFile
from repro.dex.builder import MethodBuilder
from repro.vm import DevicePopulation, Runtime
from repro.vm.device import attacker_lab_profiles


def evaluate_compiled(condition: InnerCondition, device) -> bool:
    """Compile the condition to bytecode and run it on ``device``."""
    builder = MethodBuilder("T", "m", params=0)
    result = condition.emit(builder)
    builder.ret(result)
    dex = DexFile()
    cls = dex.add_class(DexClass(name="T"))
    cls.add_method(builder.build())
    runtime = Runtime(dex, device=device)
    return bool(runtime.invoke("T.m", []))


class TestConstraintMath:
    def test_int_equality_probability(self):
        constraint = Constraint("gps.lat", CmpOp.EQ, 0)
        assert constraint.probability() == pytest.approx(1 / 181)

    def test_interval_probability(self):
        # The paper's example: 101 < C < 132 over an IP octet has
        # p = 30/256 (Section 7.3).
        condition = InnerCondition(
            constraints=(
                Constraint("net.ip_c", CmpOp.GT, 101),
                Constraint("net.ip_c", CmpOp.LT, 132),
            ),
            connective=Connective.AND,
        )
        assert condition.probability() == pytest.approx(30 / 256)

    def test_choice_equality_probability(self):
        constraint = Constraint("build.manufacturer", CmpOp.EQ, "samsung")
        assert constraint.probability() == pytest.approx(0.315, rel=0.01)

    def test_ne_probability_complements(self):
        eq = Constraint("gps.lon", CmpOp.EQ, 5)
        ne = Constraint("gps.lon", CmpOp.NE, 5)
        assert eq.probability() + ne.probability() == pytest.approx(1.0)

    def test_or_probability(self):
        condition = InnerCondition(
            constraints=(
                Constraint("build.manufacturer", CmpOp.EQ, "sony"),
                Constraint("build.manufacturer", CmpOp.EQ, "htc"),
            ),
            connective=Connective.OR,
        )
        # Not independent in reality, but the estimate is close for
        # small probabilities.
        assert 0.03 < condition.probability() < 0.06

    def test_evaluate_on_profile(self):
        device = attacker_lab_profiles(1)[0]
        yes = Constraint("build.manufacturer", CmpOp.EQ, "generic")
        no = Constraint("build.manufacturer", CmpOp.EQ, "samsung")
        assert yes.evaluate(device)
        assert not no.evaluate(device)


class TestGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_probability_in_band(self, seed):
        condition = build_inner_condition(random.Random(seed), (0.1, 0.2))
        assert 0.05 <= condition.probability() <= 0.3

    def test_description_is_readable(self):
        condition = build_inner_condition(random.Random(3), (0.1, 0.2))
        assert "env[" in condition.describe()

    @pytest.mark.parametrize("seed", range(6))
    def test_compiled_matches_python_evaluation(self, seed):
        """The bytecode emitted into payloads must agree with the
        reference evaluator on sampled devices."""
        condition = build_inner_condition(random.Random(seed), (0.1, 0.3))
        population = DevicePopulation(seed=seed)
        for _ in range(10):
            device = population.sample()
            assert evaluate_compiled(condition, device) == condition.evaluate(device)

    def test_empirical_rate_tracks_estimate(self):
        condition = build_inner_condition(random.Random(11), (0.1, 0.2))
        population = DevicePopulation(seed=5)
        hits = sum(condition.evaluate(population.sample()) for _ in range(400))
        estimate = condition.probability()
        assert abs(hits / 400 - estimate) < 0.12

    def test_population_diversity_beats_the_lab(self):
        """Core of the paper's D1: conditions rarely satisfiable in the
        attacker's lab fire across the population."""
        rng = random.Random(2)
        conditions = [build_inner_condition(rng, (0.1, 0.2)) for _ in range(25)]
        lab = attacker_lab_profiles(4)
        lab_hits = sum(
            any(c.evaluate(device) for device in lab) for c in conditions
        )
        population = DevicePopulation(seed=1).sample_many(40)
        population_hits = sum(
            any(c.evaluate(device) for device in population) for c in conditions
        )
        assert population_hits > lab_hits
