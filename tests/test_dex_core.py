"""Instruction model, method/class model, builder."""

import pytest

from repro.dex import DexClass, DexField, DexFile, DexMethod, Instr, Label, MethodBuilder, Op
from repro.dex import instructions as ins
from repro.errors import DexError


class TestInstructionFactories:
    def test_const_accepts_supported_literals(self):
        for value in (0, -5, True, "text", b"\x00\x01", None):
            assert ins.const(0, value).value == value

    def test_const_rejects_unsupported(self):
        with pytest.raises(DexError):
            ins.const(0, 1.5)

    def test_negative_register_rejected(self):
        with pytest.raises(DexError):
            ins.move(-1, 0)

    def test_branch_requires_label(self):
        with pytest.raises(DexError):
            Instr(Op.IF_EQ, a=0, b=1)

    def test_switch_table_validation(self):
        with pytest.raises(DexError):
            ins.switch(0, {})
        with pytest.raises(DexError):
            ins.switch(0, {1: 7})
        with pytest.raises(DexError):
            ins.switch(0, {1.5: "lbl"})

    def test_invoke_requires_qualified_name(self):
        with pytest.raises(DexError):
            ins.invoke(0, "unqualified")

    def test_sget_requires_qualified_field(self):
        with pytest.raises(DexError):
            ins.sget(0, "bare")

    def test_label_requires_name(self):
        with pytest.raises(DexError):
            Label("")


class TestReadsWrites:
    def test_binop_reads_sources_writes_dst(self):
        instr = ins.binop(Op.ADD, 2, 0, 1)
        assert set(instr.reads()) == {0, 1}
        assert instr.writes() == (2,)

    def test_aput_reads_value_index_and_array(self):
        instr = ins.aput(src=3, arr=4, index=5)
        assert set(instr.reads()) == {3, 4, 5}
        assert instr.writes() == ()

    def test_invoke_reads_args(self):
        instr = ins.invoke(1, "A.m", (2, 3, 4))
        assert set(instr.reads()) == {2, 3, 4}
        assert instr.writes() == (1,)

    def test_iput_writes_nothing(self):
        assert ins.iput(0, 1, "f").writes() == ()


class TestDexMethod:
    def _method(self, instructions, registers=4):
        return DexMethod("m", "C", params=1, registers=registers, instructions=instructions)

    def test_label_map(self):
        method = self._method([Label("a"), ins.ret_void(), Label("b")])
        assert method.label_map() == {"a": 0, "b": 2}

    def test_duplicate_label_rejected(self):
        method = self._method([Label("a"), Label("a")])
        with pytest.raises(DexError):
            method.label_map()

    def test_validate_checks_register_range(self):
        method = self._method([ins.move(9, 0), ins.ret_void()])
        with pytest.raises(DexError):
            method.validate()

    def test_validate_checks_targets(self):
        method = self._method([ins.goto("nowhere")])
        with pytest.raises(DexError):
            method.validate()

    def test_validate_checks_switch_targets(self):
        method = self._method([ins.switch(0, {1: "missing"}), ins.ret_void()])
        with pytest.raises(DexError):
            method.validate()

    def test_grow_registers(self):
        method = self._method([ins.ret_void()])
        first = method.grow_registers(3)
        assert first == 4
        assert method.registers == 7

    def test_invalidate_refreshes_labels(self):
        method = self._method([ins.ret_void()])
        method.label_map()
        method.instructions.insert(0, Label("new"))
        method.invalidate()
        assert "new" in method.label_map()

    def test_real_instruction_count_excludes_labels(self):
        method = self._method([Label("a"), ins.ret_void()])
        assert method.real_instruction_count() == 1

    def test_registers_must_cover_params(self):
        with pytest.raises(DexError):
            DexMethod("m", "C", params=3, registers=2)


class TestDexFileModel:
    def test_duplicate_class_rejected(self):
        dex = DexFile()
        dex.add_class(DexClass(name="A"))
        with pytest.raises(DexError):
            dex.add_class(DexClass(name="A"))

    def test_get_method(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="A"))
        method = DexMethod("m", "A", 0, 1, [ins.ret_void()])
        cls.add_method(method)
        assert dex.get_method("A.m") is method
        with pytest.raises(DexError):
            dex.get_method("A.missing")

    def test_method_class_ownership_enforced(self):
        cls = DexClass(name="A")
        with pytest.raises(DexError):
            cls.add_method(DexMethod("m", "B", 0, 1, [ins.ret_void()]))

    def test_event_handlers_sorted(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="Z"))
        cls.add_method(DexMethod("on_key", "Z", 1, 1, [ins.ret_void()]))
        cls2 = dex.add_class(DexClass(name="A"))
        cls2.add_method(DexMethod("on_touch", "A", 2, 2, [ins.ret_void()]))
        names = [m.qualified_name for m in dex.event_handlers()]
        assert names == ["A.on_touch", "Z.on_key"]


class TestMethodBuilder:
    def test_fluent_build(self):
        builder = MethodBuilder("C", "m", params=1)
        tmp = builder.reg()
        builder.const(tmp, 41).add_lit(tmp, tmp, 1).ret(tmp)
        method = builder.build()
        assert method.registers == 2
        assert method.real_instruction_count() == 3

    def test_const_new_allocates(self):
        builder = MethodBuilder("C", "m")
        a = builder.const_new(1)
        b = builder.const_new(2)
        assert a != b

    def test_empty_body_rejected(self):
        with pytest.raises(DexError):
            MethodBuilder("C", "m").build()

    def test_fresh_labels_unique(self):
        builder = MethodBuilder("C", "m")
        assert builder.fresh_label() != builder.fresh_label()
