"""Mesh planner and second weaving pass (repro.core.mesh)."""

import random

import pytest

from repro.apk.package import build_apk
from repro.attacks.signatures import (
    CLASSIC_SIGNATURE,
    count_live_anchors,
    strip_with_signature,
)
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind
from repro.core.mesh import (
    MeshPlanner,
    PrologueMorph,
    PrologueShape,
    decoy_hex_for,
    survives_classic_strip,
)
from repro.core.stats import Bomb, BombOrigin, Strength
from repro.dex.serializer import serialize_dex
from repro.errors import VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.lint import errors, run_lint
from repro.vm.aliases import (
    ALIAS_RESOURCE_KEY,
    ALIASABLE_APIS,
    alias_table_from_resources,
)
from repro.vm.device import DevicePopulation
from repro.vm.runtime import Runtime


MESH_DETECTIONS = (
    DetectionMethod.PUBLIC_KEY,
    DetectionMethod.CODE_DIGEST,
    DetectionMethod.CODE_SCAN,
)
MESH_RESPONSES = (
    ResponseKind.CRASH,
    ResponseKind.WARN,
    ResponseKind.REPORT,
    ResponseKind.SLOWDOWN,
)


def mesh_config(seed=4, **overrides):
    base = dict(
        seed=seed,
        profiling_events=400,
        mesh=True,
        detection_methods=MESH_DETECTIONS,
        responses=MESH_RESPONSES,
    )
    base.update(overrides)
    return BombDroidConfig(**base)


@pytest.fixture(scope="module")
def meshed(small_apk, developer_key):
    return BombDroid(mesh_config()).protect(small_apk, developer_key)


def planner(seed=1, **overrides):
    return MeshPlanner(mesh_config(**overrides), random.Random(seed))


class TestPlanner:
    def test_ring_topology_is_a_cycle(self):
        ids = [f"b{i}" for i in range(5)]
        peers = planner().topology(ids)
        assert set(peers) == set(ids)
        indegree = {bomb_id: 0 for bomb_id in ids}
        for bomb_id, chosen in peers.items():
            assert len(chosen) == 1
            assert chosen[0] != bomb_id
            indegree[chosen[0]] += 1
        # A ring: every bomb is watched by exactly one other bomb.
        assert all(count == 1 for count in indegree.values())

    def test_k_regular_topology(self):
        ids = [f"b{i}" for i in range(6)]
        peers = planner(mesh_topology="k_regular", mesh_degree=2).topology(ids)
        for bomb_id, chosen in peers.items():
            assert len(chosen) == 2
            assert bomb_id not in chosen
            assert len(set(chosen)) == 2

    def test_degree_clamped_to_population(self):
        peers = planner(mesh_degree=5).topology(["a", "b"])
        assert peers["a"] == ("b",)
        assert peers["b"] == ("a",)

    def test_single_bomb_has_no_peers(self):
        assert planner().topology(["only"]) == {"only": ()}

    def test_every_other_morph_survives_the_classic_strip(self):
        plan = planner()
        morphs = [plan.next_morph() for _ in range(20)]
        assert all(survives_classic_strip(m) for m in morphs[::2])

    def test_morphing_disabled_yields_classic(self):
        plan = planner(mesh_morph_prologues=False)
        assert all(
            plan.next_morph() == PrologueMorph(PrologueShape.CLASSIC, False)
            for _ in range(5)
        )

    def test_planner_is_deterministic(self):
        a, b = planner(seed=7), planner(seed=7)
        assert a.alias_key == b.alias_key
        assert [a.next_morph() for _ in range(8)] == [
            b.next_morph() for _ in range(8)
        ]
        ids = [f"b{i}" for i in range(4)]
        assert a.topology(ids) == b.topology(ids)

    def test_aliases_cover_the_aliasable_surface(self):
        table = planner().aliases()
        assert sorted(table.values()) == sorted(ALIASABLE_APIS)
        # Alias symbols must not collide with the canonical names.
        assert not set(table) & set(ALIASABLE_APIS)

    def test_survivor_predicate(self):
        assert not survives_classic_strip(
            PrologueMorph(PrologueShape.CLASSIC, False)
        )
        assert not survives_classic_strip(
            PrologueMorph(PrologueShape.SWAPPED, False)
        )
        assert survives_classic_strip(PrologueMorph(PrologueShape.SPLIT, False))
        assert survives_classic_strip(PrologueMorph(PrologueShape.DECOY, False))
        assert survives_classic_strip(PrologueMorph(PrologueShape.CLASSIC, True))

    def test_decoy_constant_differs_from_hc(self):
        hc = "ab" * 20
        assert decoy_hex_for(hc) != hc
        assert decoy_hex_for(hc) == decoy_hex_for(hc)

    def test_response_plans_follow_the_config(self):
        immediate = planner(mesh_delayed_responses=False).plan_response(
            ResponseKind.WARN
        )
        assert immediate.delay_marks == 0 and immediate.gate_env is None
        drawn = [
            planner(seed=i).plan_response(ResponseKind.WARN) for i in range(12)
        ]
        assert any(p.delay_marks > 0 or p.gate_env is not None for p in drawn)


class TestMeshedProtection:
    def test_real_bombs_are_cross_referenced(self, meshed):
        real = [b for b in meshed.report.bombs if b.origin is not BombOrigin.BOGUS]
        assert len(real) >= 2
        assert all(b.mesh_peers for b in real)
        # Bogus bombs carry no payload detection and join no mesh.
        bogus = [b for b in meshed.report.bombs if b.origin is BombOrigin.BOGUS]
        assert all(not b.mesh_peers for b in bogus)

    def test_prologue_shapes_recorded_and_morphed(self, meshed):
        shapes = [b.prologue_shape for b in meshed.report.bombs]
        assert all(shapes)
        assert any(shape != "classic" for shape in shapes)

    def test_alias_key_shipped_in_resources(self, meshed):
        strings = meshed.apk.resources().strings
        assert ALIAS_RESOURCE_KEY in strings
        table = alias_table_from_resources(strings)
        assert sorted(table.values()) == sorted(ALIASABLE_APIS)

    def test_meshed_app_passes_lint(self, meshed):
        aliases = alias_table_from_resources(meshed.apk.resources().strings)
        diagnostics = run_lint(meshed.apk.dex(), aliases=aliases)
        assert not errors(diagnostics)

    def test_bomb_mesh_fields_roundtrip(self):
        bomb = Bomb(
            bomb_id="b9",
            method="A.m",
            origin=BombOrigin.ARTIFICIAL,
            strength=Strength.STRONG,
            const_value=42,
            salt_hex="aa" * 16,
            hc_hex="bb" * 20,
            payload_class="Bomb$b9",
            woven=False,
            detection=DetectionMethod.PUBLIC_KEY,
            response=ResponseKind.WARN,
            prologue_shape="decoy+alias",
            mesh_peers=("b1", "b2"),
            content_pin="A.other",
            response_plan="warn after 2 trips",
        )
        clone = Bomb.from_dict(bomb.to_dict())
        assert clone.prologue_shape == "decoy+alias"
        assert clone.mesh_peers == ("b1", "b2")
        assert clone.content_pin == "A.other"
        assert clone.response_plan == "warn after 2 trips"

    def test_mesh_off_output_is_inert_to_mesh_knobs(self, small_apk, developer_key):
        plain = BombDroid(
            mesh_config(mesh=False)
        ).protect(small_apk, developer_key)
        exotic = BombDroid(
            mesh_config(
                mesh=False,
                mesh_topology="k_regular",
                mesh_degree=3,
                mesh_morph_prologues=False,
                mesh_delayed_responses=False,
            )
        ).protect(small_apk, developer_key)
        assert serialize_dex(plain.apk.dex()) == serialize_dex(exotic.apk.dex())
        assert plain.apk.resources().strings == exotic.apk.resources().strings
        assert ALIAS_RESOURCE_KEY not in plain.apk.resources().strings
        assert all(b.prologue_shape == "classic" for b in plain.report.bombs)
        assert all(not b.mesh_peers for b in plain.report.bombs)


def _fuzz(apk, seed, events=500):
    runtime = Runtime(
        apk.dex(),
        device=DevicePopulation(seed=seed).sample(),
        package=apk.install_view(),
        seed=seed,
    )
    try:
        runtime.boot()
    except VMError:
        pass
    for event in DynodroidGenerator(apk.dex(), seed=seed).stream(events):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    return runtime


class TestMeshRuntime:
    """The guards at work: tamper trips survivors, honesty does not."""

    def _protect(self, small_apk, developer_key, seed):
        # PUBLIC_KEY-only detection and a developer-key rebuild keep
        # repackaging detection out of the picture: any tamper signal
        # below comes from the mesh guards alone.
        config = mesh_config(
            seed=seed,
            detection_methods=(DetectionMethod.PUBLIC_KEY,),
            mesh_delayed_responses=False,
        )
        return BombDroid(config).protect(small_apk, developer_key)

    def test_untampered_meshed_app_is_silent(self, small_apk, developer_key):
        result = self._protect(small_apk, developer_key, seed=4)
        runtime = _fuzz(result.apk, seed=21)
        assert not runtime.detections
        assert runtime.bombs.count("mesh_tripped") == 0
        assert runtime.bombs.count("responded") == 0

    def test_classic_strip_trips_a_surviving_guard(self, small_apk, developer_key):
        result = self._protect(small_apk, developer_key, seed=4)
        dex = result.apk.dex()
        patched = strip_with_signature(dex, CLASSIC_SIGNATURE)
        assert patched > 0
        # Mesh survivors are still armed after the single-pattern strip.
        assert count_live_anchors(dex) > 0
        tampered = build_apk(dex, result.apk.resources(), developer_key)
        tripped = 0
        for seed in range(20, 26):
            tripped += _fuzz(tampered, seed=seed).bombs.count("mesh_tripped")
        assert tripped > 0
