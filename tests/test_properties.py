"""Property-based whole-system invariants.

The heavyweight invariant: for ANY generated app and ANY event stream,
the protected app is observationally equivalent to the original on a
genuine install -- same return behaviors, same app state, no responses.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BombDroid, BombDroidConfig
from repro.corpus import build_app
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import DevicePopulation, Runtime

_slow = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _play(dex, package, device, events):
    runtime = Runtime(dex, device=device, package=package, seed=1)
    observations = []
    try:
        runtime.boot()
        observations.append(("boot", "ok"))
    except VMError as exc:
        observations.append(("boot", type(exc).__name__))
    for event in events:
        try:
            runtime.dispatch(event)
            observations.append("ok")
        except VMError as exc:
            observations.append(type(exc).__name__)
    state = {
        key: value
        for key, value in runtime.statics.items()
        if not key.startswith("Bomb$")
    }
    return observations, state, runtime


@_slow
@given(
    app_seed=st.integers(min_value=0, max_value=10_000),
    protect_seed=st.integers(min_value=0, max_value=10_000),
    stream_seed=st.integers(min_value=0, max_value=10_000),
)
def test_protection_is_semantics_preserving(app_seed, protect_seed, stream_seed):
    bundle = build_app("Prop", category="Game", seed=app_seed, scale=0.08)
    config = BombDroidConfig(seed=protect_seed, profiling_events=150)
    protected, report = BombDroid(config).protect(bundle.apk, bundle.developer_key)

    population = DevicePopulation(seed=stream_seed)
    device_a = population.sample()
    device_b = device_a.copy()
    events = DynodroidGenerator(bundle.dex, seed=stream_seed).stream(250)

    obs_a, state_a, _ = _play(
        bundle.apk.dex(), bundle.apk.install_view(), device_a, events
    )
    obs_b, state_b, runtime_b = _play(
        protected.dex(), protected.install_view(), device_b, events
    )
    assert obs_a == obs_b
    assert state_a == state_b
    # Genuine install: detection may run, responses must not.
    assert not runtime_b.detections
    assert not runtime_b.bombs.bombs_with("responded")


@_slow
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_report_is_internally_consistent(seed):
    bundle = build_app("Prop2", category="Writing", seed=seed, scale=0.08)
    config = BombDroidConfig(seed=seed, profiling_events=150)
    protected, report = BombDroid(config).protect(bundle.apk, bundle.developer_key)
    # Every bomb id unique, every payload class present in no cleartext.
    ids = [bomb.bomb_id for bomb in report.bombs]
    assert len(ids) == len(set(ids))
    listing_classes = set(protected.dex().classes)
    for bomb in report.bombs:
        assert bomb.payload_class not in listing_classes  # encrypted, not shipped
    assert report.size_after >= report.size_before
    protected.dex().validate()
    protected.verify()
