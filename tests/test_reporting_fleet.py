"""Fleet driver: calibration, end-to-end takedown, adversarial injection."""

import pytest

from repro.reporting import (
    AggregatedVerdict,
    FleetConfig,
    OutcomeModel,
    ReportServer,
    TakedownPolicy,
    run_fleet,
)
from repro.userside import Market

PIRATE = "bb" * 20
ORIGINAL = "aa" * 20


@pytest.fixture(scope="module")
def pirate_model(pirated_apk):
    """Outcome model calibrated from real interpreter sessions."""
    return OutcomeModel.calibrate(pirated_apk, sessions=5, events=350, seed=0)


class TestCalibration:
    def test_pirated_app_yields_reporting_model(self, pirate_model, attacker_key):
        assert pirate_model.report_rate > 0
        assert pirate_model.observed_key_hex == attacker_key.public.fingerprint().hex()
        assert pirate_model.bad_experience_rate > 0

    def test_original_app_yields_silent_model(self, protected_apk):
        model = OutcomeModel.calibrate(protected_apk, sessions=3, events=300, seed=0)
        assert model.report_rate == 0.0
        assert model.observed_key_hex == ""


class TestEndToEnd:
    def test_repackaged_app_reaches_takedown(
        self, pirate_model, pirated_apk, attacker_key, developer_key
    ):
        """protect -> repackage -> fleet -> market takedown, full loop."""
        market = Market(seed=4)
        listing = market.publish("Game (free!)", pirated_apk)
        original_key = developer_key.public.fingerprint().hex()
        config = FleetConfig(
            devices=4_000,
            batch_size=1_000,
            shards=4,
            seed=2,
            target_reports=200,
        )
        result = run_fleet(
            "Game", original_key, pirate_model, config,
            market=market, listing=listing,
        )
        assert result.verdict is AggregatedVerdict.TAKEDOWN
        assert result.offender_key == attacker_key.public.fingerprint().hex()
        assert result.takedown_clock is not None
        assert listing.taken_down
        assert market.active_installs(listing) == 0
        assert result.statuses.get("accepted", 0) >= 3
        # Detections sour the reviews along the way.
        assert result.average_rating < 5.0
        assert result.metrics["fleet.devices_simulated"] == 4_000

    def test_original_app_stays_clean(self, protected_apk, developer_key):
        model = OutcomeModel(
            report_rate=0.0, observed_key_hex="", bad_experience_rate=0.0
        )
        market = Market(seed=4)
        listing = market.publish("Game", protected_apk)
        result = run_fleet(
            "Game",
            developer_key.public.fingerprint().hex(),
            model,
            FleetConfig(devices=4_000, batch_size=1_000, shards=4, seed=2),
            market=market,
            listing=listing,
        )
        assert result.verdict is AggregatedVerdict.CLEAN
        assert result.reports_sent == 0
        assert not listing.taken_down


class TestAdversarialTraffic:
    def _model(self):
        return OutcomeModel(
            report_rate=0.02, observed_key_hex=PIRATE, bad_experience_rate=0.3
        )

    def test_duplicates_and_forgeries_rejected(self):
        config = FleetConfig(
            devices=20_000,
            batch_size=5_000,
            shards=4,
            seed=1,
            duplicate_rate=0.5,
            forge_rate=0.5,
            target_reports=None,
        )
        server = ReportServer(shards=4)
        result = run_fleet("Game", ORIGINAL, self._model(), config, server=server)
        assert result.verdict is AggregatedVerdict.TAKEDOWN
        assert result.statuses["duplicate"] > 0
        assert result.statuses["bad_signature"] > 0
        assert server.metrics.counter("reporting.rejected_forged").value \
            == result.statuses["bad_signature"]
        assert server.metrics.counter("reporting.duplicates_dropped").value \
            == result.statuses["duplicate"]

    def test_stale_replays_rejected(self):
        config = FleetConfig(
            devices=20_000,
            batch_size=4_000,
            shards=4,
            seed=1,
            replay_stale=True,
            target_reports=None,
        )
        server = ReportServer(shards=4, max_report_age=50.0)
        result = run_fleet("Game", ORIGINAL, self._model(), config, server=server)
        assert result.statuses.get("replayed", 0) > 0
        assert server.metrics.counter("reporting.rejected_replayed").value > 0

    def test_flaky_transport_retries_and_recovers(self):
        config = FleetConfig(
            devices=10_000,
            batch_size=2_000,
            shards=4,
            seed=3,
            transport_failure_rate=0.3,
            target_reports=None,
        )
        result = run_fleet("Game", ORIGINAL, self._model(), config)
        assert result.client_retries > 0
        assert result.statuses.get("accepted", 0) > 0
        assert result.verdict is AggregatedVerdict.TAKEDOWN


class TestBoundedMemory:
    def test_peak_state_tracks_shards_not_devices(self):
        model = OutcomeModel(
            report_rate=1.0, observed_key_hex=PIRATE, bad_experience_rate=0.0
        )

        def peak(devices):
            config = FleetConfig(
                devices=devices,
                batch_size=25_000,
                shards=4,
                seed=5,
                target_reports=500,
            )
            return run_fleet("Game", ORIGINAL, model, config).peak_tracked_state

        small, large = peak(50_000), peak(200_000)
        # 4x the fleet, same report budget: bounded state must not scale
        # with device count.
        assert large <= small * 1.5 + 64
        policy = TakedownPolicy()
        cap = 4 * (4096 + policy.max_tracked_keys * (1 + policy.max_tracked_devices))
        assert large <= cap


class TestDurableFleet:
    def _model(self):
        return OutcomeModel(
            report_rate=0.02, observed_key_hex=PIRATE, bad_experience_rate=0.3
        )

    def test_crash_after_batch_requires_data_dir(self):
        from repro.errors import ReportingError

        with pytest.raises(ReportingError, match="requires data_dir"):
            run_fleet(
                "Game", ORIGINAL, self._model(),
                FleetConfig(devices=1_000, crash_after_batch=1),
            )

    def test_kill_and_recover_mid_fleet_reaches_takedown(self, tmp_path):
        config = FleetConfig(
            devices=20_000,
            batch_size=4_000,
            shards=4,
            seed=1,
            duplicate_rate=0.2,
            target_reports=None,
            data_dir=str(tmp_path / "state"),
            crash_after_batch=2,
        )
        result = run_fleet("Game", ORIGINAL, self._model(), config)
        assert result.recoveries == 1
        assert result.wal_replayed > 0
        assert result.verdict is AggregatedVerdict.TAKEDOWN
        # Metrics restart from zero at recovery (deliberately not
        # persisted); the replayed takedown must not re-fire the counter.
        assert result.metrics.get("reporting.takedowns", 0) <= 1
        assert "crash-recoveries: 1" in result.summary()

    def test_durable_run_matches_in_memory_run(self, tmp_path):
        def run(data_dir=None, crash=None):
            config = FleetConfig(
                devices=20_000,
                batch_size=4_000,
                shards=4,
                seed=1,
                target_reports=None,
                data_dir=data_dir,
                crash_after_batch=crash,
            )
            return run_fleet("Game", ORIGINAL, self._model(), config)

        baseline = run()
        crashed = run(data_dir=str(tmp_path / "state"), crash=3)
        assert crashed.statuses == baseline.statuses
        assert crashed.verdict is baseline.verdict
        assert crashed.offender_key == baseline.offender_key
        assert crashed.takedown_clock == baseline.takedown_clock
