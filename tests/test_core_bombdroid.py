"""The BombDroid pipeline end to end on the small fixture app."""

import pytest

from repro.core import BombDroid, BombDroidConfig
from repro.core.stats import BombOrigin
from repro.dex.disassembler import disassemble
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator, FuzzSession
from repro.vm import DevicePopulation, Runtime
from repro.vm.events import Event, EventKind


class TestReport:
    def test_bombs_were_injected(self, protection_report):
        assert protection_report.total_injected >= 3
        assert protection_report.count_by_origin(BombOrigin.EXISTING) >= 2
        assert protection_report.count_by_origin(BombOrigin.ARTIFICIAL) >= 1

    def test_existing_qcs_counted(self, protection_report):
        # The fixture app has 5 QCs; at least 3 live in candidate
        # (non-hot) methods under any profiling outcome.
        assert protection_report.existing_qcs_found >= 3

    def test_hot_methods_excluded_from_bomb_sites(self, protection_report):
        bomb_methods = {bomb.method for bomb in protection_report.bombs}
        assert not bomb_methods & set(protection_report.hot_methods)

    def test_every_real_bomb_has_detection_and_response(self, protection_report):
        for bomb in protection_report.real_bombs():
            assert bomb.detection is not None
            assert bomb.response is not None
            assert bomb.inner_probability <= 0.5

    def test_bomb_ids_unique(self, protection_report):
        ids = [bomb.bomb_id for bomb in protection_report.bombs]
        assert len(ids) == len(set(ids))

    def test_code_grew_but_app_size_modestly(self, protection_report):
        assert protection_report.instructions_after > protection_report.instructions_before
        assert protection_report.size_after > protection_report.size_before

    def test_summary_readable(self, protection_report):
        text = protection_report.summary()
        assert "bombs" in text and "existing" in text


class TestProtectedArtifact:
    def test_protected_apk_verifies(self, protected_apk):
        protected_apk.verify()

    def test_no_plaintext_key_in_code(self, protected_apk, developer_key):
        listing = disassemble(protected_apk.dex())
        assert developer_key.public.fingerprint().hex() not in listing

    def test_trigger_constants_removed(self, protected_apk, protection_report):
        listing = disassemble(protected_apk.dex())
        # The woven string trigger from the fixture app must be gone.
        woven_strings = [
            bomb.const_value
            for bomb in protection_report.bombs
            if isinstance(bomb.const_value, str) and bomb.woven
        ]
        for value in woven_strings:
            assert f'"{value}"' not in listing

    def test_stego_carrier_present(self, protected_apk):
        resources = protected_apk.resources()
        assert "app_tagline" in resources.strings

    def test_validates_structurally(self, protected_apk):
        protected_apk.dex().validate()


class TestRuntimeBehavior:
    def test_semantic_equivalence_under_events(self, small_apk, protected_apk):
        population = DevicePopulation(seed=4)
        device_a = population.sample()
        device_b = device_a.copy()
        runtime_a = Runtime(
            small_apk.dex(), device=device_a, package=small_apk.install_view(), seed=2
        )
        runtime_b = Runtime(
            protected_apk.dex(), device=device_b,
            package=protected_apk.install_view(), seed=2,
        )
        runtime_a.boot()
        runtime_b.boot()
        generator = DynodroidGenerator(small_apk.dex(), seed=3)
        for event in generator.stream(600):
            result_a = result_b = None
            try:
                result_a = runtime_a.dispatch(event)
            except VMError as exc:
                result_a = f"crash:{type(exc).__name__}"
            try:
                result_b = runtime_b.dispatch(event)
            except VMError as exc:
                result_b = f"crash:{type(exc).__name__}"
            assert result_a == result_b
        app_state = {
            key: value for key, value in runtime_a.statics.items()
        }
        protected_state = {
            key: value
            for key, value in runtime_b.statics.items()
            if not key.startswith("Bomb$")
        }
        assert app_state == protected_state

    def test_no_false_positives_on_genuine_app(self, protected_apk):
        """The Section 8.4 invariant: response code never runs on a
        non-repackaged app, across diverse devices."""
        population = DevicePopulation(seed=8)
        for index in range(6):
            session = FuzzSession(
                protected_apk.dex(),
                DynodroidGenerator(protected_apk.dex(), seed=index),
                population.sample(),
                package=protected_apk.install_view(),
                seed=index,
            )
            result = session.run_for(240.0)
            assert not result.bombs_detected
            assert not result.bombs_responded

    def test_bombs_actually_evaluate_at_runtime(self, protected_apk):
        runtime = Runtime(
            protected_apk.dex(), package=protected_apk.install_view(), seed=5
        )
        runtime.boot()
        generator = DynodroidGenerator(protected_apk.dex(), seed=6)
        for event in generator.stream(300):
            try:
                runtime.dispatch(event)
            except VMError:
                pass
        assert runtime.bombs.bombs_with("evaluated")


class TestConfigAblations:
    def test_single_trigger_config(self, small_apk, developer_key):
        config = BombDroidConfig(seed=5, profiling_events=200, double_trigger=False)
        report = BombDroid(config).protect(small_apk, developer_key).report
        assert all(bomb.inner_description == "" for bomb in report.real_bombs())

    def test_weaving_disabled(self, small_apk, developer_key):
        config = BombDroidConfig(seed=5, profiling_events=200, weave=False, bogus_ratio=0.0)
        report = BombDroid(config).protect(small_apk, developer_key).report
        assert all(not bomb.woven for bomb in report.bombs)

    def test_alpha_zero_means_no_artificial(self, small_apk, developer_key):
        config = BombDroidConfig(seed=5, profiling_events=200, alpha=0.0)
        report = BombDroid(config).protect(small_apk, developer_key).report
        # alpha=0 keeps at most the one guaranteed pick per the paper's
        # floor of one method; assert it is nearly none.
        assert report.count_by_origin(BombOrigin.ARTIFICIAL) <= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BombDroidConfig(alpha=1.5)
        with pytest.raises(ValueError):
            BombDroidConfig(inner_probability=(0.5, 0.1))
        with pytest.raises(ValueError):
            BombDroidConfig(detection_methods=())
