"""Wire format: codecs round-trip, signatures bind, parsing is tolerant."""

import dataclasses

import pytest

from repro.crypto import RSAKeyPair
from repro.errors import WireError
from repro.reporting import (
    DetectionReport,
    decode_report,
    encode_report,
    format_report_text,
    parse_report_text,
    report_from_json,
    report_from_text,
    report_to_json,
    sign_report,
)
from repro.reporting.wire import canonical_bytes

KEY_A = "ab" * 20
KEY_B = "cd" * 20


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=31)


def _report(**overrides):
    base = dict(
        app_name="Game",
        bomb_id="b007",
        device_id="dev-000000042",
        observed_key_hex=KEY_A,
        timestamp=123.5,
        nonce=0xDEADBEEFCAFE,
    )
    base.update(overrides)
    return DetectionReport(**base)


class TestBinaryCodec:
    def test_round_trip(self, attest_key):
        signed = sign_report(_report(), attest_key)
        decoded = decode_report(encode_report(signed))
        assert decoded.report == signed.report
        assert decoded.signature == signed.signature
        assert decoded.verify()

    def test_unicode_fields_survive(self, attest_key):
        signed = sign_report(_report(app_name="Gámé 中"), attest_key)
        assert decode_report(encode_report(signed)).report.app_name == "Gámé 中"

    def test_garbage_rejected(self):
        for blob in (b"", b"nope", b"DRPT", b"DRPT\x00\x00\x00\xff", b"DRPTxxxx"):
            with pytest.raises(WireError):
                decode_report(blob)

    def test_truncated_frame_rejected(self, attest_key):
        frame = encode_report(sign_report(_report(), attest_key))
        for cut in (5, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireError):
                decode_report(frame[:cut])

    def test_unknown_version_rejected(self, attest_key):
        signed = sign_report(_report(), attest_key)
        frame = bytearray(encode_report(signed))
        frame[8] = 99  # version byte is first in the body
        with pytest.raises(WireError):
            decode_report(bytes(frame))


class TestJsonCodec:
    def test_round_trip(self, attest_key):
        signed = sign_report(_report(), attest_key)
        decoded = report_from_json(report_to_json(signed))
        assert decoded.report == signed.report
        assert decoded.verify()

    def test_bad_json_rejected(self):
        for line in ("", "{", "[1, 2]", '{"app": "Game"}'):
            with pytest.raises(WireError):
                report_from_json(line)


class TestSignature:
    def test_signature_binds_every_field(self, attest_key):
        signed = sign_report(_report(), attest_key)
        assert signed.verify()
        for change in (
            {"observed_key_hex": KEY_B},
            {"device_id": "dev-imposter"},
            {"nonce": 1},
            {"timestamp": 999.0},
        ):
            tampered = dataclasses.replace(
                signed, report=dataclasses.replace(signed.report, **change)
            )
            assert not tampered.verify()

    def test_flipped_signature_rejected(self, attest_key):
        signed = sign_report(_report(), attest_key)
        forged = dataclasses.replace(signed, signature=signed.signature ^ 1)
        assert not forged.verify()

    def test_wrong_key_rejected(self, attest_key):
        signed = sign_report(_report(), attest_key)
        other = RSAKeyPair.generate(seed=32)
        swapped = dataclasses.replace(signed, attestation_key=other.public)
        assert not swapped.verify()

    def test_canonical_bytes_deterministic(self):
        assert canonical_bytes(_report()) == canonical_bytes(_report())
        assert canonical_bytes(_report()) != canonical_bytes(_report(nonce=7))


class TestTextChannel:
    def test_structured_round_trip(self):
        text = format_report_text("Game", "b012") + KEY_A
        fields = parse_report_text(text)
        assert fields["app"] == "Game"
        assert fields["bomb"] == "b012"
        assert fields["key"] == KEY_A

    def test_legacy_colon_format(self):
        fields = parse_report_text(f"repackaged:Game:b001:key={KEY_A}")
        assert fields["key"] == KEY_A
        assert fields["app"] == "Game"
        assert fields["bomb"] == "b001"

    def test_free_text_with_decoy_key_equals(self):
        # The old rsplit("key=", 1) would have grabbed "deadbeef is".
        text = f"warning: cache key=deadbeef is stale; cert key={KEY_B} observed"
        assert parse_report_text(text)["key"] == KEY_B

    def test_free_text_without_fingerprint_yields_no_key(self):
        assert "key" not in parse_report_text("retry with key=deadbeef")
        assert report_from_text("retry with key=deadbeef", device_id="d") is None

    def test_report_from_text_builds_wire_report(self):
        text = format_report_text("Game", "b001") + KEY_A.upper()
        report = report_from_text(text, device_id="dev-1", timestamp=9.0, nonce=5)
        assert report is not None
        assert report.observed_key_hex == KEY_A  # normalized to lowercase
        assert report.device_id == "dev-1"
        assert report.nonce == 5
