"""Ingestion service: dedup, replay, sliding window, backpressure, bounds."""

import dataclasses

import pytest

from repro.crypto import RSAKeyPair
from repro.errors import ReportingError
from repro.reporting import (
    AggregatedVerdict,
    DetectionReport,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    encode_report,
    report_to_json,
    sign_report,
)

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=41)


def make_signed(attest_key, device="dev-1", key=PIRATE, ts=0.0, nonce=1, app="Game"):
    return sign_report(
        DetectionReport(
            app_name=app,
            bomb_id="b001",
            device_id=device,
            observed_key_hex=key,
            timestamp=ts,
            nonce=nonce,
        ),
        attest_key,
    )


def make_server(**kwargs):
    server = ReportServer(**kwargs)
    server.register_app("Game", ORIGINAL)
    return server


class TestSubmitValidation:
    def test_accepts_signed_binary_and_json(self, attest_key):
        server = make_server()
        a = make_signed(attest_key, device="d1", nonce=1)
        b = make_signed(attest_key, device="d2", nonce=2)
        c = make_signed(attest_key, device="d3", nonce=3)
        assert server.submit(a) is SubmitStatus.ACCEPTED
        assert server.submit(encode_report(b)) is SubmitStatus.ACCEPTED
        assert server.submit(report_to_json(c)) is SubmitStatus.ACCEPTED
        assert server.metrics.counter("reporting.accepted").value == 3

    def test_forged_signature_rejected_and_counted(self, attest_key):
        server = make_server()
        signed = make_signed(attest_key)
        forged = dataclasses.replace(signed, signature=signed.signature ^ 1)
        assert server.submit(forged) is SubmitStatus.BAD_SIGNATURE
        assert server.metrics.counter("reporting.rejected_forged").value == 1
        assert server.verdict("Game")[0] is AggregatedVerdict.CLEAN

    def test_malformed_inputs_counted(self):
        server = make_server()
        assert server.submit(b"not a frame") is SubmitStatus.MALFORMED
        assert server.submit("{bad json") is SubmitStatus.MALFORMED
        assert server.submit(12345) is SubmitStatus.MALFORMED
        assert server.metrics.counter("reporting.rejected_malformed").value == 3

    def test_unknown_app_rejected(self, attest_key):
        server = make_server()
        status = server.submit(make_signed(attest_key, app="NotMine"))
        assert status is SubmitStatus.UNKNOWN_APP
        assert server.metrics.counter("reporting.unknown_app").value == 1

    def test_trusted_unknown_app_counts_received_like_submit(self, attest_key):
        server = make_server()
        status = server.ingest_trusted(
            "NotMine", device_id="agg-1", observed_key_hex=PIRATE
        )
        assert status is SubmitStatus.UNKNOWN_APP
        # Both ingest paths must count the attempt, or acceptance-rate
        # math diverges between them.
        assert server.metrics.counter("reporting.received").value == 1
        server.submit(make_signed(attest_key, app="NotMine"))
        assert server.metrics.counter("reporting.received").value == 2
        assert server.metrics.counter("reporting.unknown_app").value == 2

    def test_duplicate_nonce_dropped(self, attest_key):
        server = make_server()
        signed = make_signed(attest_key, device="d1", nonce=77)
        assert server.submit(signed) is SubmitStatus.ACCEPTED
        assert server.submit(signed) is SubmitStatus.DUPLICATE
        # Same nonce from a different device is a different report.
        other = make_signed(attest_key, device="d2", nonce=77)
        assert server.submit(other) is SubmitStatus.ACCEPTED
        assert server.metrics.counter("reporting.duplicates_dropped").value == 1

    def test_stale_report_replayed(self, attest_key):
        server = make_server(max_report_age=100.0)
        fresh = make_signed(attest_key, device="d1", ts=500.0, nonce=1)
        assert server.submit(fresh) is SubmitStatus.ACCEPTED  # clock -> 500
        stale = make_signed(attest_key, device="d2", ts=300.0, nonce=2)
        assert server.submit(stale) is SubmitStatus.REPLAYED
        assert server.metrics.counter("reporting.rejected_replayed").value == 1


class TestBackpressure:
    def test_full_queue_drops_and_counts(self, attest_key):
        server = make_server(shards=1, queue_capacity=2)
        for i in range(2):
            status = server.submit(make_signed(attest_key, device=f"d{i}", nonce=i))
            assert status is SubmitStatus.ACCEPTED
        overflow = make_signed(attest_key, device="d9", nonce=9)
        assert server.submit(overflow) is SubmitStatus.DROPPED
        assert server.metrics.counter("reporting.dropped_backpressure").value == 1
        assert server.queue_depth() == 2

    def test_dropped_report_can_retry_after_drain(self, attest_key):
        # A backpressure drop must NOT record the nonce, or the client's
        # retry would be misclassified as a duplicate.
        server = make_server(shards=1, queue_capacity=1)
        assert server.submit(make_signed(attest_key, device="d1", nonce=1)) \
            is SubmitStatus.ACCEPTED
        retry = make_signed(attest_key, device="d2", nonce=2)
        assert server.submit(retry) is SubmitStatus.DROPPED
        server.process()
        assert server.submit(retry) is SubmitStatus.ACCEPTED


class TestSlidingWindow:
    def _policy(self, **kw):
        base = dict(distinct_devices=3, window_seconds=100.0)
        base.update(kw)
        return TakedownPolicy(**base)

    def test_distinct_devices_within_window_take_down(self, attest_key):
        server = make_server(policy=self._policy())
        for i, ts in enumerate((0.0, 10.0, 20.0)):
            server.submit(make_signed(attest_key, device=f"d{i}", ts=ts, nonce=i))
        server.process()
        verdict, key = server.verdict("Game")
        assert verdict is AggregatedVerdict.TAKEDOWN
        assert key == PIRATE

    def test_one_noisy_device_votes_once(self, attest_key):
        server = make_server(policy=self._policy())
        for nonce in range(10):
            server.submit(make_signed(attest_key, device="d1", nonce=nonce))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.SUSPECT

    def test_old_sightings_age_out(self, attest_key):
        server = make_server(policy=self._policy(), max_report_age=10_000.0)
        server.submit(make_signed(attest_key, device="d1", ts=0.0, nonce=1))
        server.submit(make_signed(attest_key, device="d2", ts=10.0, nonce=2))
        # The third arrives long after the first two left the window.
        server.submit(make_signed(attest_key, device="d3", ts=500.0, nonce=3))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.SUSPECT
        # Two more inside the live window complete the quorum.
        server.submit(make_signed(attest_key, device="d4", ts=510.0, nonce=4))
        server.submit(make_signed(attest_key, device="d5", ts=520.0, nonce=5))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.TAKEDOWN

    def test_counts_sum_across_shards(self, attest_key):
        server = make_server(shards=8, policy=self._policy())
        for i in range(3):
            server.submit(make_signed(attest_key, device=f"device-{i}", nonce=i))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.TAKEDOWN

    def test_original_key_reports_ignored(self, attest_key):
        server = make_server(policy=self._policy(distinct_devices=1))
        server.submit(make_signed(attest_key, device="d1", key=ORIGINAL, nonce=1))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.CLEAN
        assert server.metrics.counter("reporting.original_key_reports").value == 1

    def test_tie_breaks_deterministically(self, attest_key):
        server = make_server(policy=self._policy(distinct_devices=5))
        low, high = "bb" * 20, "cc" * 20
        server.submit(make_signed(attest_key, device="d1", key=high, nonce=1))
        server.submit(make_signed(attest_key, device="d2", key=low, nonce=2))
        server.process()
        # Equal distinct-device counts: lexicographically greatest wins,
        # regardless of insertion order.
        assert server.verdict("Game") == (AggregatedVerdict.SUSPECT, high)

    def test_takedown_latency_recorded_once(self, attest_key):
        server = make_server(policy=self._policy())
        for i in range(3):
            server.submit(make_signed(attest_key, device=f"d{i}", ts=float(i), nonce=i))
        server.process()
        server.verdict("Game")
        server.verdict("Game")
        hist = server.metrics.histogram("reporting.takedown_latency_seconds")
        assert hist.count == 1
        assert server.metrics.counter("reporting.takedowns").value == 1

    def test_takedown_latency_measured_from_surviving_window(self, attest_key):
        """Pruned sightings must not anchor the latency: the window's
        ``first_ts`` follows the entries that actually survive."""
        server = make_server(shards=1, policy=self._policy(),
                             max_report_age=10_000.0)
        server.submit(make_signed(attest_key, device="d1", ts=0.0, nonce=1))
        server.submit(make_signed(attest_key, device="d2", ts=10.0, nonce=2))
        # These three form the quorum long after d1/d2 aged out.
        server.submit(make_signed(attest_key, device="d3", ts=500.0, nonce=3))
        server.submit(make_signed(attest_key, device="d4", ts=510.0, nonce=4))
        server.submit(make_signed(attest_key, device="d5", ts=520.0, nonce=5))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.TAKEDOWN
        hist = server.metrics.histogram("reporting.takedown_latency_seconds")
        # 520 - 500, the surviving window -- not 520 - 0, the all-time
        # minimum a stale first_ts would report.
        assert hist.total == 20.0

    def test_empty_windows_dropped_from_tracked_keys(self, attest_key):
        server = make_server(shards=1, policy=self._policy())
        server.submit(make_signed(attest_key, device="d1", ts=0.0,
                                  key="cc" * 20, nonce=1))
        server.process()
        shard = server._apps["Game"].shards[0]
        assert "cc" * 20 in shard.windows
        # A fresh sighting of another key moves the clock far past the
        # first key's window; its now-empty window must free its
        # max_tracked_keys slot rather than squat on it.
        server.submit(make_signed(attest_key, device="d2", ts=500.0, nonce=2))
        server.process()
        evicted_before = server.metrics.counter("reporting.evicted_keys").value
        server.verdict("Game")
        assert "cc" * 20 not in shard.windows
        assert PIRATE in shard.windows
        assert (
            server.metrics.counter("reporting.evicted_keys").value
            == evicted_before + 1
        )


class TestBoundedState:
    def test_tracked_keys_capped_with_eviction_accounting(self, attest_key):
        policy = TakedownPolicy(max_tracked_keys=4)
        server = make_server(shards=1, policy=policy)
        for i in range(10):
            key = f"{i:02d}" * 20
            server.submit(make_signed(attest_key, device=f"d{i}", key=key, nonce=i))
        server.process()
        shard = server._apps["Game"].shards[0]
        assert len(shard.windows) <= 4
        assert server.metrics.counter("reporting.evicted_keys").value == 6

    def test_tracked_state_bounded_by_shard_caps(self, attest_key):
        policy = TakedownPolicy(max_tracked_devices=8, max_tracked_keys=2)
        server = make_server(shards=2, dedup_window=16, policy=policy)
        for i in range(200):
            server.submit(make_signed(attest_key, device=f"d{i}", nonce=i))
            server.process()
        per_shard = 16 + 2 * (1 + 8)  # dedup window + keys * (key + entries)
        assert server.tracked_state_size() <= server.shard_count * per_shard

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ReportingError):
            ReportServer(shards=0)

    def test_unknown_app_verdict_raises(self):
        with pytest.raises(ReportingError):
            make_server().verdict("Nope")
