"""Site transformation: every bomb shape must preserve app semantics.

The strategy throughout: build a method, transform one QC into a bomb,
then run original and transformed code side by side on the same inputs
and assert identical observable behavior (return values and static
state).
"""

import random

import pytest

from repro.analysis.qualified_conditions import find_qualified_conditions
from repro.analysis.regions import body_region
from repro.apk import Resources, build_apk
from repro.core.config import BombDroidConfig
from repro.core.instrumenter import Instrumenter, MethodEditor
from repro.core.stats import BombOrigin
from repro.crypto import RSAKeyPair
from repro.dex import assemble
from repro.errors import InstrumentationError
from repro.vm import Runtime


#: One developer key for every dual-run test: the instrumenter bakes its
#: fingerprint into detection payloads and the harness installs apps
#: signed with it, so a *genuine* run never fires a response.
_TEST_KEY = RSAKeyPair.generate(seed=77)


def make_instrumenter(dex, seed=0, **config_kwargs):
    config = BombDroidConfig(seed=seed, **config_kwargs)
    return Instrumenter(
        dex,
        config,
        random.Random(seed),
        app_name="T",
        original_key_hex=_TEST_KEY.public.fingerprint().hex(),
        app_static_fields=[
            f"{cls.name}.{f.name}"
            for cls in dex.classes.values()
            for f in cls.static_fields()
        ],
    )


def dual_run(source, method, inputs, transform):
    """Yield (original_results, transformed_results) over ``inputs``.

    Results are (return_value, app_statics) pairs; VM crashes surface
    as strings so both sides can be compared.
    """

    def run_suite(dex):
        apk = build_apk(dex, Resources(strings={"app_name": "T"}), _TEST_KEY)
        package = apk.install_view()
        out = []
        for args in inputs:
            runtime = Runtime(dex, package=package, seed=1)
            try:
                value = runtime.invoke(method, list(args))
            except Exception as exc:
                value = f"crash:{type(exc).__name__}"
            state = {
                key: val for key, val in runtime.statics.items()
                if not key.startswith("Bomb$")
            }
            out.append((value, state))
        return out

    original = run_suite(assemble(source))
    transformed_dex = assemble(source)
    transform(transformed_dex)
    transformed = run_suite(transformed_dex)
    return original, transformed


IF_NE_SOURCE = """
.class T
.field total static 0
.method m 1
    const r1, 42
    if_ne r0, r1, @skip
    sget r2, T.total
    add_lit r2, r2, 7
    sput r2, T.total
@skip:
    sget r3, T.total
    add_lit r3, r3, 1
    sput r3, T.total
    return r3
.end
"""


class TestWeavableTransform:
    def transform(self, dex, real=True):
        method = dex.get_method("T.m")
        (qc,) = find_qualified_conditions(method)
        region = body_region(method, qc)
        instrumenter = make_instrumenter(dex)
        bomb = instrumenter.transform_weavable(method, qc, region, None, real=real)
        return bomb

    def test_semantics_preserved(self):
        inputs = [(42,), (0,), (41,), (43,), (42,)]
        original, transformed = dual_run(
            IF_NE_SOURCE, "T.m", inputs, lambda dex: self.transform(dex)
        )
        assert original == transformed

    def test_body_moved_out_of_cleartext(self):
        dex = assemble(IF_NE_SOURCE)
        self.transform(dex)
        from repro.dex.disassembler import disassemble_method

        listing = disassemble_method(dex.get_method("T.m"))
        assert "add_lit r2, r2, 7" not in listing   # the woven body is gone
        assert "bomb.hash" in listing

    def test_trigger_constant_removed(self):
        dex = assemble(IF_NE_SOURCE)
        bomb = self.transform(dex)
        from repro.dex.disassembler import disassemble_method

        listing = disassemble_method(dex.get_method("T.m"))
        assert "const r1, 42" not in listing
        assert bomb.const_value == 42

    def test_bogus_bomb_has_no_detection(self):
        dex = assemble(IF_NE_SOURCE)
        bomb = self.transform(dex, real=False)
        assert bomb.origin is BombOrigin.BOGUS
        assert bomb.detection is None
        inputs = [(42,), (1,)]
        original, transformed = dual_run(
            IF_NE_SOURCE, "T.m", inputs, lambda d: self.transform(d, real=False)
        )
        assert original == transformed


RETURNING_BODY_SOURCE = """
.class T
.field total static 0
.method m 1
    const r1, 9
    if_ne r0, r1, @skip
    const r2, 777
    return r2
@skip:
    const r3, 1
    return r3
.end
"""


class TestReturnInWovenBody:
    def test_return_propagates_through_control_slot(self):
        def transform(dex):
            method = dex.get_method("T.m")
            (qc,) = find_qualified_conditions(method)
            region = body_region(method, qc)
            make_instrumenter(dex).transform_weavable(method, qc, region, None)

        inputs = [(9,), (8,)]
        original, transformed = dual_run(RETURNING_BODY_SOURCE, "T.m", inputs, transform)
        assert original == transformed
        assert original[0][0] == 777


IF_EQ_SOURCE = """
.class T
.field total static 0
.method m 1
    const r1, 13
    if_eq r0, r1, @special
    sget r2, T.total
    add_lit r2, r2, 1
    sput r2, T.total
    return r2
@special:
    const r3, -1
    return r3
.end
"""


class TestPayloadOnlyTransform:
    def test_if_eq_semantics_preserved(self):
        def transform(dex):
            method = dex.get_method("T.m")
            (qc,) = find_qualified_conditions(method)
            make_instrumenter(dex).transform_payload_only(method, qc, None)

        inputs = [(13,), (12,), (14,), (13,)]
        original, transformed = dual_run(IF_EQ_SOURCE, "T.m", inputs, transform)
        assert original == transformed


STR_SOURCE = """
.class T
.field hits static 0
.method m 1
    const r1, "open sesame"
    invoke r2, java.str.equals, r0, r1
    if_eqz r2, @no
    sget r3, T.hits
    add_lit r3, r3, 1
    sput r3, T.hits
@no:
    sget r4, T.hits
    return r4
.end
"""


class TestStringEqualsTransform:
    def test_semantics_preserved(self):
        def transform(dex):
            method = dex.get_method("T.m")
            (qc,) = find_qualified_conditions(method)
            region = body_region(method, qc)
            make_instrumenter(dex).transform_weavable(method, qc, region, None)

        inputs = [("open sesame",), ("wrong",), ("open sesame",), ("",)]
        original, transformed = dual_run(STR_SOURCE, "T.m", inputs, transform)
        assert original == transformed

    def test_secret_string_removed_from_code(self):
        dex = assemble(STR_SOURCE)
        method = dex.get_method("T.m")
        (qc,) = find_qualified_conditions(method)
        region = body_region(method, qc)
        make_instrumenter(dex).transform_weavable(method, qc, region, None)
        from repro.dex.disassembler import disassemble

        assert "open sesame" not in disassemble(dex)


SWITCH_SOURCE = """
.class T
.field total static 0
.method m 1
    switch r0, {3 -> @three, 8 -> @eight}
    const r1, 0
    return r1
@three:
    const r1, 30
    sput r1, T.total
    goto @join
@eight:
    const r1, 80
    sput r1, T.total
    goto @join
@join:
    sget r2, T.total
    return r2
.end
"""


class TestSwitchCaseTransform:
    def _transform(self, dex, weave):
        method = dex.get_method("T.m")
        qcs = find_qualified_conditions(method)
        qc = next(q for q in qcs if q.case_key == 3)
        region = body_region(method, qc) if weave else None
        make_instrumenter(dex)._transform_switch(method, qc, region, None, True)

    @pytest.mark.parametrize("weave", [False, True])
    def test_semantics_preserved(self, weave):
        inputs = [(3,), (8,), (5,), (3,)]
        original, transformed = dual_run(
            SWITCH_SOURCE, "T.m", inputs, lambda dex: self._transform(dex, weave)
        )
        assert original == transformed

    def test_key_removed_from_table(self):
        dex = assemble(SWITCH_SOURCE)
        self._transform(dex, weave=False)
        from repro.dex.opcodes import Op

        method = dex.get_method("T.m")
        tables = [i.value for i in method.instructions if i.op is Op.SWITCH]
        assert all(3 not in table for table in tables)


class TestArtificialInsertion:
    def test_inserted_bomb_is_transparent(self):
        source = IF_NE_SOURCE

        def transform(dex):
            method = dex.get_method("T.m")
            make_instrumenter(dex).insert_artificial(method, 0, "T.total", 500, None)

        inputs = [(42,), (1,)]
        original, transformed = dual_run(source, "T.m", inputs, transform)
        assert original == transformed

    def test_bomb_record_fields(self):
        dex = assemble(IF_NE_SOURCE)
        method = dex.get_method("T.m")
        bomb = make_instrumenter(dex).insert_artificial(method, 0, "T.total", 500, None)
        assert bomb.origin is BombOrigin.ARTIFICIAL
        assert bomb.const_value == 500
        assert not bomb.woven


class TestEditor:
    def test_splice_bounds_checked(self):
        dex = assemble(IF_NE_SOURCE)
        editor = MethodEditor(dex.get_method("T.m"))
        with pytest.raises(InstrumentationError):
            editor.splice(5, 999, [])

    def test_fresh_labels_never_collide(self):
        dex = assemble(IF_NE_SOURCE)
        editor = MethodEditor(dex.get_method("T.m"))
        labels = {editor.fresh_label() for _ in range(100)}
        assert len(labels) == 100
