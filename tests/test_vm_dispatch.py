"""Differential tests: table-dispatch engine vs the reference oracle.

The dispatch-table interpreter (``engine="table"``) must be *bit
identical* to the pre-dispatch-table interpreter, which survives
verbatim as ``repro.vm.reference.ReferenceInterpreter``
(``engine="reference"``).  Every test here runs the same program under
both engines and compares return values, instruction counts, cost
units, bomb statistics, tracer event streams and error behavior.
"""

from __future__ import annotations

import pytest

from repro.core.instrumenter import MethodEditor
from repro.dex import assemble, instructions as ins
from repro.dex.opcodes import Op
from repro.errors import BudgetExhausted, VMError
from repro.fuzzing import DynodroidGenerator
from repro.vm import Runtime
from repro.vm.interpreter import Tracer

ENGINES = ("reference", "table")

# Exercises every fusion shape the compiler knows (CONST+CONST,
# CONST+INVOKE, CONST+compare, CONST+zero-test, INVOKE+zero-test),
# loops, switches, framework calls and app-to-app calls.
FUSION_APP = """
.class F
.field acc static 0
.method main 0
    const r0, 1
    const r1, 2
    add r0, r0, r1
    sput r0, F.acc
    return_void
.end
.method helper 1
    mul_lit r1, r0, 3
    add_lit r1, r1, 2
    return r1
.end
.method on_key 1
    const r1, "go"
    invoke r2, java.str.length, r1
    if_eqz r2, @skip
    const r3, 4
    if_lt r0, r3, @skip
    invoke r4, F.helper, r0
    sput r4, F.acc
@skip:
    sget r5, F.acc
    add r5, r5, r0
    sput r5, F.acc
    return_void
.end
.method spin 1
@loop:
    sub_lit r0, r0, 1
    invoke r1, F.helper, r0
    if_nez r0, @loop
    return r1
.end
.method on_menu 1
    switch r0, {1 -> @one, 2 -> @two}
    const r1, -1
    return r1
@one:
    const r1, 100
    return r1
@two:
    const r1, 200
    return r1
.end
"""


class RecordingTracer(Tracer):
    """Captures the full hook stream as comparable tuples."""

    def __init__(self):
        self.stream = []

    def on_instr(self, method, pc, instr):
        self.stream.append(("instr", method.qualified_name, pc, instr.op.value))

    def on_branch(self, method, pc, instr, taken):
        self.stream.append(("branch", method.qualified_name, pc, instr.op.value, taken))

    def on_invoke(self, name, args):
        self.stream.append(("invoke", name, tuple(repr(a) for a in args)))


def _observables(runtime):
    return {
        "detections": list(runtime.detections),
        "reports": list(runtime.reports),
        "ui_effects": list(runtime.ui_effects),
        "logs": list(runtime.logs),
        "statics": {k: repr(v) for k, v in runtime.statics.items()},
        "cost_units": runtime.cost_units,
        "bomb_events": [(e.clock, e.bomb_id, e.kind) for e in runtime.bombs.events],
        "bomb_counts": runtime.bombs.counts,
        "clock": runtime.device.clock,
    }


def _play(apk, engine, seed=7, events=120, budget=200_000, trace=False):
    """Boot + dispatch a seeded event stream; returns every observable."""
    dex = apk.dex()
    runtime = Runtime(dex, package=apk.install_view(), seed=seed, engine=engine)
    recorder = RecordingTracer()
    if trace:
        runtime.add_tracer(recorder)
    outcomes = []
    try:
        runtime.boot()
        outcomes.append(("boot", "ok"))
    except VMError as exc:
        outcomes.append(("boot", type(exc).__name__, str(exc)))
    for event in DynodroidGenerator(dex, seed=seed).stream(events):
        ctx = runtime.session(budget=budget)
        try:
            result = ctx.dispatch(event)
            outcomes.append(
                ("ok", repr(result.value), result.instructions, result.cost,
                 result.trip_kinds())
            )
        except VMError as exc:
            outcomes.append((type(exc).__name__, str(exc), ctx.consumed))
    return outcomes, _observables(runtime), recorder.stream


class TestDifferentialCorpus:
    def test_protected_app_identical(self, protected_apk):
        """Genuine protected app: bombs evaluate but never detonate --
        both engines must agree on every observable."""
        ref_out, ref_obs, _ = _play(protected_apk, "reference")
        tab_out, tab_obs, _ = _play(protected_apk, "table")
        assert tab_out == ref_out
        assert tab_obs == ref_obs
        assert ref_obs["bomb_counts"]  # the stream actually hit bombs

    def test_pirated_app_identical(self, pirated_apk):
        """Repackaged build: detonations, responses, reports -- the
        interesting half of the semantics."""
        ref_out, ref_obs, _ = _play(pirated_apk, "reference", seed=8, events=150)
        tab_out, tab_obs, _ = _play(pirated_apk, "table", seed=8, events=150)
        assert tab_out == ref_out
        assert tab_obs == ref_obs
        assert ref_obs["detections"]  # at least one bomb fired

    def test_tracer_streams_identical(self, protected_apk):
        """on_instr / on_branch / on_invoke fire with the same payloads
        in the same order under both engines (original pcs, original
        instruction objects, even through fused superinstructions)."""
        _, _, ref_stream = _play(protected_apk, "reference", events=40, trace=True)
        _, _, tab_stream = _play(protected_apk, "table", events=40, trace=True)
        assert ref_stream  # non-trivial stream
        assert tab_stream == ref_stream


def _runtimes():
    dex_ref = assemble(FUSION_APP)
    dex_tab = assemble(FUSION_APP)
    return (
        Runtime(dex_ref, seed=0, engine="reference"),
        Runtime(dex_tab, seed=0, engine="table"),
    )


def _probe(runtime, name, args, budget):
    """(kind, payload, instructions, cost_delta) for one invocation."""
    before = runtime.cost_units
    ctx = runtime.session(budget=budget)
    try:
        result = ctx.run(runtime.find_method(name), args)
        return ("ok", repr(result.value), result.instructions,
                runtime.cost_units - before)
    except VMError as exc:
        return (type(exc).__name__, str(exc), ctx.consumed,
                runtime.cost_units - before)


class TestFusionBoundaries:
    def test_every_budget_boundary_matches(self):
        """Exhaust the budget at every possible instruction boundary --
        including mid-superinstruction -- and require identical error
        type, message, instruction count and cost on both engines."""
        ref, tab = _runtimes()
        full = _probe(ref, "F.spin", [6], 10_000)
        assert full[0] == "ok"
        ceiling = full[2] + 2
        for budget in range(1, ceiling):
            assert _probe(tab, "F.spin", [6], budget) == _probe(
                ref, "F.spin", [6], budget
            ), f"diverged at budget={budget}"

    def test_fused_method_results_match(self):
        ref, tab = _runtimes()
        for name, args_list in (
            ("F.on_key", [[0], [3], [4], [9]]),
            ("F.on_menu", [[0], [1], [2], [3]]),
            ("F.helper", [[5], [-5], [2**31 - 1]]),
        ):
            for args in args_list:
                assert _probe(tab, name, args, 100_000) == _probe(
                    ref, name, args, 100_000
                )

    def test_exhaustion_message_names_method(self):
        _, tab = _runtimes()
        with pytest.raises(BudgetExhausted, match="F.spin"):
            tab.session(budget=5).run(tab.find_method("F.spin"), [100])


class TestInlineCaches:
    def test_warm_runs_identical_to_cold(self):
        _, tab = _runtimes()
        cold = _probe(tab, "F.on_key", [7], 100_000)
        warm = _probe(tab, "F.on_key", [7], 100_000)
        later = _probe(tab, "F.on_key", [7], 100_000)
        assert cold == warm == later
        assert tab.interpreter._cells  # caches actually populated

    def test_generation_guard_survives_dynamic_load(self):
        """Loading more code bumps the method-table generation; cached
        framework targets re-resolve and results stay correct."""
        ref, tab = _runtimes()
        before = [_probe(r, "F.on_key", [7], 100_000) for r in (ref, tab)]
        extra = assemble(".class X\n.method poke 1\nreturn r0\n.end")
        for r in (ref, tab):
            r.load_dex(extra, origin="dynamic")
        after = [_probe(r, "F.on_key", [7], 100_000) for r in (ref, tab)]
        assert before[0] == before[1]
        assert after[0] == after[1] == before[0]

    def test_method_editor_rewrite_invalidates_compiled_body(self):
        """The code-instrumentation path (MethodEditor.splice ->
        method.invalidate()) must drop the compiled body so the next run
        executes the rewritten bytecode."""
        ref, tab = _runtimes()
        assert _probe(tab, "F.helper", [5], 1_000) == _probe(ref, "F.helper", [5], 1_000)
        for r in (ref, tab):
            method = r.find_method("F.helper")
            assert method._compiled is not None or r.engine == "reference"
            editor = MethodEditor(method, label_ns="t")
            editor.splice(0, 0, [ins.binop_lit(Op.ADD_LIT, 0, 0, 100)])
            assert method._compiled is None
        rewritten = [_probe(r, "F.helper", [5], 1_000) for r in (ref, tab)]
        assert rewritten[0] == rewritten[1]
        assert rewritten[0][1] == repr((5 + 100) * 3 + 2)

    def test_direct_invalidate_clears_compiled(self):
        _, tab = _runtimes()
        method = tab.find_method("F.helper")
        tab.session().run(method, [1])
        assert method._compiled is not None
        method.invalidate()
        assert method._compiled is None


class TestClassloadMemo:
    def test_warm_blob_load_returns_same_method(self, protected_apk):
        from repro.dex.serializer import serialize_dex

        blob = serialize_dex(
            assemble(".class P\n.method enter 1\nreturn r0\n.end")
        )
        runtime = Runtime(protected_apk.dex(), package=protected_apk.install_view())
        first = runtime.load_blob_method(blob, "P.enter")
        assert (blob, "P.enter") in runtime._method_memo
        second = runtime.load_blob_method(blob, "P.enter")
        assert second is first


class TestDeprecatedShims:
    def test_run_warns_and_matches_session_api(self):
        _, tab = _runtimes()
        method = tab.find_method("F.helper")
        with pytest.warns(DeprecationWarning, match="Runtime.session"):
            legacy = tab.interpreter.run(method, [4])
        assert legacy == tab.session().run(method, [4]).value

    def test_run_with_budget_warns_and_exhausts(self):
        _, tab = _runtimes()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(BudgetExhausted):
                tab.interpreter.run(tab.find_method("F.spin"), [100], budget=5)

    def test_run_payload_warns_and_matches(self):
        _, tab = _runtimes()
        method = tab.find_method("F.helper")
        with pytest.warns(DeprecationWarning, match="execute_payload"):
            legacy = tab.interpreter.run_payload(method, [4], [10_000], None)
        ctx = tab.session(budget=10_000)
        assert legacy == tab.interpreter.execute_payload(method, [4], ctx, None)

    def test_engine_name_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Runtime(assemble(FUSION_APP), engine="jit")
