"""Payload synthesis, encryption, control protocol, responses."""

import pytest

from repro.apk import Resources, build_apk
from repro.core.config import DetectionMethod, ResponseKind
from repro.core.payloads import (
    CONTROL_FALLTHROUGH,
    CONTROL_RETURN_VALUE,
    CONTROL_RETURN_VOID,
    PAYLOAD_IV,
    DetectionSpec,
    PayloadSpec,
    build_payload_dex,
    encrypt_payload,
)
from repro.core.inner_triggers import CmpOp, Connective, Constraint, InnerCondition
from repro.crypto import AES128, RSAKeyPair, Salt, derive_key
from repro.dex import assemble, instructions as ins
from repro.dex.serializer import deserialize_dex, serialize_dex
from repro.errors import BudgetExhausted, VMCrash
from repro.vm import Runtime
from repro.vm.device import attacker_lab_profiles
from repro.vm.values import Instance


APP_SOURCE = ".class A\n.field anchor static 5\n.method on_key 1\nreturn_void\n.end"


def installed_runtime(device=None, signer_seed=2):
    dex = assemble(APP_SOURCE)
    key = RSAKeyPair.generate(seed=signer_seed)
    apk = build_apk(dex, Resources(strings={"app_name": "A"}), key)
    runtime = Runtime(
        apk.dex(), device=device, package=apk.install_view(), seed=0
    )
    return runtime, key, apk


def always_true_inner() -> InnerCondition:
    return InnerCondition(
        constraints=(Constraint("gps.lat", CmpOp.GT, -91),), connective=Connective.AND
    )


def run_payload(runtime, spec: PayloadSpec, array):
    dex = build_payload_dex(spec)
    blob = serialize_dex(dex)
    method = runtime.load_blob_method(blob, spec.entry)
    return runtime.session().run(method, [array]).value


class TestControlProtocol:
    def test_fallthrough_roundtrips_registers(self):
        from repro.dex.opcodes import Op

        runtime, key, _ = installed_runtime()
        spec = PayloadSpec(
            bomb_id="b1", payload_class="Bomb$b1", slots=3, app_name="A",
            woven_body=[ins.binop_lit(Op.ADD_LIT, 1, 1, 5)],
        )
        array = [10, 20, 30, None, None]
        result = run_payload(runtime, spec, array)
        assert result[0] == 15            # slot 0 mutated by the body
        assert result[1:3] == [20, 30]
        assert result[3] == CONTROL_FALLTHROUGH

    def test_return_value_control(self):
        from repro.dex.opcodes import Op

        runtime, key, _ = installed_runtime()
        spec = PayloadSpec(
            bomb_id="b2", payload_class="Bomb$b2", slots=1, app_name="A",
            woven_body=[ins.ret(1)],
        )
        result = run_payload(runtime, spec, [7, None, None])
        assert result[1] == CONTROL_RETURN_VALUE
        assert result[2] == 7

    def test_return_void_control(self):
        runtime, key, _ = installed_runtime()
        spec = PayloadSpec(
            bomb_id="b3", payload_class="Bomb$b3", slots=0, app_name="A",
            woven_body=[ins.ret_void()],
        )
        result = run_payload(runtime, spec, [None, None])
        assert result[0] == CONTROL_RETURN_VOID


class TestEncryption:
    def test_roundtrip_under_derived_key(self):
        spec = PayloadSpec(bomb_id="b4", payload_class="Bomb$b4", slots=0, app_name="A")
        dex = build_payload_dex(spec)
        salt = Salt.from_seed(9)
        ciphertext = encrypt_payload(dex, 42, salt)
        blob = AES128(derive_key(42, salt)).decrypt_cbc(ciphertext, PAYLOAD_IV)
        assert serialize_dex(deserialize_dex(blob)) == serialize_dex(dex)

    def test_wrong_constant_cannot_decrypt(self):
        spec = PayloadSpec(bomb_id="b5", payload_class="Bomb$b5", slots=0, app_name="A")
        ciphertext = encrypt_payload(build_payload_dex(spec), 42, Salt.from_seed(9))
        with pytest.raises(Exception):
            AES128(derive_key(43, Salt.from_seed(9))).decrypt_cbc(ciphertext, PAYLOAD_IV)

    def test_payload_bytes_leak_nothing(self):
        spec = PayloadSpec(
            bomb_id="b6", payload_class="Bomb$b6", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex="aa" * 20
            ),
            response=ResponseKind.CRASH,
            inner=always_true_inner(),
        )
        ciphertext = encrypt_payload(build_payload_dex(spec), "c", Salt.from_seed(1))
        assert b"get_public_key" not in ciphertext
        assert bytes.fromhex("aa" * 20) not in ciphertext
        assert b"gps.lat" not in ciphertext


class TestDetection:
    def _spec(self, key_hex, response=ResponseKind.CRASH, inner=None):
        return PayloadSpec(
            bomb_id="bd", payload_class="Bomb$bd", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex=key_hex
            ),
            response=response,
            inner=inner,
        )

    def test_genuine_app_passes(self):
        runtime, key, _ = installed_runtime()
        spec = self._spec(key.public.fingerprint().hex())
        run_payload(runtime, spec, [None, None])
        assert runtime.detections == []
        assert "bd" in runtime.bombs.bombs_with("inner_met")

    def test_foreign_key_detected_and_crashes(self):
        runtime, key, _ = installed_runtime()
        spec = self._spec("11" * 20)
        with pytest.raises(VMCrash, match="repackaging response"):
            run_payload(runtime, spec, [None, None])
        assert runtime.detections == ["bd"]
        assert "bd" in runtime.bombs.bombs_with("responded")

    def test_unmet_inner_skips_detection(self):
        runtime, key, _ = installed_runtime(device=attacker_lab_profiles(1)[0])
        impossible = InnerCondition(
            constraints=(Constraint("build.manufacturer", CmpOp.EQ, "samsung"),),
        )
        spec = self._spec("11" * 20, inner=impossible)
        run_payload(runtime, spec, [None, None])
        assert runtime.detections == []
        assert "bd" not in runtime.bombs.bombs_with("inner_met")

    def test_code_digest_detection_via_stego(self):
        """Digest comparison reads the stego-hidden Do from strings.xml."""
        from repro.apk.stego import embed_in_cover
        from repro.crypto import sha1

        dex = assemble(APP_SOURCE)
        key = RSAKeyPair.generate(seed=3)
        cover = (
            "thank you for installing this application we hope you enjoy "
            "using it every single day and tell all your friends about it"
        )
        digest = sha1(serialize_dex(dex))[:8]
        resources = Resources(
            strings={"app_name": "A", "tag": embed_in_cover(cover, digest)}
        )
        apk = build_apk(dex, resources, key)
        runtime = Runtime(apk.dex(), package=apk.install_view())
        spec = PayloadSpec(
            bomb_id="bg", payload_class="Bomb$bg", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.CODE_DIGEST, stego_key="tag", stego_digest_bytes=8
            ),
            response=ResponseKind.CRASH,
        )
        run_payload(runtime, spec, [None, None])  # genuine: no crash
        assert runtime.detections == []

    def test_code_scan_detection(self):
        from repro.dex.hashing import method_instruction_hash

        runtime, key, _ = installed_runtime()
        target = runtime.find_method("A.on_key")
        spec = PayloadSpec(
            bomb_id="bs", payload_class="Bomb$bs", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.CODE_SCAN,
                scan_target="A.on_key",
                scan_expected_hex=method_instruction_hash(target),
            ),
            response=ResponseKind.CRASH,
        )
        run_payload(runtime, spec, [None, None])  # untouched: passes
        # Now the attacker patches the method (code instrumentation).
        target.instructions.insert(0, ins.const(0, 999))
        target.invalidate()
        with pytest.raises(VMCrash):
            run_payload(runtime, spec, [None, None])
        assert "bs" in runtime.detections


class TestResponses:
    def _detect_with(self, response, runtime):
        spec = PayloadSpec(
            bomb_id="br", payload_class="Bomb$br", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex="22" * 20
            ),
            response=response,
            null_target="A.anchor" if response is ResponseKind.NULL_STATIC else None,
        )
        return run_payload(runtime, spec, [None, None])

    def test_warn_alerts_user(self):
        runtime, _, _ = installed_runtime()
        self._detect_with(ResponseKind.WARN, runtime)
        assert any("repackaged" in message for kind, message in runtime.ui_effects)

    def test_report_reaches_developer(self):
        runtime, key, _ = installed_runtime()
        self._detect_with(ResponseKind.REPORT, runtime)
        assert len(runtime.reports) == 1
        assert "key=" in runtime.reports[0]

    def test_null_static_clears_reference(self):
        runtime, _, _ = installed_runtime()
        assert runtime.statics["A.anchor"] == 5
        self._detect_with(ResponseKind.NULL_STATIC, runtime)
        assert runtime.statics["A.anchor"] is None

    def test_memory_leak_pins_allocation(self):
        runtime, _, _ = installed_runtime()
        self._detect_with(ResponseKind.MEMORY_LEAK, runtime)
        leak = runtime.statics["Bomb$br.leak"]
        assert isinstance(leak, list) and len(leak) > 10_000

    def test_endless_loop_exhausts_budget(self):
        runtime, _, _ = installed_runtime()
        spec = PayloadSpec(
            bomb_id="bl", payload_class="Bomb$bl", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex="33" * 20
            ),
            response=ResponseKind.ENDLESS_LOOP,
        )
        from repro.dex.serializer import serialize_dex as ser

        blob = ser(build_payload_dex(spec))
        method = runtime.load_blob_method(blob, spec.entry)
        with pytest.raises(BudgetExhausted):
            runtime.session(budget=50_000).run(method, [[None, None]])

    def test_slowdown_costs_cycles_but_continues(self):
        runtime, _, _ = installed_runtime()
        before = runtime.cost_units
        self._detect_with(ResponseKind.SLOWDOWN, runtime)
        assert runtime.cost_units - before > 5_000
