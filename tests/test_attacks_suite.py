"""The adversary-analysis suite against all three defenses.

This is the resilience matrix of the paper in test form: each attack
must defeat the baseline it historically defeated and bounce off
BombDroid.
"""

import pytest

from repro.attacks import (
    BruteForceAttack,
    CrackOutcome,
    DeletionAttack,
    ForcedExecutionAttack,
    InstrumentationAttack,
    SlicingAttack,
    SymbolicAttack,
    TextSearchAttack,
)
from repro.attacks.brute_force import rainbow_attack
from repro.analysis.qualified_conditions import Strength
from repro.core import SSNConfig, SSNProtector
from repro.core.naive import NaiveProtector


@pytest.fixture(scope="module")
def ssn_apk(small_apk, developer_key):
    apk, _ = SSNProtector(SSNConfig(seed=4)).protect(small_apk, developer_key)
    return apk


@pytest.fixture(scope="module")
def naive_apk(small_apk, developer_key):
    apk, _ = NaiveProtector(seed=4).protect(small_apk, developer_key)
    return apk


class TestTextSearch:
    def test_naive_defeated(self, naive_apk):
        assert TextSearchAttack().run(naive_apk).defeated_defense

    def test_ssn_hides_the_name(self, ssn_apk):
        result = TextSearchAttack().run(ssn_apk)
        assert not result.defeated_defense  # reflection hid the string

    def test_bombdroid_sites_visible_but_opaque(self, protected_apk):
        result = TextSearchAttack().run(protected_apk)
        assert not result.defeated_defense
        assert result.bombs_found  # sites ARE findable; payloads are not


class TestSymbolicExecution:
    def test_naive_solved(self, naive_apk):
        result = SymbolicAttack(max_paths=48).run(naive_apk)
        assert result.defeated_defense
        assert result.details["trigger_models"]

    def test_ssn_walked_through(self, ssn_apk):
        result = SymbolicAttack(max_paths=48).run(ssn_apk)
        assert result.defeated_defense
        assert "android.pm.get_public_key" in result.details["reflection_targets"]
        assert result.details["leaked_key_constants"]

    def test_bombdroid_hits_hash_walls(self, protected_apk, protection_report):
        result = SymbolicAttack(max_paths=48).run(protected_apk)
        assert not result.defeated_defense
        assert result.details["hash_walls"] > 0
        assert result.bombs_found  # bombs located, payloads sealed (G1)

    def test_leaked_ssn_key_is_the_real_one(self, ssn_apk, developer_key):
        result = SymbolicAttack(max_paths=48).run(ssn_apk)
        assert developer_key.public.fingerprint().hex() in (
            result.details["leaked_key_constants"]
        )


class TestForcedExecution:
    def test_naive_payload_exposed(self, naive_apk):
        result = ForcedExecutionAttack(seed=1, per_method_branches=6).run(naive_apk)
        assert result.defeated_defense

    def test_bombdroid_decrypt_failures(self, protected_apk):
        result = ForcedExecutionAttack(seed=1, per_method_branches=6).run(protected_apk)
        assert not result.defeated_defense
        assert result.details["decrypt_failures"] > 0  # G2 in action


class TestSlicing:
    def test_naive_slice_reveals_detection(self, naive_apk):
        result = SlicingAttack(seed=2).run(naive_apk)
        assert result.defeated_defense

    def test_bombdroid_slices_hit_the_key_wall(self, protected_apk):
        result = SlicingAttack(seed=2).run(protected_apk)
        assert not result.defeated_defense
        assert result.details["criteria"] > 0


class TestInstrumentation:
    def test_ssn_fully_defeated(self, ssn_apk, attacker_key, developer_key):
        attack = InstrumentationAttack(seed=3)
        result = attack.run_against_ssn(
            ssn_apk, attacker_key, developer_key.public.fingerprint().hex()
        )
        assert result.defeated_defense
        assert result.details["key_constants_patched"] > 0
        assert not result.details["detection_survived"]

    def test_bombdroid_gives_nothing_to_patch(
        self, protected_apk, attacker_key, developer_key
    ):
        attack = InstrumentationAttack(seed=3)
        result = attack.run_against_bombdroid(
            protected_apk, attacker_key, developer_key.public.fingerprint().hex()
        )
        assert not result.defeated_defense
        assert result.details["key_constants_patched"] == 0
        assert result.details["reflection_targets"] == []


class TestDeletion:
    def test_deletion_corrupts_woven_app(self, protected_apk, attacker_key, small_apk):
        result = DeletionAttack(differential_events=500, seed=4).run(
            protected_apk, attacker_key, original=small_apk
        )
        assert result.details["sites_patched"] > 0
        assert result.app_corrupted          # weaving did its job (G4)
        assert not result.defeated_defense

    def test_deleting_artificial_only_bombs_is_safe_for_attacker(
        self, small_apk, developer_key, attacker_key
    ):
        """Ablation: with only artificial bombs (no existing-QC
        transforms), deletion is free -- an artificial site guards no
        original code.  Existing-QC bombs are deletion-resistant even
        unwoven, because the branch decision itself was replaced by the
        hash check and the constant needed to reconstruct it is gone."""
        from repro.core import BombDroid, BombDroidConfig

        config = BombDroidConfig(
            seed=6, profiling_events=200, bogus_ratio=0.0, alpha=1.0,
            max_bombs_per_method=0,  # suppress existing-QC bombs entirely
        )
        artificial_only, report = BombDroid(config).protect(small_apk, developer_key)
        assert report.total_injected > 0
        result = DeletionAttack(differential_events=500, seed=4).run(
            artificial_only, attacker_key, original=small_apk
        )
        assert not result.app_corrupted
        assert result.defeated_defense


class TestBruteForce:
    def test_weak_bombs_crack_instantly(self, protection_report):
        weak = [b for b in protection_report.real_bombs() if b.strength is Strength.WEAK]
        if not weak:
            pytest.skip("fixture produced no weak bombs")
        attack = BruteForceAttack(int_budget=10)
        for bomb in weak:
            report = attack.crack_bomb(bomb)
            assert report.outcome is CrackOutcome.CRACKED
            assert report.tries <= 2

    def test_small_int_constants_crack_within_budget(self, protection_report):
        medium = [
            b for b in protection_report.real_bombs()
            if b.strength is Strength.MEDIUM and isinstance(b.const_value, int)
            and abs(b.const_value) < 1000
        ]
        attack = BruteForceAttack(int_budget=5000)
        for bomb in medium:
            assert attack.crack_bomb(bomb).recovered == bomb.const_value

    def test_string_bombs_resist_without_dictionary(self, protection_report):
        strong = [
            b for b in protection_report.real_bombs() if b.strength is Strength.STRONG
        ]
        if not strong:
            pytest.skip("fixture produced no strong bombs")
        attack = BruteForceAttack(dictionary=["wrong", "guesses"])
        for bomb in strong:
            assert attack.crack_bomb(bomb).outcome is CrackOutcome.INFEASIBLE

    def test_dictionary_cracks_known_words(self, protection_report):
        strong = [
            b for b in protection_report.real_bombs() if b.strength is Strength.STRONG
        ]
        if not strong:
            pytest.skip("fixture produced no strong bombs")
        attack = BruteForceAttack(dictionary=[b.const_value for b in strong])
        for bomb in strong:
            assert attack.crack_bomb(bomb).outcome is CrackOutcome.CRACKED

    def test_rainbow_tables_defeated_by_salt(self, protection_report):
        bombs = protection_report.real_bombs()
        table_values = [b.const_value for b in bombs] + list(range(100))
        outcome = rainbow_attack(bombs, table_values)
        assert not any(outcome.values())  # salting wins (Section 5.1)

    def test_cost_estimates_ordered_by_strength(self):
        from repro.attacks import classify_strength_cost

        assert (
            classify_strength_cost(Strength.WEAK)
            < classify_strength_cost(Strength.MEDIUM)
            < classify_strength_cost(Strength.STRONG)
        )
