"""Durable ingestion: WAL codec, snapshot compaction, crash recovery."""

import os
import struct

import pytest

from repro.chaos.faults import FaultPlan, active_plan
from repro.crypto import RSAKeyPair
from repro.errors import DurabilityError, WireError
from repro.reporting import (
    AggregatedVerdict,
    DetectionReport,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    sign_report,
)
from repro.reporting.durability import (
    decode_record,
    decode_snapshot,
    encode_epoch_record,
    encode_register_record,
    encode_report_record,
    encode_snapshot,
    encode_takedown_record,
)

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=41)


def make_signed(attest_key, device="dev-1", key=PIRATE, ts=0.0, nonce=1, app="Game"):
    return sign_report(
        DetectionReport(
            app_name=app,
            bomb_id="b001",
            device_id=device,
            observed_key_hex=key,
            timestamp=ts,
            nonce=nonce,
        ),
        attest_key,
    )


def make_server(data_dir=None, **kwargs):
    kwargs.setdefault("shards", 4)
    server = ReportServer(data_dir=data_dir, **kwargs)
    if "Game" not in server.apps:
        server.register_app("Game", ORIGINAL)
    return server


def counter(server, name):
    return server.metrics.counter(name).value


class TestRecordCodec:
    def test_report_record_roundtrips(self):
        report = DetectionReport(
            app_name="Game", bomb_id="b007", device_id="dev-9",
            observed_key_hex=PIRATE, timestamp=12.5, nonce=77,
        )
        for trusted in (False, True):
            payload = encode_report_record("Game", report, trusted)
            kind, app, decoded, got_trusted = decode_record(payload)
            assert (kind, app, got_trusted) == ("report", "Game", trusted)
            assert decoded == report

    def test_takedown_and_register_records_roundtrip(self):
        assert decode_record(encode_takedown_record("Game", PIRATE, 42.0)) == (
            "takedown", "Game", PIRATE, 42.0
        )
        assert decode_record(encode_register_record("Game", ORIGINAL)) == (
            "register", "Game", ORIGINAL
        )

    def test_garbage_records_raise(self):
        with pytest.raises(WireError):
            decode_record(b"")
        with pytest.raises(WireError):
            decode_record(b"\xff rest")
        with pytest.raises(WireError):
            decode_record(encode_takedown_record("Game", PIRATE, 1.0)[:-3])


class TestSnapshotCodec:
    def test_live_server_state_roundtrips(self, attest_key):
        server = make_server()
        for i in range(6):
            server.submit(make_signed(attest_key, device=f"d{i}", ts=float(i),
                                      nonce=100 + i))
        server.process()
        server.verdict("Game")
        state = server._snapshot_state()
        assert decode_snapshot(encode_snapshot(state)) == state

    def test_corrupt_snapshot_payload_raises(self):
        server = make_server()
        payload = encode_snapshot(server._snapshot_state())
        with pytest.raises(WireError):
            decode_snapshot(payload[:-2])
        with pytest.raises(WireError):
            decode_snapshot(b"\x99" + payload[1:])


class TestCrashRecover:
    def test_recovered_state_matches_and_dedup_survives(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        signed = [
            make_signed(attest_key, device=f"d{i}", ts=float(i), nonce=500 + i)
            for i in range(5)
        ]
        for s in signed:
            assert server.submit(s) is SubmitStatus.ACCEPTED
        server.process()
        expected = server.verdicts()
        server.crash()

        recovered = ReportServer.recover(data_dir, shards=4)
        assert counter(recovered, "wal.replayed") >= 5
        recovered.process()
        assert recovered.verdicts() == expected
        # Dedup state survived the kill: pre-crash accepted reports are
        # duplicates, not fresh evidence.
        for s in signed:
            assert recovered.submit(s) is SubmitStatus.DUPLICATE
        recovered.close()

    def test_recover_missing_dir_raises(self, tmp_path):
        with pytest.raises(DurabilityError):
            ReportServer.recover(str(tmp_path / "never-existed"))

    def test_shard_count_mismatch_raises(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir, snapshot_every=1)
        server.submit(make_signed(attest_key, device="d1", nonce=1))
        server.close()  # compacts: the snapshot records 4 shards
        with pytest.raises(DurabilityError):
            ReportServer.recover(data_dir, shards=2)

    def test_takedown_survives_without_double_count(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        for i in range(3):
            server.submit(make_signed(attest_key, device=f"d{i}", ts=float(i),
                                      nonce=i + 1))
        server.process()
        assert server.verdict("Game")[0] is AggregatedVerdict.TAKEDOWN
        assert counter(server, "reporting.takedowns") == 1
        server.crash()

        recovered = ReportServer.recover(data_dir, shards=4)
        recovered.process()
        verdict, offender = recovered.verdict("Game")
        assert verdict is AggregatedVerdict.TAKEDOWN and offender == PIRATE
        # The journaled transition replayed; the counter must not re-fire.
        assert counter(recovered, "reporting.takedowns") == 0
        recovered.close()

    def test_trusted_nonce_continuity(self, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        assert server.ingest_trusted(
            "Game", device_id="agg-1", observed_key_hex=PIRATE
        ) is SubmitStatus.ACCEPTED
        server.crash()

        recovered = ReportServer.recover(data_dir, shards=4)
        # The auto-nonce sequence resumes past the replayed report; a
        # reset would collide with agg-1's journaled nonce.
        assert recovered.ingest_trusted(
            "Game", device_id="agg-1", observed_key_hex=PIRATE
        ) is SubmitStatus.ACCEPTED
        recovered.close()


class TestCrashAtEveryOffset:
    def test_interrupted_run_equals_uninterrupted(self, attest_key, tmp_path):
        """Satellite 4: crash at offset k, recover, finish -- the final
        verdicts and accepted set must match the uninterrupted run."""
        n = 12
        stream = [
            make_signed(attest_key, device=f"d{i % 5}", ts=float(i),
                        nonce=900 + i)
            for i in range(n)
        ]

        baseline = make_server()
        base_status = [baseline.submit(s) for s in stream]
        baseline.process()
        expected = baseline.verdicts()
        accepted = [
            s for s, status in zip(stream, base_status)
            if status is SubmitStatus.ACCEPTED
        ]

        for k in (1, 4, 7, n - 1):
            data_dir = str(tmp_path / f"crash-{k}")
            server = make_server(data_dir, snapshot_every=4)
            durable_status = [server.submit(s) for s in stream[:k]]
            server.process()
            server.crash()

            recovered = ReportServer.recover(data_dir, shards=4,
                                             snapshot_every=4)
            durable_status.extend(recovered.submit(s) for s in stream[k:])
            recovered.process()
            assert recovered.verdicts() == expected, f"crash at {k}"
            assert durable_status == base_status, f"crash at {k}"
            for s in accepted:
                assert recovered.submit(s) is SubmitStatus.DUPLICATE
            recovered.close()


class TestTornAndCorruptWal:
    def test_torn_tail_recovers_and_stays_appendable(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        server.submit(make_signed(attest_key, device="d1", nonce=1))
        server.submit(make_signed(attest_key, device="d2", nonce=2))
        server.crash()
        # The dying process got partway through an (unacked) append.
        wal = next(
            os.path.join(data_dir, name)
            for name in sorted(os.listdir(data_dir))
            if name.startswith("wal-") and os.path.getsize(
                os.path.join(data_dir, name))
        )
        with open(wal, "ab") as fh:
            fh.write(struct.pack(">II", 64, 0xDEADBEEF) + b"\x00" * 10)

        recovered = ReportServer.recover(data_dir, shards=4)
        assert counter(recovered, "recovery.torn_records") == 1
        assert counter(recovered, "wal.replayed") >= 2
        # The torn bytes were truncated away; the log keeps working.
        assert recovered.submit(
            make_signed(attest_key, device="d3", nonce=3)
        ) is SubmitStatus.ACCEPTED
        recovered.crash()
        again = ReportServer.recover(data_dir, shards=4)
        assert counter(again, "recovery.torn_records") == 0
        assert counter(again, "wal.replayed") >= 3
        again.close()

    def test_bit_flip_mid_wal_stops_that_file_cleanly(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir, shards=1)
        for i in range(4):
            server.submit(make_signed(attest_key, device=f"d{i}", nonce=i + 1))
        server.crash()
        wal = os.path.join(data_dir, "wal-000.log")
        size = os.path.getsize(wal)
        with open(wal, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0x40]))

        recovered = ReportServer.recover(data_dir, shards=1)
        # Rot is detected, counted, and replay keeps the intact prefix.
        assert counter(recovered, "recovery.torn_records") == 1
        assert 0 < counter(recovered, "wal.replayed") < 4
        recovered.close()


class TestCompaction:
    def test_snapshot_truncates_wal_and_recovers_alone(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir, snapshot_every=3)
        # The registration is append #1; the second report is append #3
        # and trips the compaction threshold.
        for i in range(2):
            server.submit(make_signed(attest_key, device=f"d{i}", ts=float(i),
                                      nonce=i + 1))
        assert counter(server, "snapshot.compactions") == 1
        server.process()
        expected = server.verdicts()
        server.crash()
        assert all(
            os.path.getsize(os.path.join(data_dir, name)) == 0
            for name in os.listdir(data_dir)
            if name.startswith("wal-")
        )

        recovered = ReportServer.recover(data_dir, shards=4, snapshot_every=3)
        assert counter(recovered, "snapshot.loads") == 1
        assert counter(recovered, "wal.replayed") == 0
        recovered.process()
        assert recovered.verdicts() == expected
        recovered.close()

    def test_close_compacts(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        server.submit(make_signed(attest_key, device="d1", nonce=1))
        server.close()
        assert os.path.exists(os.path.join(data_dir, "snapshot.bin"))


class TestFaultPoints:
    def test_wal_append_failure_drops_then_retry_succeeds(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        signed = make_signed(attest_key, device="d1", nonce=1)
        plan = FaultPlan(seed=3).arm("wal.append", "raise", max_fires=1)
        with active_plan(plan):
            assert server.submit(signed) is SubmitStatus.DROPPED
        assert counter(server, "reporting.wal_failed") == 1
        assert counter(server, "wal.failures") == 1
        # Nothing was acked, no nonce was remembered: the client's
        # retry must not be misread as a duplicate.
        assert server.submit(signed) is SubmitStatus.ACCEPTED
        server.close()

    def test_snapshot_write_fault_keeps_wal(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir, snapshot_every=2)
        plan = FaultPlan(seed=3).arm("snapshot.write", "flip", magnitude=4)
        with active_plan(plan):
            for i in range(2):
                server.submit(make_signed(attest_key, device=f"d{i}",
                                          nonce=i + 1))
        # The corrupted snapshot failed its verify-read-back; the WALs
        # were NOT truncated, so recovery still sees every report.  (A
        # failed compaction retries at the next append, so the failure
        # counter keeps climbing while the fault stays armed.)
        assert counter(server, "snapshot.failures") >= 1
        assert counter(server, "snapshot.compactions") == 0
        server.process()
        expected = server.verdicts()
        server.crash()

        recovered = ReportServer.recover(data_dir, shards=4)
        assert counter(recovered, "wal.replayed") >= 2
        recovered.process()
        assert recovered.verdicts() == expected
        recovered.close()


class TestEpochPersistence:
    def test_epoch_record_roundtrips(self):
        for epoch in (0, 1, 7, 2**63):
            assert decode_record(encode_epoch_record(epoch)) == ("epoch", epoch)

    def test_epoch_record_truncated_raises(self):
        payload = encode_epoch_record(5)
        with pytest.raises(WireError):
            decode_record(payload[:-1])
        with pytest.raises(WireError):
            decode_record(payload + b"x")

    def test_snapshot_v2_carries_epoch(self, attest_key):
        server = make_server()
        server.submit(make_signed(attest_key))
        server.process()
        server.bump_epoch()
        server.bump_epoch()
        state = server._snapshot_state()
        assert state["epoch"] == 2
        assert decode_snapshot(encode_snapshot(state)) == state

    def test_v1_snapshot_still_decodes_with_epoch_zero(self):
        # A pre-epoch (version 1) snapshot is the v2 payload minus the
        # trailing 8-byte epoch, with the version byte rolled back.
        server = make_server()
        payload = bytearray(encode_snapshot(server._snapshot_state()))
        assert payload[0] == 2
        # v2 layout: version | >d clock | >Q trusted_nonce | >Q epoch | apps
        v1 = bytes([1]) + bytes(payload[1:17]) + bytes(payload[25:])
        state = decode_snapshot(v1)
        assert state["epoch"] == 0
        assert state["apps"] == server._snapshot_state()["apps"]

    def test_bump_epoch_survives_crash_recovery(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir)
        server.submit(make_signed(attest_key))
        server.process()
        assert server.bump_epoch() == 1
        assert server.bump_epoch() == 2
        server.crash()
        recovered = ReportServer.recover(data_dir, shards=4)
        assert recovered.epoch == 2
        # And a recovered server keeps bumping monotonically.
        assert recovered.bump_epoch() == 3
        recovered.close()

    def test_epoch_survives_snapshot_compaction(self, attest_key, tmp_path):
        data_dir = str(tmp_path / "state")
        server = make_server(data_dir, snapshot_every=2)
        server.bump_epoch()
        for i in range(8):  # force compactions past the epoch record
            server.submit(make_signed(attest_key, device=f"d{i}", nonce=50 + i))
        server.process()
        server.close()
        recovered = ReportServer.recover(data_dir, shards=4)
        assert recovered.epoch == 1
        recovered.close()
