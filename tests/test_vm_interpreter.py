"""Interpreter semantics: arithmetic, control flow, heap, budgets."""

import pytest
from hypothesis import given, strategies as st

from repro.dex import assemble, assemble_method, DexFile, DexClass
from repro.errors import BudgetExhausted, MethodNotFound, VMCrash
from repro.vm import CountingTracer, CoverageTracer, Runtime
from repro.vm.values import INT32_MAX, INT32_MIN, to_int32


def run_main(body: str, args=(), params=0):
    """Assemble a single method and execute it."""
    dex = DexFile()
    cls = dex.add_class(DexClass(name="T"))
    cls.add_method(assemble_method(body, class_name="T", name="m", params=params))
    runtime = Runtime(dex)
    return runtime.invoke("T.m", list(args)), runtime


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),   # Java semantics: truncation toward zero
            ("rem", 7, 2, 1),
            ("rem", -7, 2, -1),   # sign follows the dividend
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("shr", 16, 4, 1),
        ],
    )
    def test_binops(self, op, a, b, expected):
        result, _ = run_main(f"{op} r2, r0, r1\nreturn r2", args=[a, b], params=2)
        assert result == expected

    def test_add_wraps_32_bits(self):
        result, _ = run_main("add r2, r0, r1\nreturn r2", args=[INT32_MAX, 1], params=2)
        assert result == INT32_MIN

    def test_mul_wraps(self):
        result, _ = run_main(
            "mul r2, r0, r1\nreturn r2", args=[2**20, 2**20], params=2
        )
        assert result == to_int32(2**40)

    def test_fall_off_end_crashes(self):
        with pytest.raises(VMCrash, match="fell off"):
            run_main("add r2, r0, r1", args=[1, 2], params=2)

    def test_division_by_zero_crashes(self):
        with pytest.raises(VMCrash, match="zero"):
            run_main("div r2, r0, r1\nreturn r2", args=[1, 0], params=2)

    def test_rem_lit_zero_crashes(self):
        with pytest.raises(VMCrash):
            run_main("rem_lit r1, r0, 0\nreturn r1", args=[5], params=1)

    def test_int_op_on_string_crashes(self):
        with pytest.raises(VMCrash, match="expected int"):
            run_main("add r2, r0, r1\nreturn r2", args=["x", 2], params=2)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_to_int32_is_idempotent(self, value):
        assert to_int32(to_int32(value)) == to_int32(value)
        assert INT32_MIN <= to_int32(value) <= INT32_MAX


class TestControlFlow:
    def test_loop_sum(self):
        body = """
            const r1, 0
            const r2, 0
        @loop:
            if_ge r2, r0, @done
            add r1, r1, r2
            add_lit r2, r2, 1
            goto @loop
        @done:
            return r1
        """
        result, _ = run_main(body, args=[10], params=1)
        assert result == 45

    def test_switch_dispatch(self):
        body = """
            switch r0, {1 -> @a, 2 -> @b}
            const r1, 0
            return r1
        @a:
            const r1, 10
            return r1
        @b:
            const r1, 20
            return r1
        """
        assert run_main(body, args=[1], params=1)[0] == 10
        assert run_main(body, args=[2], params=1)[0] == 20
        assert run_main(body, args=[3], params=1)[0] == 0  # falls through

    def test_if_eq_cross_type_never_equal(self):
        body = """
            if_eq r0, r1, @same
            const r2, 0
            return r2
        @same:
            const r2, 1
            return r2
        """
        assert run_main(body, args=["1", 1], params=2)[0] == 0

    def test_if_eq_bool_int_interop(self):
        body = """
            if_eq r0, r1, @same
            const r2, 0
            return r2
        @same:
            const r2, 1
            return r2
        """
        assert run_main(body, args=[True, 1], params=2)[0] == 1

    def test_if_eqz_on_empty_string_and_null(self):
        body = """
            if_eqz r0, @zeroish
            const r1, 0
            return r1
        @zeroish:
            const r1, 1
            return r1
        """
        assert run_main(body, args=[""], params=1)[0] == 1
        assert run_main(body, args=[None], params=1)[0] == 1
        assert run_main(body, args=["x"], params=1)[0] == 0

    def test_throw_carries_message(self):
        with pytest.raises(VMCrash, match="boom"):
            run_main('const r0, "boom"\nthrow r0')

    def test_budget_exhaustion(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="T"))
        cls.add_method(
            assemble_method("@spin:\ngoto @spin", class_name="T", name="m", params=0)
        )
        runtime = Runtime(dex)
        with pytest.raises(BudgetExhausted):
            runtime.invoke("T.m", [], budget=1000)


class TestHeap:
    def test_array_lifecycle(self):
        body = """
            const r0, 3
            new_array r1, r0
            const r2, 0
            const r3, 42
            aput r3, r1, r2
            aget r4, r1, r2
            array_len r5, r1
            add r6, r4, r5
            return r6
        """
        assert run_main(body)[0] == 45

    def test_array_bounds_checked(self):
        body = """
            const r0, 2
            new_array r1, r0
            const r2, 5
            aget r3, r1, r2
            return r3
        """
        with pytest.raises(VMCrash, match="out of bounds"):
            run_main(body)

    def test_negative_array_length(self):
        with pytest.raises(VMCrash):
            run_main("const r0, -1\nnew_array r1, r0\nreturn_void")

    def test_instance_fields(self):
        source = """
        .class Box
        .field contents 7
        .method m 0
            new_instance r0, Box
            iget r1, r0, contents
            const r2, 3
            iput r2, r0, contents
            iget r3, r0, contents
            add r4, r1, r3
            return r4
        .end
        """
        runtime = Runtime(assemble(source))
        assert runtime.invoke("Box.m", []) == 10

    def test_iget_on_null_crashes(self):
        with pytest.raises(VMCrash, match="non-object"):
            run_main("const r0, null\niget r1, r0, f\nreturn r1")


class TestInvocation:
    def test_app_method_call(self):
        source = """
        .class A
        .method double 1
            mul_lit r1, r0, 2
            return r1
        .end
        .method m 1
            invoke r1, A.double, r0
            return r1
        .end
        """
        assert Runtime(assemble(source)).invoke("A.m", [21]) == 42

    def test_unknown_method_crashes(self):
        with pytest.raises(VMCrash, match="unknown method"):
            run_main("invoke r0, No.where\nreturn_void")

    def test_invoke_missing_via_runtime_raises(self):
        runtime = Runtime(DexFile())
        with pytest.raises(MethodNotFound):
            runtime.invoke("Ghost.m", [])

    def test_recursion_depth_limited(self):
        source = """
        .class A
        .method m 1
            invoke r1, A.m, r0
            return r1
        .end
        """
        with pytest.raises(VMCrash, match="depth"):
            Runtime(assemble(source)).invoke("A.m", [0], budget=10**6)

    def test_arg_count_checked(self):
        source = """
        .class A
        .method m 2
            return r0
        .end
        """
        with pytest.raises(VMCrash, match="takes 2"):
            Runtime(assemble(source)).invoke("A.m", [1])


class TestTracers:
    def test_counting_tracer(self):
        dex = DexFile()
        cls = dex.add_class(DexClass(name="T"))
        cls.add_method(
            assemble_method("const r0, 1\nadd r0, r0, r0\nreturn r0", class_name="T", name="m")
        )
        tracer = CountingTracer()
        runtime = Runtime(dex, tracer=tracer)
        runtime.invoke("T.m", [])
        assert tracer.instructions == 3
        assert tracer.invocations.get("T.m") == 1

    def test_coverage_tracer_branches(self):
        body = """
            if_ge r0, r1, @skip
            const r2, 1
        @skip:
            return_void
        """
        dex = DexFile()
        cls = dex.add_class(DexClass(name="T"))
        cls.add_method(assemble_method(body, class_name="T", name="m", params=2))
        tracer = CoverageTracer()
        runtime = Runtime(dex, tracer=tracer)
        runtime.invoke("T.m", [0, 1])
        runtime.invoke("T.m", [1, 0])
        outcomes = next(iter(tracer.branches.values()))
        assert outcomes == {True, False}
        assert 0.0 < tracer.instruction_coverage_of(dex) <= 1.0
