"""The market model: ratings gate downloads, takedowns propagate."""

import pytest

from repro.userside import AggregatedVerdict, DetectionAggregator, Market


@pytest.fixture()
def market():
    return Market(seed=5)


def test_publish_and_download(market, small_apk):
    listing = market.publish("Game", small_apk)
    installs = sum(
        1 for i in range(60) if market.download(f"user-{i}", listing) is not None
    )
    # Neutral 3-star default: roughly half the visitors install.
    assert 15 <= installs <= 55
    assert listing.downloads == installs


def test_bad_ratings_depress_downloads(market, small_apk, pirated_apk):
    good = market.publish("Game", small_apk)
    bad = market.publish("Game (free!)", pirated_apk)
    for _ in range(30):
        market.rate(good, 5)
        market.rate(bad, 1)
    good_installs = sum(
        1 for i in range(100) if market.download(f"g{i}", good) is not None
    )
    bad_installs = sum(
        1 for i in range(100) if market.download(f"b{i}", bad) is not None
    )
    assert good_installs > bad_installs * 2


def test_rating_bounds(market, small_apk):
    listing = market.publish("Game", small_apk)
    with pytest.raises(ValueError):
        market.rate(listing, 6)


def test_takedown_removes_remotely(market, small_apk, pirated_apk, attacker_key, developer_key):
    pirated_listing = market.publish("Game (free!)", pirated_apk)
    for index in range(40):
        market.download(f"victim-{index}", pirated_listing)
    installed_before = market.active_installs(pirated_listing)
    assert installed_before > 0

    aggregator = DetectionAggregator(
        app_name="Game",
        original_key_hex=developer_key.public.fingerprint().hex(),
        report_threshold=2,
    )
    offender = attacker_key.public.fingerprint().hex()
    aggregator.ingest_report(f"repackaged:Game:b001:key={offender}")
    aggregator.ingest_report(f"repackaged:Game:b002:key={offender}")
    assert aggregator.verdict()[0] is AggregatedVerdict.TAKEDOWN

    pulled = market.process_takedown_request(aggregator)
    assert pulled is pirated_listing
    assert pirated_listing.taken_down
    # Remote Application Removal: every install wiped.
    assert market.active_installs(pirated_listing) == 0
    # And nobody can download it anymore.
    assert market.download("late-user", pirated_listing) is None


def test_takedown_needs_matching_listing(market, small_apk, developer_key):
    aggregator = DetectionAggregator(
        app_name="Game",
        original_key_hex=developer_key.public.fingerprint().hex(),
        report_threshold=1,
    )
    aggregator.ingest_report(f"r:key={'cc' * 20}")
    assert market.process_takedown_request(aggregator) is None


def test_suspect_verdict_takes_no_action(market, pirated_apk, attacker_key, developer_key):
    listing = market.publish("Game (free!)", pirated_apk)
    aggregator = DetectionAggregator(
        app_name="Game",
        original_key_hex=developer_key.public.fingerprint().hex(),
        report_threshold=5,
    )
    aggregator.ingest_report(f"r:key={attacker_key.public.fingerprint().hex()}")
    assert market.process_takedown_request(aggregator) is None
    assert not listing.taken_down


def test_summary_readable(market, small_apk):
    market.publish("Game", small_apk)
    assert "downloads" in market.summary()


def test_downloads_reproducible_with_explicit_rng(small_apk):
    import random

    def run(seed):
        market = Market(seed=999)  # market's own seed must not matter
        listing = market.publish("Game", small_apk)
        rng = random.Random(seed)
        per_record = [
            market.download(f"u{i}", listing, rng=rng) is not None
            for i in range(20)
        ]
        bulk = market.download_batch(listing, 1_000, rng=rng)
        return per_record, bulk

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_download_batch_counts_and_gates(market, small_apk):
    import random

    listing = market.publish("Game", small_apk)
    installed = market.download_batch(listing, 10_000, rng=random.Random(1))
    # Neutral 3-star rating: ~55% proceed.
    assert 4_500 <= installed <= 6_500
    assert listing.downloads == installed
    assert market.active_installs(listing) == installed
    listing.taken_down = True
    assert market.download_batch(listing, 100, rng=random.Random(1)) == 0


def test_rate_batch_matches_individual_ratings(market, small_apk):
    listing = market.publish("Game", small_apk)
    market.rate_batch(listing, 1, 30)
    market.rate_batch(listing, 5, 10)
    assert listing.rating_count == 40
    assert listing.average_rating == pytest.approx(2.0)
    with pytest.raises(ValueError):
        market.rate_batch(listing, 9, 1)
    with pytest.raises(ValueError):
        market.rate_batch(listing, 3, -1)


def test_server_takedown_pulls_listing(market, pirated_apk, attacker_key, developer_key):
    from repro.reporting import ReportServer, TakedownPolicy

    listing = market.publish("Game (free!)", pirated_apk)
    market.download_batch(listing, 500)
    server = ReportServer(shards=2, policy=TakedownPolicy(distinct_devices=2))
    server.register_app("Game", developer_key.public.fingerprint().hex())
    offender = attacker_key.public.fingerprint().hex()
    for device in ("d1", "d2"):
        server.ingest_trusted("Game", device_id=device, observed_key_hex=offender)
    server.process()
    pulled = market.process_server_takedowns(server)
    assert pulled == [listing]
    assert listing.taken_down
    assert market.active_installs(listing) == 0  # bulk installs wiped too
