"""Repackaging pipeline, SSN baseline, naive baseline."""

import pytest

from repro.core import SSNConfig, SSNProtector
from repro.core.naive import NaiveProtector
from repro.errors import VMError
from repro.fuzzing import DynodroidGenerator
from repro.repack import RepackOptions, inject_adware_class, repackage, resign_only
from repro.vm import DevicePopulation, Runtime
from repro.vm.events import Event, EventKind


class TestRepackaging:
    def test_repackaged_apk_verifies_under_new_key(self, protected_apk, attacker_key):
        pirated = repackage(protected_apk, attacker_key)
        pirated.verify()  # the attacker CAN produce a valid signature...

    def test_but_the_public_key_changed(self, protected_apk, attacker_key, developer_key):
        pirated = repackage(protected_apk, attacker_key)
        assert pirated.cert.fingerprint_hex() != protected_apk.cert.fingerprint_hex()
        assert pirated.cert.fingerprint_hex() == attacker_key.public.fingerprint().hex()

    def test_adware_injected(self, protected_apk, attacker_key):
        pirated = repackage(protected_apk, attacker_key)
        assert "AdService" in pirated.dex().classes

    def test_adware_phones_home(self, small_apk, attacker_key):
        pirated = repackage(small_apk, attacker_key)
        runtime = Runtime(pirated.dex(), package=pirated.install_view(), seed=1)
        for _ in range(60):
            runtime.dispatch(Event(EventKind.TICK, "AdService", (16,)))
        assert any("adware-exfil" in report for report in runtime.reports)

    def test_resign_only_keeps_content(self, small_apk, attacker_key):
        pirated = resign_only(small_apk, attacker_key)
        assert pirated.entry("classes.dex") == small_apk.entry("classes.dex")
        assert pirated.cert.fingerprint_hex() != small_apk.cert.fingerprint_hex()

    def test_options_rename_and_rebrand(self, small_apk, attacker_key):
        options = RepackOptions(rename_app="Totally Game", new_author="pirate")
        pirated = repackage(small_apk, attacker_key, options)
        resources = pirated.resources()
        assert resources.app_name == "Totally Game"
        assert resources.author == "pirate"

    def test_detection_fires_on_user_device(self, pirated_apk):
        """The core end-to-end claim: a repackaged app detects itself."""
        population = DevicePopulation(seed=17)
        detected = False
        for index in range(8):
            runtime = Runtime(
                pirated_apk.dex(),
                device=population.sample(),
                package=pirated_apk.install_view(),
                seed=index,
            )
            try:
                runtime.boot()
            except VMError:
                pass
            generator = DynodroidGenerator(pirated_apk.dex(), seed=index)
            for event in generator.stream(400):
                try:
                    runtime.dispatch(event)
                except VMError:
                    pass
            if runtime.detections:
                detected = True
                break
        assert detected


class TestSSN:
    @pytest.fixture(scope="class")
    def ssn(self, small_apk, developer_key):
        return SSNProtector(SSNConfig(seed=4, probability=0.05)).protect(
            small_apk, developer_key
        )

    def test_sites_inserted(self, ssn):
        _, report = ssn
        assert report.sites

    def test_obfuscated_name_is_reversed(self, ssn):
        _, report = ssn
        assert report.obfuscated_name == "android.pm.get_public_key"[::-1]

    def test_genuine_app_unharmed(self, ssn):
        apk, _ = ssn
        runtime = Runtime(apk.dex(), package=apk.install_view(), seed=9)
        generator = DynodroidGenerator(apk.dex(), seed=9)
        for event in generator.stream(400):
            runtime.dispatch(event)  # must never crash
        assert runtime.detections == []

    def test_repackaged_app_eventually_crashes(self, ssn, attacker_key):
        apk, _ = ssn
        pirated = resign_only(apk, attacker_key)
        runtime = Runtime(pirated.dex(), package=pirated.install_view(), seed=9)
        generator = DynodroidGenerator(pirated.dex(), seed=9)
        crashed = False
        for event in generator.stream(2000):
            try:
                runtime.dispatch(event)
            except VMError as exc:
                assert "SSN" in str(exc)
                crashed = True
                break
        assert crashed, "SSN's delayed response never fired"


class TestNaive:
    @pytest.fixture(scope="class")
    def naive(self, small_apk, developer_key):
        return NaiveProtector(seed=4).protect(small_apk, developer_key)

    def test_sites_inserted(self, naive):
        _, report = naive
        assert report.sites

    def test_genuine_app_unharmed(self, naive):
        apk, _ = naive
        runtime = Runtime(apk.dex(), package=apk.install_view(), seed=9)
        runtime.dispatch(Event(EventKind.TOUCH, "Game", (5, 5)))
        assert runtime.detections == []

    def test_repackaged_app_crashes_when_triggered(self, naive, attacker_key):
        apk, _ = naive
        pirated = resign_only(apk, attacker_key)
        runtime = Runtime(pirated.dex(), package=pirated.install_view(), seed=9)
        with pytest.raises(VMError, match="naive bomb"):
            # Touch x==5 satisfies the fixture's QC, whose body now
            # carries the cleartext detection.
            runtime.dispatch(Event(EventKind.TOUCH, "Game", (5, 5)))

    def test_detection_visible_in_cleartext(self, naive):
        from repro.dex.disassembler import disassemble

        apk, _ = naive
        assert "get_public_key" in disassemble(apk.dex())
