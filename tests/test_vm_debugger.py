"""The tracing debugger and the Section 2.1 debugging attack."""

import pytest

from repro.attacks import DebuggerAttack
from repro.core.naive import NaiveProtector
from repro.dex import assemble
from repro.vm import Runtime
from repro.vm.debugger import Debugger


SOURCE = """
.class A
.field secret static 0
.method on_key 1
    const r1, 1
    sput r1, A.secret
    invoke r2, android.pm.get_public_key
    invoke _, android.log.i, r2
    return_void
.end
"""


def installed_runtime(tracer=None):
    from repro.apk import Resources, build_apk
    from repro.crypto import RSAKeyPair

    dex = assemble(SOURCE)
    apk = build_apk(dex, Resources(strings={"app_name": "A"}), RSAKeyPair.generate(seed=41))
    return Runtime(dex, package=apk.install_view(), tracer=tracer)


class TestDebugger:
    def test_api_watch_traces_back_to_caller(self):
        debugger = Debugger().watch_api("android.pm.get_public_key")
        runtime = installed_runtime(debugger)
        runtime.invoke("A.on_key", [1])
        (hit,) = debugger.hits_for("android.pm.get_public_key")
        assert hit.source_method == "A.on_key"
        assert debugger.source_methods("android.pm.get_public_key") == {"A.on_key"}

    def test_static_watch_records_writes(self):
        debugger = Debugger().watch_static("A.secret")
        runtime = installed_runtime(debugger)
        runtime.invoke("A.on_key", [1])
        (hit,) = debugger.static_hits
        assert hit.field == "A.secret"
        assert hit.method == "A.on_key"

    def test_breakpoints(self):
        debugger = Debugger().set_breakpoint("A.on_key", 0)
        runtime = installed_runtime(debugger)
        runtime.invoke("A.on_key", [1])
        assert debugger.breakpoint_hits == [("A.on_key", 0)]

    def test_trace_ring_bounded(self):
        debugger = Debugger(trace_depth=4)
        runtime = installed_runtime(debugger)
        runtime.invoke("A.on_key", [1])
        assert len(debugger.trace_tail(100)) <= 4


class TestDebuggerAttack:
    def test_naive_detection_is_actionable(self, small_apk, developer_key, attacker_key):
        from repro.repack import resign_only

        naive, _ = NaiveProtector(seed=4).protect(small_apk, developer_key)
        pirated = resign_only(naive, attacker_key)
        result = DebuggerAttack(seed=2, session_seconds=300).run(pirated, total_bombs=5)
        assert result.defeated_defense
        assert result.details["actionable_cleartext_sources"]

    def test_bombdroid_hits_trace_to_encrypted_payloads(
        self, pirated_apk, protection_report
    ):
        result = DebuggerAttack(seed=2, session_seconds=600).run(
            pirated_apk, total_bombs=len(protection_report.real_bombs())
        )
        assert not result.defeated_defense
        assert result.details["actionable_cleartext_sources"] == []
        # Whatever the debugger did catch came from Bomb$ payloads.
        assert all("Bomb$" in source for source in result.details["payload_only_sources"])
