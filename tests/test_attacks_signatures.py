"""Attack-side signature library (repro.attacks.signatures)."""

import pytest

from repro.attacks.signatures import (
    CLASSIC_SIGNATURE,
    EXTENDED_SIGNATURE,
    SUSPICIOUS_PATTERNS,
    count_live_anchors,
    find_ciphertext_anchors,
    find_trigger_sites,
    strip_learned,
    strip_with_signature,
)
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind


def meshed_apk(small_apk, developer_key, seed=4):
    config = BombDroidConfig(
        seed=seed,
        profiling_events=400,
        mesh=True,
        detection_methods=(
            DetectionMethod.PUBLIC_KEY,
            DetectionMethod.CODE_DIGEST,
            DetectionMethod.CODE_SCAN,
        ),
        responses=(
            ResponseKind.CRASH,
            ResponseKind.WARN,
            ResponseKind.REPORT,
            ResponseKind.SLOWDOWN,
        ),
    )
    return BombDroid(config).protect(small_apk, developer_key)


class TestClassicSignature:
    def test_patterns_reexported_for_text_search(self):
        from repro.attacks.text_search import (
            SUSPICIOUS_PATTERNS as TEXT_PATTERNS,
        )

        assert TEXT_PATTERNS is SUSPICIOUS_PATTERNS

    def test_strips_every_unmeshed_bomb(self, protected_apk, protection_report):
        dex = protected_apk.dex()
        sites = find_trigger_sites(dex, CLASSIC_SIGNATURE)
        # Bogus bombs carry the same prologue, so they are found too.
        assert len(sites) == len(protection_report.bombs)
        patched = strip_with_signature(dex, CLASSIC_SIGNATURE)
        assert patched == len(sites)
        # Nothing is left armed: every prologue branch went unconditional.
        assert count_live_anchors(dex) == 0

    def test_anchors_match_bomb_count(self, protected_apk, protection_report):
        dex = protected_apk.dex()
        anchors = find_ciphertext_anchors(dex)
        assert len(anchors) == len(protection_report.bombs)
        assert count_live_anchors(dex) == len(anchors)


class TestSignatureTiers:
    def test_classic_misses_mesh_survivors(self, small_apk, developer_key):
        result = meshed_apk(small_apk, developer_key)
        dex = result.apk.dex()
        strip_with_signature(dex, CLASSIC_SIGNATURE)
        assert count_live_anchors(dex) > 0

    def test_extended_catches_more_but_not_aliases(self, small_apk, developer_key):
        result = meshed_apk(small_apk, developer_key)
        classic_dex = result.apk.dex()
        extended_dex = result.apk.dex()
        classic = strip_with_signature(classic_dex, CLASSIC_SIGNATURE)
        extended = strip_with_signature(extended_dex, EXTENDED_SIGNATURE)
        assert extended > classic
        # The fixture seed draws at least one aliased prologue; the
        # extended signature still anchors on the canonical invoke name,
        # so the aliased bomb stays armed.
        aliased = [
            b for b in result.report.bombs if b.prologue_shape.endswith("+alias")
        ]
        assert aliased
        assert count_live_anchors(extended_dex) >= len(
            [b for b in aliased if b.detection is not None]
        )

    def test_learned_strip_disarms_everything(self, small_apk, developer_key):
        result = meshed_apk(small_apk, developer_key)
        dex = result.apk.dex()
        patched = strip_learned(dex)
        assert patched > 0
        assert count_live_anchors(dex) == 0
        dex.validate()


class TestAttackIntegration:
    def test_deletion_attack_reports_live_sites(
        self, small_apk, developer_key, attacker_key
    ):
        from repro.attacks import DeletionAttack
        from repro.repack import repackage

        result = meshed_apk(small_apk, developer_key)
        pirated = repackage(result.apk, attacker_key)
        outcome = DeletionAttack(differential_events=300, seed=4).run(
            pirated, attacker_key, original=small_apk
        )
        assert not outcome.defeated_defense
        assert outcome.details["live_sites"] > 0

    def test_adaptive_stripper_corrupts_the_meshed_app(
        self, small_apk, developer_key, attacker_key
    ):
        from repro.attacks import AdaptiveStripperAttack
        from repro.repack import repackage

        result = meshed_apk(small_apk, developer_key)
        pirated = repackage(result.apk, attacker_key)
        outcome = AdaptiveStripperAttack(differential_events=500, seed=4).run(
            pirated, attacker_key, original=small_apk
        )
        assert outcome.details["branches_patched"] > 0
        # The blanket strip disarms the mesh but breaks woven app code:
        # the repackage is not sellable, so the defense holds.
        assert outcome.app_corrupted
        assert not outcome.defeated_defense
