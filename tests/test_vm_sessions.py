"""The session API: ExecutionContext, tracer unification, SessionEngine.

``Runtime.session(...)`` is the execution entry point; these tests pin
its contract -- measured results, budget accounting, tracer attach/
detach, policy override scoping -- plus the batched SessionEngine the
fleet calibration and opt-in real-session fleets share.
"""

from __future__ import annotations

import pytest

from repro.core.config import DetectionMethod, ResponseKind
from repro.core.payloads import DetectionSpec, PayloadSpec, build_payload_dex
from repro.dex import assemble
from repro.dex.serializer import serialize_dex
from repro.errors import ReportingError
from repro.vm import Runtime
from repro.vm.containment import ContainmentPolicy
from repro.vm.interpreter import CompositeTracer, CountingTracer, Tracer
from repro.vm.sessions import ExecutionContext, SessionEngine, SessionResult

APP = """
.class A
.field total static 0
.method main 0
    const r0, 0
    sput r0, A.total
    return_void
.end
.method bump 1
    sget r1, A.total
    add r1, r1, r0
    sput r1, A.total
    return r1
.end
.method on_key 1
    invoke r1, A.bump, r0
    return_void
.end
"""


def _runtime(**kwargs):
    return Runtime(assemble(APP), seed=0, **kwargs)


class TestExecutionContext:
    def test_run_returns_session_result(self):
        runtime = _runtime()
        result = runtime.session().run(runtime.find_method("A.bump"), [5])
        assert isinstance(result, SessionResult)
        assert result.value == 5
        assert result.instructions == 4       # sget, add, sput, return
        assert result.cost == 4
        assert result.remaining == runtime.default_budget - 4
        assert result.trips == ()

    def test_consumed_accumulates_across_calls(self):
        runtime = _runtime()
        ctx = runtime.session(budget=100)
        first = ctx.invoke("A.bump", [1])
        second = ctx.invoke("A.bump", [2])
        assert first.instructions == second.instructions == 4
        assert ctx.consumed == 8
        assert ctx.remaining == 100 - 8
        assert second.remaining == ctx.remaining

    def test_session_tracers_attach_only_inside(self):
        runtime = _runtime()
        tracer = CountingTracer()
        ctx = runtime.session(tracers=[tracer])
        assert runtime.tracers == ()
        with ctx:
            assert runtime.tracers == (tracer,)
            ctx.invoke("A.bump", [1])
            with ctx:  # reentrant: attaches once
                assert runtime.tracers == (tracer,)
            assert runtime.tracers == (tracer,)
        assert runtime.tracers == ()
        assert tracer.instructions == 4

    def test_measured_call_attaches_transiently(self):
        runtime = _runtime()
        tracer = CountingTracer()
        runtime.session(tracers=[tracer]).invoke("A.bump", [1])
        assert runtime.tracers == ()
        assert tracer.instructions == 4

    def test_policy_override_swaps_and_restores(self):
        base = ContainmentPolicy(max_consecutive_failures=9)
        runtime = _runtime(containment=base)
        override = ContainmentPolicy(payload_budget=123)
        with runtime.session(policy=override):
            assert runtime.containment is override
            assert runtime.breaker.threshold == override.max_consecutive_failures
        assert runtime.containment is base
        assert runtime.breaker.threshold == 9

    def test_policy_none_override_differs_from_no_override(self):
        base = ContainmentPolicy()
        runtime = _runtime(containment=base)
        with runtime.session():  # no override
            assert runtime.containment is base
        with runtime.session(policy=None):  # explicit crash-through
            assert runtime.containment is None
        assert runtime.containment is base

    def test_boot_runs_mains(self):
        runtime = _runtime()
        runtime.statics["A.total"] = 77
        results = runtime.session().boot()
        assert [r.value for r in results] == [None]
        assert runtime.statics["A.total"] == 0

    def test_trips_capture_bomb_events(self):
        """A detonating payload's bomb-registry events come back on the
        SessionResult of the call that recorded them."""
        from repro.apk import Resources, build_apk
        from repro.crypto import RSAKeyPair

        dex = assemble(APP)
        apk = build_apk(
            dex, Resources(strings={"app_name": "A"}), RSAKeyPair.generate(seed=5)
        )
        runtime = Runtime(apk.dex(), package=apk.install_view(), seed=0)
        spec = PayloadSpec(
            bomb_id="t1", payload_class="Bomb$t1", slots=0, app_name="A",
            detection=DetectionSpec(
                method=DetectionMethod.PUBLIC_KEY, original_key_hex="77" * 20
            ),
            response=ResponseKind.REPORT,
        )
        method = runtime.load_blob_method(
            serialize_dex(build_payload_dex(spec)), spec.entry
        )
        result = runtime.session().run(method, [[None, None]])
        kinds = result.trip_kinds()
        assert "detected" in kinds and "responded" in kinds
        # A later, quiet call reports no trips.
        quiet = runtime.session().run(runtime.find_method("A.main"), [])
        assert quiet.trips == ()


class TestTracerUnification:
    def test_single_tracer_is_effective_directly(self):
        runtime = _runtime()
        tracer = CountingTracer()
        runtime.add_tracer(tracer)
        assert runtime.tracer is tracer
        assert runtime.tracers == (tracer,)

    def test_two_tracers_compose(self):
        runtime = _runtime()
        first, second = CountingTracer(), CountingTracer()
        runtime.add_tracer(first)
        runtime.add_tracer(second)
        assert isinstance(runtime.tracer, CompositeTracer)
        runtime.session().invoke("A.bump", [1])
        assert first.instructions == second.instructions == 4
        runtime.remove_tracer(first)
        assert runtime.tracer is second

    def test_composite_fans_out_in_order(self):
        order = []

        class Probe(Tracer):
            def __init__(self, tag):
                self.tag = tag

            def on_invoke(self, name, args):
                order.append((self.tag, name))

        composite = CompositeTracer([Probe("a"), Probe("b")])
        composite.on_invoke("X.y", [])
        assert order == [("a", "X.y"), ("b", "X.y")]

    def test_setter_replaces_registration_set(self):
        runtime = _runtime()
        first, second = CountingTracer(), CountingTracer()
        runtime.add_tracer(first)
        runtime.add_tracer(second)
        solo = CountingTracer()
        runtime.tracer = solo        # legacy save/swap/restore idiom
        assert runtime.tracers == (solo,)
        runtime.tracer = None
        assert runtime.tracers == ()
        assert runtime.tracer is None

    def test_ctor_accepts_tracers_kwarg(self):
        tracer = CountingTracer()
        runtime = _runtime(tracers=[tracer])
        runtime.session().invoke("A.bump", [3])
        assert tracer.instructions == 4


class TestSessionEngine:
    def test_play_one_deterministic(self, protected_apk):
        engine = SessionEngine(protected_apk, seed=3, events=60)
        assert engine.play_one(2) == engine.play_one(2)

    def test_play_matches_fresh_engine(self, protected_apk):
        first = SessionEngine(protected_apk, seed=1, events=50).play(2)
        second = SessionEngine(protected_apk, seed=1, events=50).play(2)
        assert first == second
        assert [o.index for o in first] == [0, 1]
        assert all(o.events == 50 for o in first)
        assert all(o.instructions > 0 for o in first)

    def test_genuine_app_never_detects(self, protected_apk):
        for outcome in SessionEngine(protected_apk, seed=2, events=80).play(2):
            assert outcome.detections == ()
            assert not outcome.reported
            assert outcome.bomb_counts  # bombs evaluated, none fired

    def test_pirated_app_eventually_reports(self, pirated_apk):
        outcomes = SessionEngine(pirated_apk, seed=0, events=350).play(5)
        assert any(o.detections or o.reported for o in outcomes)
        assert any(o.bad_experience for o in outcomes)

    def test_needs_apk_or_dex(self):
        with pytest.raises(ValueError, match="apk or a dex"):
            SessionEngine()

    def test_dex_only_engine(self):
        engine = SessionEngine(dex=assemble(APP), seed=0, events=30)
        outcome = engine.play_one(0)
        assert outcome.events == 30
        assert outcome.crashes == 0


class TestCalibrationEquivalence:
    def test_shared_engine_matches_default(self, pirated_apk):
        from repro.reporting import OutcomeModel

        direct = OutcomeModel.calibrate(pirated_apk, sessions=3, events=250, seed=0)
        shared = SessionEngine(pirated_apk, seed=0, events=250)
        via_engine = OutcomeModel.calibrate(
            pirated_apk, sessions=3, events=250, seed=0, engine=shared
        )
        assert via_engine == direct


class TestRealSessionFleet:
    def test_real_sessions_requires_engine(self):
        from repro.reporting import FleetConfig, OutcomeModel, run_fleet

        model = OutcomeModel(
            report_rate=0.1, observed_key_hex="bb" * 20, bad_experience_rate=0.1
        )
        with pytest.raises(ReportingError, match="session_engine"):
            run_fleet(
                "Game", "aa" * 20, model,
                FleetConfig(devices=100, batch_size=50, shards=2,
                            real_sessions=True),
            )

    def test_real_session_fleet_smoke(self, pirated_apk, attacker_key):
        """Opt-in real sessions: every sampled reporter plays a real
        interpreted session; reports come from actual bomb responses."""
        from repro.reporting import FleetConfig, OutcomeModel, run_fleet

        model = OutcomeModel(
            report_rate=0.05,
            observed_key_hex=attacker_key.public.fingerprint().hex(),
            bad_experience_rate=0.2,
        )
        engine = SessionEngine(pirated_apk, seed=0, events=350)
        config = FleetConfig(
            devices=200, batch_size=100, shards=2, seed=1,
            target_reports=6, real_sessions=True,
        )
        result = run_fleet(
            "Game", "aa" * 20, model, config, session_engine=engine
        )
        handled = result.statuses.get("accepted", 0) + result.statuses.get(
            "session_no_report", 0
        )
        assert handled > 0
        assert result.reports_sent == result.statuses.get("accepted", 0)
