"""Supplemental coverage: analyst attack, idoms, codegen knobs, events."""

import random

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import immediate_dominators
from repro.attacks import HumanAnalystAttack
from repro.corpus.codegen import AppPlan, HANDLER_PARAM_TYPES, MethodGenerator
from repro.dex import assemble_method
from repro.vm.events import Event, EventKind


class TestHumanAnalyst:
    def test_sessions_accumulate_and_report(self, protected_apk, protection_report):
        attack = HumanAnalystAttack(seed=3, total_hours=0.1, session_minutes=2.0)
        result = attack.run(protected_apk, total_bombs=len(protection_report.real_bombs()))
        assert result.details["sessions"] == 3  # 6 minutes / 2-minute sessions
        assert 0.0 <= result.details["fraction_triggered"] <= 1.0

    def test_mutation_actually_changes_environment(self):
        from repro.vm.device import attacker_lab_profiles

        device = attacker_lab_profiles(1)[0]
        before = dict(device.env)
        HumanAnalystAttack._mutate_environment(device, random.Random(1))
        assert device.env != before or device.clock > 0


class TestImmediateDominators:
    def test_diamond(self):
        method = assemble_method(
            """
            if_ge r0, r0, @right
            const r1, 1
            goto @join
        @right:
            const r1, 2
        @join:
            return r1
            """,
            params=1,
        )
        cfg = build_cfg(method)
        idom = immediate_dominators(cfg)
        assert idom[0] is None
        join = cfg.block_of(method.resolve("join")).index
        assert idom[join] == 0  # the entry, not either arm

    def test_chain(self):
        method = assemble_method("const r0, 1\nreturn r0")
        cfg = build_cfg(method)
        assert immediate_dominators(cfg)[0] is None


class TestCodegenKnobs:
    def _plan(self, seed=0):
        return AppPlan(
            rng=random.Random(seed),
            class_names=["C"],
            int_fields=["C.x"],
            str_fields=["C.s"],
            env_quota=2,
            qc_quota=50,
        )

    def test_force_qcs_emits_that_many(self):
        plan = self._plan()
        generator = MethodGenerator(plan)
        generator.generate("C", "m", ["int"], target_length=10, force_qcs=5)
        assert plan.qcs_emitted >= 5

    def test_handler_param_types_cover_all_kinds(self):
        assert set(HANDLER_PARAM_TYPES) == set(EventKind)

    def test_generated_method_validates(self):
        plan = self._plan(seed=9)
        generator = MethodGenerator(plan)
        for kind in EventKind:
            method = generator.generate(
                "C", f"on_{kind.value}", HANDLER_PARAM_TYPES[kind], target_length=40
            )
            method.validate()

    def test_returns_int_ends_with_return_value(self):
        from repro.dex.opcodes import Op

        plan = self._plan(seed=2)
        method = MethodGenerator(plan).generate(
            "C", "calc", ["int"], target_length=20, returns_int=True
        )
        assert method.instructions[-1].op is Op.RETURN


class TestEventModel:
    def test_handler_property(self):
        event = Event(EventKind.MENU, "Shop", (3,))
        assert event.handler == "Shop.on_menu"

    def test_events_hashable_and_comparable(self):
        a = Event(EventKind.BACK, "A")
        b = Event(EventKind.BACK, "A")
        assert a == b
        assert hash(a) == hash(b)
