"""Static analysis: CFG, dominators, loops, QCs, regions, slicing."""

import pytest

from repro.analysis import (
    backward_slice,
    body_region,
    build_cfg,
    control_dependence,
    controlled_blocks,
    dominators,
    find_qualified_conditions,
    immediate_postdominators,
    instructions_in_loops,
    natural_loops,
    postdominators,
    region_is_weavable,
)
from repro.analysis.defs import constant_in_block, register_used_once, use_sites
from repro.analysis.qualified_conditions import QCKind, Strength
from repro.analysis.slicing import extract_slice_method
from repro.dex import assemble_method, DexClass, DexFile
from repro.vm import Runtime


def method_of(body: str, params: int = 1):
    return assemble_method(body, class_name="A", name="m", params=params)


DIAMOND = """
    if_ge r0, r0, @right
    const r1, 1
    goto @join
@right:
    const r1, 2
@join:
    return r1
"""

LOOPY = """
    const r1, 0
@loop:
    if_ge r1, r0, @done
    add_lit r1, r1, 1
    goto @loop
@done:
    return r1
"""


class TestCfg:
    def test_diamond_shape(self):
        cfg = build_cfg(method_of(DIAMOND))
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2
        join = cfg.block_of(cfg.method.resolve("join"))
        assert len(join.predecessors) == 2

    def test_unreachable_block_detected(self):
        method = method_of("return r0\nconst r1, 1\nreturn r1")
        cfg = build_cfg(method)
        assert len(cfg.reachable()) < len(cfg.blocks)

    def test_switch_successors(self):
        method = method_of(
            "switch r0, {1 -> @a, 2 -> @b}\nreturn_void\n@a:\nreturn_void\n@b:\nreturn_void"
        )
        cfg = build_cfg(method)
        assert len(cfg.blocks[0].successors) == 3  # two cases + fallthrough


class TestDominatorsAndLoops:
    def test_entry_dominates_all_reachable(self):
        cfg = build_cfg(method_of(DIAMOND))
        dom = dominators(cfg)
        for index in cfg.reachable():
            assert 0 in dom[index]

    def test_join_not_dominated_by_either_arm(self):
        cfg = build_cfg(method_of(DIAMOND))
        dom = dominators(cfg)
        join = cfg.block_of(cfg.method.resolve("join")).index
        arms = [
            block.index
            for block in cfg.blocks
            if block.index not in (0, join) and block.index in cfg.reachable()
        ]
        for arm in arms:
            assert arm not in dom[join]

    def test_loop_found(self):
        method = method_of(LOOPY)
        cfg = build_cfg(method)
        loops = natural_loops(cfg)
        assert len(loops) == 1

    def test_instructions_in_loops(self):
        method = method_of(LOOPY)
        in_loop = instructions_in_loops(method)
        add_pc = next(
            pc for pc, i in enumerate(method.instructions) if i.op.value == "add_lit"
        )
        assert add_pc in in_loop
        assert 0 not in in_loop  # the const before the loop

    def test_straightline_has_no_loops(self):
        assert instructions_in_loops(method_of("return r0")) == set()


class TestConstantTracking:
    def test_follows_move_chain(self):
        method = method_of("const r1, 9\nmove r2, r1\nif_eq r0, r2, @t\n@t:\nreturn_void")
        branch_pc = 2
        assert constant_in_block(method, branch_pc, 2) == (0, 9)

    def test_stops_at_labels(self):
        method = method_of("const r1, 9\n@mid:\nif_eq r0, r1, @t\n@t:\nreturn_void")
        assert constant_in_block(method, 2, 1) is None

    def test_redefinition_blocks(self):
        method = method_of("const r1, 9\nadd r1, r0, r0\nif_eq r0, r1, @t\n@t:\nreturn_void")
        assert constant_in_block(method, 2, 1) is None

    def test_register_used_once(self):
        method = method_of("const r1, 9\nif_eq r0, r1, @t\n@t:\nreturn_void")
        assert register_used_once(method, 1, 1)
        method2 = method_of(
            "const r1, 9\nif_eq r0, r1, @t\nadd r2, r1, r0\n@t:\nreturn_void"
        )
        assert not register_used_once(method2, 1, 1)


class TestQualifiedConditions:
    def test_int_eq_via_if_ne(self):
        method = method_of("const r1, 42\nif_ne r0, r1, @s\nconst r2, 1\n@s:\nreturn_void")
        (qc,) = find_qualified_conditions(method)
        assert qc.kind is QCKind.INT_EQ
        assert qc.const_value == 42
        assert not qc.equal_jumps
        assert qc.strength is Strength.MEDIUM
        assert qc.const_removable

    def test_int_eq_via_if_eq_jumps(self):
        method = method_of("const r1, 7\nif_eq r0, r1, @s\nreturn_void\n@s:\nreturn_void")
        (qc,) = find_qualified_conditions(method)
        assert qc.equal_jumps

    def test_string_equals(self):
        body = (
            'const r1, "magic"\ninvoke r2, java.str.equals, r0, r1\n'
            "if_eqz r2, @s\nconst r3, 1\n@s:\nreturn_void"
        )
        (qc,) = find_qualified_conditions(method_of(body))
        assert qc.kind is QCKind.STR_EQUALS
        assert qc.strength is Strength.STRONG
        assert qc.compare_pc == 1

    def test_starts_with_reported_but_distinct_kind(self):
        body = (
            'const r1, "pre"\ninvoke r2, java.str.starts_with, r0, r1\n'
            "if_eqz r2, @s\n@s:\nreturn_void"
        )
        (qc,) = find_qualified_conditions(method_of(body))
        assert qc.kind is QCKind.STR_STARTS_WITH

    def test_bool_test_from_equals_of_variables(self):
        body = (
            "invoke r2, java.str.equals, r0, r1\n"
            "if_eqz r2, @s\nconst r3, 1\n@s:\nreturn_void"
        )
        (qc,) = find_qualified_conditions(method_of(body, params=2))
        assert qc.kind is QCKind.BOOL_TEST
        assert qc.strength is Strength.WEAK

    def test_if_eqz_on_int_not_qualified(self):
        # An int zero-test must NOT qualify: 0 is falsy but hashes as an
        # int, so the transformation would be unsound.
        method = method_of("if_eqz r0, @s\n@s:\nreturn_void")
        assert find_qualified_conditions(method) == []

    def test_switch_cases(self):
        method = method_of(
            "switch r0, {3 -> @a, 9 -> @b}\nreturn_void\n@a:\nreturn_void\n@b:\nreturn_void"
        )
        qcs = find_qualified_conditions(method)
        assert {qc.case_key for qc in qcs} == {3, 9}
        assert all(qc.kind is QCKind.SWITCH_CASE for qc in qcs)

    def test_constant_vs_constant_ignored(self):
        method = method_of("const r1, 1\nconst r2, 2\nif_eq r1, r2, @s\n@s:\nreturn_void")
        assert find_qualified_conditions(method) == []

    def test_ordering_comparisons_not_qualified(self):
        method = method_of("const r1, 5\nif_lt r0, r1, @s\n@s:\nreturn_void")
        assert find_qualified_conditions(method) == []


class TestRegions:
    def test_if_ne_body_weavable(self):
        method = method_of(
            "const r1, 42\nif_ne r0, r1, @s\nconst r2, 1\nconst r3, 2\n@s:\nreturn_void"
        )
        (qc,) = find_qualified_conditions(method)
        region = body_region(method, qc)
        assert region is not None
        assert (region.start, region.end, region.exit_label) == (2, 4, "s")

    def test_body_with_external_jump_not_weavable(self):
        body = """
            const r1, 42
            if_ne r0, r1, @s
            goto @elsewhere
        @s:
            return_void
        @elsewhere:
            return_void
        """
        method = method_of(body)
        (qc,) = find_qualified_conditions(method)
        assert body_region(method, qc) is None

    def test_externally_targeted_label_inside_body_not_weavable(self):
        body = """
            goto @inner
            const r1, 42
            if_ne r0, r1, @s
        @inner:
            const r2, 1
        @s:
            return_void
        """
        method = method_of(body)
        qcs = find_qualified_conditions(method)
        assert all(body_region(method, qc) is None for qc in qcs)

    def test_body_with_return_is_weavable(self):
        body = "const r1, 1\nif_ne r0, r1, @s\nreturn r0\n@s:\nreturn_void"
        method = method_of(body)
        (qc,) = find_qualified_conditions(method)
        assert body_region(method, qc) is not None

    def test_switch_case_region_ends_at_break(self):
        body = """
            switch r0, {1 -> @a}
            return_void
        @a:
            const r1, 5
            goto @join
        @join:
            return_void
        """
        method = method_of(body)
        (qc,) = find_qualified_conditions(method)
        region = body_region(method, qc)
        assert region is not None
        assert region.exit_label == "join"

    def test_region_is_weavable_rejects_empty(self):
        method = method_of(DIAMOND)
        assert not region_is_weavable(method, 3, 3, "join")


class TestSlicing:
    def test_slice_contains_data_dependencies(self):
        body = """
            const r1, 10
            add r2, r0, r1
            const r3, 99
            mul r4, r2, r2
            return r4
        """
        method = method_of(body)
        sliced = backward_slice(method, 3)  # the mul
        assert {0, 1, 3} <= sliced
        assert 2 not in sliced  # r3 is irrelevant

    def test_slice_includes_guarding_branch(self):
        body = """
            if_ge r0, r0, @skip
            const r1, 1
        @skip:
            add r2, r1, r1
            return r2
        """
        method = method_of(body)
        sliced = backward_slice(method, 3)
        assert 0 in sliced  # the branch guards the const

    def test_extracted_slice_runs(self):
        body = """
            const r1, 21
            mul_lit r2, r1, 2
            const r3, 7
            return r2
        """
        method = method_of(body, params=0)
        slice_method = extract_slice_method(method, 1)
        dex = DexFile()
        cls = dex.add_class(DexClass(name="A"))
        cls.add_method(method)
        cls.add_method(slice_method)
        runtime = Runtime(dex)
        # The slice still computes the criterion's inputs.
        runtime.invoke(slice_method.qualified_name, [])

    def test_criterion_out_of_range(self):
        with pytest.raises(IndexError):
            backward_slice(method_of("return r0"), 99)


class TestPostdominators:
    def test_exit_postdominates_all_reachable(self):
        cfg = build_cfg(method_of(DIAMOND))
        pdom = postdominators(cfg)
        exit_block = cfg.block_of(len(cfg.method.instructions) - 1).index
        for index in cfg.reachable():
            assert exit_block in pdom[index]

    def test_join_postdominates_both_arms(self):
        cfg = build_cfg(method_of(DIAMOND))
        pdom = postdominators(cfg)
        join = cfg.block_of(cfg.method.resolve("join")).index
        arms = [
            block.index
            for block in cfg.blocks
            if block.index not in (0, join) and block.index in cfg.reachable()
        ]
        assert arms
        for arm in arms:
            assert join in pdom[arm]

    def test_immediate_postdominator_of_branch_is_join(self):
        cfg = build_cfg(method_of(DIAMOND))
        ipdom = immediate_postdominators(cfg)
        join = cfg.block_of(cfg.method.resolve("join")).index
        assert ipdom[0] == join

    def test_exit_has_no_immediate_postdominator(self):
        cfg = build_cfg(method_of(DIAMOND))
        ipdom = immediate_postdominators(cfg)
        exit_block = cfg.block_of(len(cfg.method.instructions) - 1).index
        assert ipdom[exit_block] is None

    def test_diamond_arms_control_dependent_on_branch(self):
        cfg = build_cfg(method_of(DIAMOND))
        cdep = control_dependence(cfg)
        join = cfg.block_of(cfg.method.resolve("join")).index
        arms = {
            block.index
            for block in cfg.blocks
            if block.index not in (0, join) and block.index in cfg.reachable()
        }
        for arm in arms:
            assert cdep[arm] == {0}
        # The join executes regardless of the branch outcome.
        assert cdep[join] == set()
        assert controlled_blocks(cfg, 0) == arms

    def test_loop_header_control_dependent_on_itself(self):
        cfg = build_cfg(method_of(LOOPY))
        cdep = control_dependence(cfg)
        header = cfg.block_of(cfg.method.resolve("loop")).index
        body = cfg.block_of(
            next(pc for pc, i in enumerate(cfg.method.instructions)
                 if i.op.value == "add_lit")
        ).index
        assert header in cdep[body]
        assert header in cdep[header]  # iterating again depends on the test

    def test_single_block_method_trivial(self):
        cfg = build_cfg(method_of("const r1, 5\nreturn r1"))
        assert len(cfg.blocks) == 1
        assert postdominators(cfg)[0] == {0}
        assert immediate_postdominators(cfg)[0] is None
        assert control_dependence(cfg)[0] == set()

    def test_unreachable_block_is_its_own_postdominator_set(self):
        method = method_of("goto @end\nconst r1, 1\n@end:\nreturn_void")
        cfg = build_cfg(method)
        dead = cfg.block_of(1).index
        assert dead not in cfg.reachable()
        assert postdominators(cfg)[dead] == {dead}
        assert control_dependence(cfg)[dead] == set()


class TestCfgEdgeCases:
    def test_unreachable_after_goto(self):
        method = method_of("goto @end\nconst r1, 1\nconst r2, 2\n@end:\nreturn_void")
        cfg = build_cfg(method)
        reachable = cfg.reachable()
        dead = cfg.block_of(1)
        assert dead.index not in reachable
        # Entry still reaches the goto target.
        assert cfg.block_of(method.resolve("end")).index in reachable

    def test_single_block_method(self):
        cfg = build_cfg(method_of("const r1, 5\nreturn r1"))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []
        assert cfg.reachable() == {0}
        assert list(cfg.blocks[0].pcs()) == [0, 1]

    def test_loop_with_multiple_back_edges(self):
        body = """
        @loop:
            if_ge r0, r0, @exit
            if_ge r0, r0, @loop
            goto @loop
        @exit:
            return_void
        """
        method = method_of(body)
        cfg = build_cfg(method)
        header = cfg.block_of(method.resolve("loop")).index
        back_edges = [(u, v) for u, v in cfg.edges() if v == header]
        assert len(back_edges) == 2
        loops = natural_loops(cfg)
        assert loops
        assert all(loop_header == header and header in body
                   for loop_header, body in loops)

    def test_conditional_branch_at_last_pc_has_no_fallthrough_edge(self):
        # Trailing IF with no instruction after it: the only CFG edge is
        # the taken branch; the verifier flags the missing fall-through
        # as fall-off-end (cross-checked in test_analysis_verifier).
        method = method_of("@top:\nconst r1, 1\nif_eqz r1, @top")
        cfg = build_cfg(method)
        last = cfg.block_of(len(method.instructions) - 1)
        top = cfg.block_of(method.resolve("top")).index
        assert last.successors == [top]


class TestVerifierCfgReachabilityAgreement:
    """cfg.reachable() and the verifier's dataflow must agree on which
    instructions are dead -- the detector trusts the CFG, strict mode
    trusts the verifier, and they must not diverge."""

    BODIES = [
        DIAMOND,
        LOOPY,
        "goto @end\nconst r1, 1\nconst r2, 2\n@end:\nreturn_void",
        "return r0\nconst r1, 1\nreturn r1",
        "const r1, 5\nreturn r1",
        "switch r0, {1 -> @a, 2 -> @b}\nreturn_void\n@a:\nreturn_void\n@b:\nreturn_void",
        "@loop:\nif_ge r0, r0, @done\nadd_lit r0, r0, 1\ngoto @loop\n@done:\nreturn_void",
    ]

    @pytest.mark.parametrize("body", BODIES)
    def test_unreachable_sets_agree(self, body):
        from repro.analysis.verifier import verify_method
        from repro.dex.opcodes import Op

        method = method_of(body)
        cfg = build_cfg(method)
        reachable_blocks = cfg.reachable()
        cfg_dead = {
            pc
            for block in cfg.blocks
            if block.index not in reachable_blocks
            for pc in block.pcs()
            if method.instructions[pc].op not in (Op.LABEL, Op.NOP)
        }
        verifier_dead = set()
        for diag in verify_method(method):
            if diag.rule == "unreachable-code" and diag.span:
                verifier_dead.update(range(diag.span[0], diag.span[1]))
        assert cfg_dead == verifier_dead
