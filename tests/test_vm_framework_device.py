"""Framework API surface, device model, events."""

import pytest

from repro.apk import Resources, build_apk
from repro.crypto import RSAKeyPair, Salt, derive_key, hash_constant, sha1_hex
from repro.dex import assemble, DexClass, DexFile, assemble_method
from repro.errors import VMCrash
from repro.vm import Runtime
from repro.vm.device import (
    ChoiceDomain,
    DevicePopulation,
    ENV_DOMAINS,
    IntDomain,
    attacker_lab_profiles,
)
from repro.vm.events import ARITY, Event, EventKind, declared_events, random_args
import random


def fresh_runtime(body: str, params: int = 0, package=None, device=None):
    dex = DexFile()
    cls = dex.add_class(DexClass(name="T"))
    cls.add_method(assemble_method(body, class_name="T", name="m", params=params))
    return Runtime(dex, package=package, device=device)


class TestStringApis:
    @pytest.mark.parametrize(
        "call,args,expected",
        [
            ("java.str.equals", ["abc", "abc"], True),
            ("java.str.equals", ["abc", "abd"], False),
            ("java.str.equals", [5, "5"], False),
            ("java.str.starts_with", ["hello", "he"], True),
            ("java.str.ends_with", ["hello", "lo"], True),
            ("java.str.contains", ["hello", "ell"], True),
            ("java.str.length", ["four"], 4),
            ("java.str.concat", ["ab", "cd"], "abcd"),
            ("java.str.substring", ["hello", 1, 3], "el"),
            ("java.str.char_at", ["A", 0], 65),
            ("java.str.index_of", ["hello", "ll"], 2),
            ("java.str.from_int", [42], "42"),
            ("java.str.to_int", ["42"], 42),
            ("java.math.abs", [-9], 9),
            ("java.math.min", [3, 5], 3),
            ("java.math.max", [3, 5], 5),
        ],
    )
    def test_library_calls(self, call, args, expected):
        runtime = fresh_runtime("return_void")
        assert runtime.framework.call(call, list(args), [10_000]) == expected

    def test_java_hash_code_matches_java(self):
        runtime = fresh_runtime("return_void")
        # Java's String.hashCode("hello") == 99162322.
        assert runtime.framework.call("java.str.hash_code", ["hello"], [1000]) == 99162322

    def test_substring_bounds(self):
        runtime = fresh_runtime("return_void")
        with pytest.raises(VMCrash):
            runtime.framework.call("java.str.substring", ["abc", 2, 9], [1000])

    def test_to_int_crashes_on_garbage(self):
        runtime = fresh_runtime("return_void")
        with pytest.raises(VMCrash):
            runtime.framework.call("java.str.to_int", ["nope"], [1000])


class TestBombHelpers:
    def test_hash_matches_kdf(self):
        runtime = fresh_runtime("return_void")
        salt = Salt.from_seed(4)
        expected = hash_constant(42, salt).hex()
        got = runtime.framework.call("bomb.hash", [42, salt.value.hex(), "b1"], [1000])
        assert got == expected
        assert runtime.bombs.counts["b1"]["evaluated"] == 1

    def test_hash_of_unencodable_returns_sentinel(self):
        runtime = fresh_runtime("return_void")
        got = runtime.framework.call("bomb.hash", [None, "00" * 12, "b1"], [1000])
        assert got == "00" * 20

    def test_derive_matches_kdf(self):
        runtime = fresh_runtime("return_void")
        salt = Salt.from_seed(4)
        got = runtime.framework.call("bomb.derive", ["x", salt.value.hex()], [1000])
        assert got == derive_key("x", salt)

    def test_decrypt_roundtrip_and_stat(self):
        from repro.crypto import AES128

        runtime = fresh_runtime("return_void")
        key = bytes(16)
        blob = AES128(key).encrypt_cbc(b"payload", b"\x00" * 16)
        got = runtime.framework.call("bomb.decrypt", [blob, key, "b9"], [1000])
        assert got == b"payload"
        assert "b9" in runtime.bombs.bombs_with("outer_satisfied")

    def test_decrypt_wrong_key_crashes(self):
        from repro.crypto import AES128

        runtime = fresh_runtime("return_void")
        blob = AES128(bytes(16)).encrypt_cbc(b"payload", b"\x00" * 16)
        with pytest.raises(VMCrash, match="decryption failed"):
            runtime.framework.call("bomb.decrypt", [blob, bytes([1]) * 16, "b9"], [1000])

    def test_sha1_hex_call(self):
        runtime = fresh_runtime("return_void")
        assert runtime.framework.call("bomb.sha1_hex", [b"abc"], [1000]) == sha1_hex(b"abc")

    def test_method_hash_detects_modification(self):
        from repro.dex.hashing import method_instruction_hash
        from repro.dex import instructions as ins

        runtime = fresh_runtime("const r0, 1\nreturn r0")
        method = runtime.find_method("T.m")
        before = runtime.framework.call("android.pm.get_method_hash", ["T.m"], [1000])
        assert before == method_instruction_hash(method)
        method.instructions[0] = ins.const(0, 2)
        method.invalidate()
        after = runtime.framework.call("android.pm.get_method_hash", ["T.m"], [1000])
        assert after != before


class TestPackageApis:
    def test_require_install(self):
        runtime = fresh_runtime("return_void")
        with pytest.raises(VMCrash, match="not installed"):
            runtime.framework.call("android.pm.get_public_key", [], [1000])

    def test_installed_surface(self):
        dex = assemble(".class A\n.method m 0\nreturn_void\n.end")
        key = RSAKeyPair.generate(seed=2)
        apk = build_apk(dex, Resources(strings={"s": "v"}), key)
        runtime = Runtime(dex, package=apk.install_view())
        budget = [10_000]
        assert runtime.framework.call("android.pm.get_public_key", [], budget) == (
            key.public.fingerprint().hex()
        )
        digest = runtime.framework.call(
            "android.pm.get_manifest_digest", ["classes.dex"], budget
        )
        assert digest == apk.manifest.get("classes.dex")
        assert runtime.framework.call("android.res.get_string", ["s"], budget) == "v"
        with pytest.raises(VMCrash):
            runtime.framework.call("android.res.get_string", ["missing"], budget)

    def test_reflection_logged(self):
        runtime = fresh_runtime("return_void")
        runtime.framework.call("android.reflect.call", ["java.str.length", "abcd"], [1000])
        assert runtime.reflection_log == ["java.str.length"]

    def test_effects_recorded(self):
        runtime = fresh_runtime("return_void")
        budget = [1000]
        runtime.framework.call("android.log.i", ["msg"], budget)
        runtime.framework.call("android.ui.alert", ["warn!"], budget)
        runtime.framework.call("android.net.report", ["report"], budget)
        assert runtime.logs == ["msg"]
        assert runtime.ui_effects == [("alert", "warn!")]
        assert runtime.reports == ["report"]


class TestDeviceModel:
    def test_population_is_diverse(self):
        population = DevicePopulation(seed=1)
        manufacturers = {population.sample().get("build.manufacturer") for _ in range(60)}
        assert len(manufacturers) >= 4

    def test_attacker_lab_is_uniform(self):
        profiles = attacker_lab_profiles(4)
        assert {p.get("build.manufacturer") for p in profiles} == {"generic"}
        assert {p.get("net.ip_d") for p in profiles} == {15}  # emulator NAT

    def test_time_variables_derive_from_clock(self):
        device = attacker_lab_profiles(1)[0]
        device.clock = 3 * 3600 + 25 * 60
        assert device.get("time.hour") == 3
        assert device.get("time.minute") == 25

    def test_unknown_env_crashes(self):
        device = attacker_lab_profiles(1)[0]
        with pytest.raises(VMCrash):
            device.get("no.such.var")

    def test_mutate_rejects_derived_time(self):
        device = attacker_lab_profiles(1)[0]
        with pytest.raises(VMCrash):
            device.mutate("time.hour", 5)

    def test_domains_sample_within_bounds(self):
        rng = random.Random(0)
        for name, domain in ENV_DOMAINS.items():
            value = domain.sample(rng)
            if isinstance(domain, IntDomain):
                assert domain.lo <= value <= domain.hi, name
            else:
                assert value in [v for v, _ in domain.choices], name

    def test_choice_probability(self):
        domain = ChoiceDomain((("a", 1.0), ("b", 3.0)))
        assert domain.probability_of(lambda v: v == "b") == pytest.approx(0.75)


class TestEvents:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Event(EventKind.TOUCH, "A", (1,))

    def test_random_args_match_arity(self):
        rng = random.Random(0)
        for kind in EventKind:
            assert len(random_args(kind, rng)) == ARITY[kind]

    def test_declared_events(self):
        dex = assemble(
            ".class A\n.method on_touch 2\nreturn_void\n.end\n"
            ".class B\n.method on_key 1\nreturn_void\n.end"
        )
        assert declared_events(dex) == [
            (EventKind.TOUCH, "A"),
            (EventKind.KEY, "B"),
        ]

    def test_dispatch_advances_clock(self):
        dex = assemble(".class A\n.method on_back 0\nreturn_void\n.end")
        runtime = Runtime(dex)
        before = runtime.device.clock
        runtime.dispatch(Event(EventKind.BACK, "A"))
        assert runtime.device.clock > before
