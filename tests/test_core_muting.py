"""Strategic bomb muting (the paper's Section 10 future work).

Once one bomb detects repackaging, the shared flag silences detection
in every later payload run -- an attacker probing their repackaged
build maps one bomb, not the minefield.
"""

import pytest

from repro.apk import Resources, build_apk
from repro.core import BombDroid, BombDroidConfig
from repro.core.config import DetectionMethod, ResponseKind
from repro.core.payloads import DetectionSpec, PayloadSpec, build_payload_dex
from repro.crypto import RSAKeyPair
from repro.dex import assemble
from repro.dex.serializer import serialize_dex
from repro.vm import Runtime

APP = """
.class A
.field cfg_cache static false
.method on_key 1
    return_void
.end
"""


@pytest.fixture()
def runtime():
    dex = assemble(APP)
    key = RSAKeyPair.generate(seed=31)
    apk = build_apk(dex, Resources(strings={"app_name": "A"}), key)
    return Runtime(apk.dex(), package=apk.install_view(), seed=0)


def _run_bomb(runtime, bomb_id, mute_flag):
    spec = PayloadSpec(
        bomb_id=bomb_id,
        payload_class=f"Bomb${bomb_id}",
        slots=0,
        app_name="A",
        detection=DetectionSpec(
            method=DetectionMethod.PUBLIC_KEY, original_key_hex="99" * 20
        ),
        response=ResponseKind.REPORT,
        mute_flag=mute_flag,
    )
    blob = serialize_dex(build_payload_dex(spec))
    method = runtime.load_blob_method(blob, spec.entry)
    runtime.session().run(method, [[None, None]])


def test_first_detection_mutes_the_rest(runtime):
    _run_bomb(runtime, "m1", "A.cfg_cache")
    assert runtime.detections == ["m1"]
    assert runtime.statics["A.cfg_cache"] is True

    _run_bomb(runtime, "m2", "A.cfg_cache")
    assert runtime.detections == ["m1"]          # m2 stayed silent
    assert "m2" not in runtime.bombs.bombs_with("inner_met")


def test_without_flag_every_bomb_speaks(runtime):
    _run_bomb(runtime, "m1", None)
    _run_bomb(runtime, "m2", None)
    assert runtime.detections == ["m1", "m2"]


def test_pipeline_installs_disguised_flag(small_apk, developer_key):
    config = BombDroidConfig(
        seed=3, profiling_events=200, mute_after_detection=True
    )
    protected, report = BombDroid(config).protect(small_apk, developer_key)
    holder = sorted(protected.dex().classes)[0]
    assert "cfg_cache" in protected.dex().classes[holder].fields
    # Genuine app still behaves (no detections, flag never set).
    runtime = Runtime(protected.dex(), package=protected.install_view(), seed=1)
    runtime.boot()
    from repro.fuzzing import DynodroidGenerator
    from repro.errors import VMError

    for event in DynodroidGenerator(protected.dex(), seed=1).stream(300):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    assert not runtime.detections
    assert runtime.statics[f"{holder}.cfg_cache"] is False
