"""RSA signing (app-identity backbone) and the salted trigger KDF."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    RSAKeyPair,
    RSAPublicKey,
    Salt,
    derive_key,
    encode_value,
    hash_constant,
    is_probable_prime,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return RSAKeyPair.generate(bits=512, seed=42)


def test_sign_verify_roundtrip(keypair):
    signature = keypair.sign(b"manifest contents")
    assert keypair.public.verify(b"manifest contents", signature)


def test_verify_rejects_tampered_message(keypair):
    signature = keypair.sign(b"manifest contents")
    assert not keypair.public.verify(b"manifest contents!", signature)


def test_verify_rejects_foreign_signature(keypair):
    other = RSAKeyPair.generate(bits=512, seed=43)
    signature = other.sign(b"manifest contents")
    assert not keypair.public.verify(b"manifest contents", signature)


def test_verify_rejects_out_of_range_signature(keypair):
    assert not keypair.public.verify(b"m", 0)
    assert not keypair.public.verify(b"m", keypair.public.n + 5)


def test_distinct_developers_have_distinct_fingerprints():
    a = RSAKeyPair.generate(seed=1).public.fingerprint()
    b = RSAKeyPair.generate(seed=2).public.fingerprint()
    assert a != b
    assert len(a) == 20


def test_public_key_serialization_roundtrip(keypair):
    blob = keypair.public.to_bytes()
    restored = RSAPublicKey.from_bytes(blob)
    assert restored == keypair.public


def test_public_key_rejects_malformed_blob():
    with pytest.raises(CryptoError):
        RSAPublicKey.from_bytes(b"\x00\x04abc")


def test_deterministic_generation():
    assert RSAKeyPair.generate(seed=7).public == RSAKeyPair.generate(seed=7).public


@pytest.mark.parametrize("prime", [2, 3, 5, 7, 101, 65537, 2**31 - 1])
def test_known_primes(prime):
    assert is_probable_prime(prime)


@pytest.mark.parametrize("composite", [0, 1, 4, 9, 561, 65536, 2**31])
def test_known_composites(composite):
    assert not is_probable_prime(composite)


# ---------------------------------------------------------------------------
# KDF / trigger-constant hashing
# ---------------------------------------------------------------------------


def test_key_is_128_bits():
    assert len(derive_key(42, Salt.from_seed(1))) == 16


def test_same_constant_different_salts_differ():
    # Salting defeats rainbow tables (Section 5.1).
    a = hash_constant("secret", Salt.from_seed(1))
    b = hash_constant("secret", Salt.from_seed(2))
    assert a != b


def test_salt_from_seed_is_deterministic():
    assert Salt.from_seed(9) == Salt.from_seed(9)


@given(st.one_of(st.integers(min_value=-(2**31), max_value=2**31 - 1), st.text(max_size=30)))
def test_kdf_deterministic(value):
    salt = Salt.from_seed(3)
    assert derive_key(value, salt) == derive_key(value, salt)


def test_encode_distinguishes_int_from_string():
    assert encode_value(1) != encode_value("1")


def test_encode_bool_matches_int():
    # The VM's equality treats True == 1; the hash check must agree
    # (otherwise transformation would change semantics).
    assert encode_value(True) == encode_value(1)
    assert encode_value(False) == encode_value(0)


def test_encode_rejects_unencodable():
    with pytest.raises(TypeError):
        encode_value([1, 2, 3])


@given(
    st.one_of(st.integers(min_value=-(2**40), max_value=2**40), st.text(max_size=20)),
    st.one_of(st.integers(min_value=-(2**40), max_value=2**40), st.text(max_size=20)),
)
def test_hash_constant_injective_on_distinct_values(a, b):
    salt = Salt.from_seed(5)
    if a == b or (isinstance(a, bool) != isinstance(b, bool) and a == b):
        return
    if type(a) is type(b) and a == b:
        return
    assert (hash_constant(a, salt) == hash_constant(b, salt)) == (
        encode_value(a) == encode_value(b)
    )
