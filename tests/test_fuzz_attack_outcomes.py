"""FuzzingAttack bookkeeping: rates, curves, harvesting across restarts."""

import pytest

from repro.attacks import FuzzingAttack
from repro.attacks.fuzzing import FuzzAttackOutcome


@pytest.fixture(scope="module")
def outcome(protected_apk, protection_report):
    attack = FuzzingAttack(duration_seconds=300.0, seed=77)
    bomb_ids = [bomb.bomb_id for bomb in protection_report.real_bombs()]
    return attack.run_one(protected_apk, "dynodroid", bomb_ids), bomb_ids


class TestOutcome:
    def test_rates_bounded(self, outcome):
        result, bomb_ids = outcome
        assert 0.0 <= result.fully_triggered_rate <= result.outer_satisfied_rate <= 1.0
        assert result.total_bombs == len(bomb_ids)

    def test_curve_monotonic(self, outcome):
        result, _ = outcome
        counts = [count for _, count in result.trigger_curve]
        assert counts == sorted(counts)

    def test_events_played_positive(self, outcome):
        result, _ = outcome
        assert result.events_played > 100

    def test_attack_result_wrapper(self, outcome):
        result, _ = outcome
        attack = FuzzingAttack(duration_seconds=60.0, seed=77)
        wrapped = attack.as_attack_result(result)
        assert "outer conditions satisfied" in wrapped.notes
        assert wrapped.details["outer_satisfied_rate"] == result.outer_satisfied_rate


def test_run_all_covers_every_fuzzer(protected_apk, protection_report):
    attack = FuzzingAttack(duration_seconds=60.0, seed=78)
    bomb_ids = [bomb.bomb_id for bomb in protection_report.real_bombs()]
    outcomes = attack.run_all(protected_apk, bomb_ids)
    assert set(outcomes) == {"monkey", "puma", "androidhooker", "dynodroid"}
    assert all(isinstance(o, FuzzAttackOutcome) for o in outcomes.values())
