"""SHA-1 against the hashlib oracle plus structural properties."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto import Sha1, sha1, sha1_hex


KNOWN_VECTORS = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"2", "da4b9237bacccdf19c0760cab7aec4a8359010b0"),  # the paper's example digest
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS)
def test_known_vectors(message, expected):
    assert sha1_hex(message) == expected


def test_paper_example_is_sha1_of_two():
    # Section 3.2's obfuscated condition uses exactly sha1("2").
    assert sha1_hex(b"2") == "da4b9237bacccdf19c0760cab7aec4a8359010b0"


@given(st.binary(max_size=2048))
def test_matches_hashlib(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@given(st.binary(max_size=300), st.binary(max_size=300))
def test_incremental_equals_oneshot(a, b):
    incremental = Sha1()
    incremental.update(a)
    incremental.update(b)
    assert incremental.digest() == sha1(a + b)


@given(st.binary(min_size=60, max_size=70))
def test_block_boundary_sizes(data):
    # Straddles the 64-byte block boundary where padding bugs live.
    assert sha1(data) == hashlib.sha1(data).digest()


def test_digest_does_not_consume_state():
    h = Sha1(b"hello")
    first = h.digest()
    assert h.digest() == first
    h.update(b" world")
    assert h.digest() == sha1(b"hello world")


def test_copy_is_independent():
    h = Sha1(b"abc")
    clone = h.copy()
    clone.update(b"def")
    assert h.digest() == sha1(b"abc")
    assert clone.digest() == sha1(b"abcdef")


def test_update_rejects_non_bytes():
    with pytest.raises(TypeError):
        Sha1().update("text")


def test_update_returns_self_for_chaining():
    assert Sha1().update(b"a").update(b"b").digest() == sha1(b"ab")
