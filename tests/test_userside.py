"""User-side simulation and aggregation."""

import pytest

from repro.userside import (
    AggregatedVerdict,
    DetectionAggregator,
    FirstTriggerStats,
    PlaySession,
    simulate_first_triggers,
)
from repro.vm import DevicePopulation, Runtime


class TestFirstTrigger:
    def test_pirated_app_triggers_quickly(self, pirated_apk):
        stats = simulate_first_triggers(
            pirated_apk, "Game", runs=6, timeout_seconds=1800, population_seed=3
        )
        assert stats.runs == 6
        assert len(stats.times) >= 4          # most users trigger a bomb
        assert stats.min_time < 600           # within minutes

    def test_stats_accessors(self):
        stats = FirstTriggerStats(app="X", times=[5.0, 15.0], failures=1)
        assert stats.min_time == 5.0
        assert stats.max_time == 15.0
        assert stats.avg_time == 10.0
        assert stats.success_ratio == "2/3"

    def test_session_restart_preserves_history(self, pirated_apk):
        device = DevicePopulation(seed=5).sample()
        session = PlaySession(pirated_apk, device, seed=5)
        session.runtime.bombs.record("fake", "inner_met")
        session._restart(clock=0.0)
        assert "fake" in session.runtime.bombs.bombs_with("inner_met")


class TestAggregation:
    def _aggregator(self):
        return DetectionAggregator(
            app_name="Game", original_key_hex="aa" * 20, report_threshold=3
        )

    def test_clean_when_no_reports(self):
        verdict, key = self._aggregator().verdict()
        assert verdict is AggregatedVerdict.CLEAN

    def test_reports_of_original_key_ignored(self):
        agg = self._aggregator()
        agg.ingest_report(f"repackaged:Game:b001:key={'aa' * 20}")
        assert agg.verdict()[0] is AggregatedVerdict.CLEAN

    def test_suspect_below_threshold(self):
        agg = self._aggregator()
        agg.ingest_report(f"repackaged:Game:b001:key={'bb' * 20}")
        verdict, key = agg.verdict()
        assert verdict is AggregatedVerdict.SUSPECT
        assert key == "bb" * 20

    def test_takedown_at_threshold(self):
        agg = self._aggregator()
        for _ in range(3):
            agg.ingest_report(f"repackaged:Game:b001:key={'bb' * 20}")
        verdict, key = agg.verdict()
        assert verdict is AggregatedVerdict.TAKEDOWN
        assert key == "bb" * 20

    def test_majority_key_wins(self):
        agg = self._aggregator()
        agg.ingest_report(f"r:key={'cc' * 20}")
        for _ in range(4):
            agg.ingest_report(f"r:key={'bb' * 20}")
        assert agg.verdict()[1] == "bb" * 20

    def test_tie_breaks_on_key_not_insertion_order(self):
        # Equal counts: the lexicographically greatest fingerprint wins,
        # whichever order the reports arrived in.
        for first, second in (("bb" * 20, "cc" * 20), ("cc" * 20, "bb" * 20)):
            agg = self._aggregator()
            agg.ingest_report(f"r:key={first}")
            agg.ingest_report(f"r:key={second}")
            assert agg.verdict()[1] == "cc" * 20

    def test_free_text_mentioning_key_equals_not_derailed(self):
        # The old rsplit("key=", 1) would have extracted "deadbeef and"
        # from this and missed the real fingerprint entirely.
        agg = self._aggregator()
        agg.ingest_report(
            f"user note: my api key=deadbeef and then key={'bb' * 20} showed up"
        )
        verdict, key = agg.verdict()
        assert verdict is AggregatedVerdict.SUSPECT
        assert key == "bb" * 20

    def test_free_text_without_fingerprint_is_noise(self):
        agg = self._aggregator()
        agg.ingest_report("crash log: cache key=beef expired")
        assert agg.verdict()[0] is AggregatedVerdict.CLEAN

    def test_structured_wire_prefix_parses(self):
        agg = self._aggregator()
        for i in range(3):
            agg.ingest_report(f"repackaged:v1:app=Game:bomb=b{i}:key={'dd' * 20}")
        assert agg.verdict() == (AggregatedVerdict.TAKEDOWN, "dd" * 20)

    def test_ratings_drop_with_bad_experience(self, pirated_apk):
        agg = self._aggregator()
        runtime = Runtime(
            pirated_apk.dex(),
            package=pirated_apk.install_view(),
            seed=1,
        )
        runtime.detections.append("b001")  # a session that hit a bomb
        agg.ingest_session(runtime)
        clean_runtime = Runtime(
            pirated_apk.dex(), package=pirated_apk.install_view(), seed=2
        )
        agg.ingest_session(clean_runtime)
        assert agg.ratings == [1, 5]
        assert agg.average_rating == 3.0

    def test_end_to_end_aggregation(self, pirated_apk, attacker_key, developer_key):
        """Diverse users play the pirated app; REPORT responses flow to
        the developer, who reaches a takedown verdict naming the
        attacker's key."""
        from repro.errors import VMError
        from repro.fuzzing import DynodroidGenerator

        agg = DetectionAggregator(
            app_name="Game",
            original_key_hex=developer_key.public.fingerprint().hex(),
            report_threshold=2,
        )
        population = DevicePopulation(seed=9)
        any_detection = False
        for index in range(10):
            runtime = Runtime(
                pirated_apk.dex(),
                device=population.sample(),
                package=pirated_apk.install_view(),
                seed=index,
            )
            try:
                runtime.boot()
            except VMError:
                pass
            for event in DynodroidGenerator(pirated_apk.dex(), seed=index).stream(400):
                try:
                    runtime.dispatch(event)
                except VMError:
                    pass
            any_detection = any_detection or bool(runtime.detections)
            agg.ingest_session(runtime)
        verdict, key = agg.verdict()
        if verdict is not AggregatedVerdict.CLEAN:
            # Reports can only ever name the attacker's key.
            assert key == attacker_key.public.fingerprint().hex()
        if any_detection:
            assert agg.average_rating < 5.0
