"""Live-variable analysis and region packing."""

import pytest

from repro.analysis.liveness import (
    instruction_successors,
    live_registers_for_region,
    liveness,
)
from repro.dex import assemble_method


def method_of(body: str, params: int = 1):
    return assemble_method(body, class_name="A", name="m", params=params)


class TestLiveness:
    def test_straightline(self):
        method = method_of(
            "const r1, 5\nadd r2, r0, r1\nreturn r2"
        )
        live_in, live_out = liveness(method)
        assert live_in[0] == {0}          # r0 (param) needed, r1 defined here
        assert live_in[1] == {0, 1}
        assert live_out[2] == set()       # nothing lives past return

    def test_dead_code_has_no_liveness(self):
        method = method_of("const r1, 5\nconst r2, 6\nreturn r1")
        live_in, _ = liveness(method)
        assert 2 not in live_in[2]        # r2 never read

    def test_branch_merges_liveness(self):
        method = method_of(
            """
            if_ge r0, r0, @b
            add_lit r1, r0, 1
            return r1
        @b:
            add_lit r2, r0, 2
            return r2
            """
        )
        live_in, _ = liveness(method)
        assert live_in[0] == {0}

    def test_loop_liveness_converges(self):
        method = method_of(
            """
            const r1, 0
        @loop:
            if_ge r1, r0, @done
            add_lit r1, r1, 1
            goto @loop
        @done:
            return r1
            """
        )
        live_in, _ = liveness(method)
        # Inside the loop both the bound (r0) and counter (r1) live.
        loop_pc = method.resolve("loop")
        assert {0, 1} <= live_in[loop_pc + 1]

    def test_successors_of_switch(self):
        method = method_of(
            "switch r0, {1 -> @a}\nreturn_void\n@a:\nreturn_void"
        )
        successors = instruction_successors(method)
        assert set(successors[0]) == {method.resolve("a"), 1}

    def test_switch_fans_out_to_every_case(self):
        # A three-way switch has four successors: each case label plus
        # the fall-through default.
        method = method_of(
            """
            switch r0, {1 -> @a, 2 -> @b, 3 -> @c}
            return_void
        @a:
            return_void
        @b:
            return_void
        @c:
            return_void
            """
        )
        successors = instruction_successors(method)
        expected = {method.resolve(name) for name in ("a", "b", "c")} | {1}
        assert set(successors[0]) == expected

    def test_switch_merges_liveness_from_all_cases(self):
        # Each case reads a different register; all of them (plus the
        # scrutinee) must be live into the switch.
        method = method_of(
            """
            switch r0, {1 -> @a, 2 -> @b}
            return_void
        @a:
            return r1
        @b:
            return r2
            """,
            params=3,
        )
        live_in, _ = liveness(method)
        assert live_in[0] == {0, 1, 2}

    def test_return_keeps_only_returned_register_live(self):
        method = method_of("add r2, r0, r1\nreturn r2", params=2)
        live_in, live_out = liveness(method)
        assert live_in[1] == {2}
        assert live_out[1] == set()

    def test_return_void_kills_everything(self):
        method = method_of("add r2, r0, r1\nreturn_void", params=2)
        live_in, live_out = liveness(method)
        assert live_in[1] == set()
        assert live_out[1] == set()


class TestRegionPacking:
    def test_temporary_excluded(self):
        # Body: r2 is a pure temporary (defined and consumed inside);
        # r3 carries a value out (read after the join).
        method = method_of(
            """
            const r1, 42
            if_ne r0, r1, @skip
            add_lit r2, r0, 1
            mul_lit r3, r2, 2
        @skip:
            return r3
            """
        )
        start = 2   # add_lit
        end = 4     # @skip label
        live = live_registers_for_region(method, start, end)
        assert 3 in live      # flows out
        assert 0 in live      # flows in
        assert 2 not in live  # internal temporary

    def test_read_only_input_included(self):
        method = method_of(
            """
            const r1, 7
            if_ne r0, r1, @skip
            add r2, r0, r0
            sput r2, A.x
        @skip:
            return_void
            """
        )
        # Need a static field for sput: rebuild with a class context.
        from repro.dex import assemble

        dex = assemble(
            ".class A\n.field x static 0\n.method m 1\n"
            "const r1, 7\nif_ne r0, r1, @skip\nadd r2, r0, r0\n"
            "sput r2, A.x\n@skip:\nreturn_void\n.end"
        )
        method = dex.get_method("A.m")
        live = live_registers_for_region(method, 2, 4)
        assert 0 in live
        assert 2 not in live  # written and consumed inside

    def test_region_ending_in_unconditional_exit(self):
        # A woven region whose last instruction is a RETURN never
        # reaches the join, so only the returned register (not every
        # register the region writes) must travel out.
        method = method_of(
            """
            const r1, 3
            if_ne r0, r1, @skip
            add_lit r2, r0, 1
            add_lit r3, r0, 2
            return r2
        @skip:
            return_void
            """
        )
        live = live_registers_for_region(method, 2, 5)
        assert 0 in live      # read by the region
        assert 2 not in live  # consumed by the region's own return
        assert 3 not in live  # dead in every direction

    def test_region_ending_in_goto_uses_target_liveness(self):
        # The region exits through a GOTO; what's live at the *target*
        # decides what must be packed, not what follows textually.
        method = method_of(
            """
            const r1, 3
            if_ne r0, r1, @skip
            add_lit r2, r0, 1
            goto @tail
        @skip:
            const r2, 0
        @tail:
            return r2
            """
        )
        live = live_registers_for_region(method, 2, 4)
        assert 2 in live      # flows out through the goto to @tail

    def test_packed_bomb_still_preserves_semantics(self):
        """End-to-end: a woven bomb whose body has internal temporaries
        must round-trip values correctly through the smaller array."""
        import random

        from repro.analysis.qualified_conditions import find_qualified_conditions
        from repro.analysis.regions import body_region
        from repro.apk import Resources, build_apk
        from repro.core.config import BombDroidConfig
        from repro.core.instrumenter import Instrumenter
        from repro.crypto import RSAKeyPair
        from repro.dex import assemble
        from repro.vm import Runtime

        source = (
            ".class A\n.field x static 0\n.method m 1\n"
            "const r1, 9\nif_ne r0, r1, @skip\n"
            "add_lit r2, r0, 5\nmul_lit r3, r2, 3\nsput r3, A.x\n"
            "@skip:\nsget r4, A.x\nreturn r4\n.end"
        )
        key = RSAKeyPair.generate(seed=88)

        def outcome(transform):
            dex = assemble(source)
            if transform:
                method = dex.get_method("A.m")
                (qc,) = find_qualified_conditions(method)
                region = body_region(method, qc)
                instrumenter = Instrumenter(
                    dex, BombDroidConfig(seed=1), random.Random(1), "A",
                    key.public.fingerprint().hex(),
                )
                instrumenter.transform_weavable(method, qc, region, None)
            apk = build_apk(dex, Resources(strings={"app_name": "A"}), key)
            runtime = Runtime(dex, package=apk.install_view(), seed=1)
            return [runtime.invoke("A.m", [value]) for value in (9, 4, 9)]

        assert outcome(False) == outcome(True) == [42, 42, 42]
