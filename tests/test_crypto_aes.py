"""AES-128 block cipher, modes, and padding behavior."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import AES128, pkcs7_pad, pkcs7_unpad
from repro.errors import BadPaddingError, CryptoError


FIPS_KEY = bytes(range(16))
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


def test_fips197_appendix_c_vector():
    assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAINTEXT) == FIPS_CIPHERTEXT


def test_fips197_decrypt_vector():
    assert AES128(FIPS_KEY).decrypt_block(FIPS_CIPHERTEXT) == FIPS_PLAINTEXT


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_block_roundtrip(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_key_size_enforced():
    with pytest.raises(CryptoError):
        AES128(b"short")


def test_block_size_enforced():
    with pytest.raises(CryptoError):
        AES128(FIPS_KEY).encrypt_block(b"tiny")


@given(st.binary(max_size=400), st.binary(min_size=16, max_size=16))
def test_cbc_roundtrip(plaintext, iv):
    cipher = AES128(FIPS_KEY)
    assert cipher.decrypt_cbc(cipher.encrypt_cbc(plaintext, iv), iv) == plaintext


def test_cbc_wrong_key_fails_padding():
    """The property forced-execution attacks observe: wrong key -> error.

    (Probabilistically a wrong key could produce valid padding, but not
    for a fixed test vector.)
    """
    cipher = AES128(FIPS_KEY)
    ciphertext = cipher.encrypt_cbc(b"payload bytecode here", b"\x00" * 16)
    wrong = AES128(bytes(reversed(FIPS_KEY)))
    with pytest.raises((BadPaddingError, CryptoError)):
        wrong.decrypt_cbc(ciphertext, b"\x00" * 16)


def test_cbc_ciphertext_differs_from_plaintext():
    cipher = AES128(FIPS_KEY)
    plaintext = b"A" * 64
    ciphertext = cipher.encrypt_cbc(plaintext, b"\x01" * 16)
    assert plaintext not in ciphertext


def test_cbc_identical_blocks_encrypt_differently():
    # CBC chaining: repeated plaintext blocks must not repeat in the
    # ciphertext (ECB would leak structure of the payload bytecode).
    cipher = AES128(FIPS_KEY)
    ciphertext = cipher.encrypt_cbc(b"B" * 32, b"\x00" * 16)
    assert ciphertext[:16] != ciphertext[16:32]


def test_cbc_rejects_bad_iv_and_ciphertext():
    cipher = AES128(FIPS_KEY)
    with pytest.raises(CryptoError):
        cipher.encrypt_cbc(b"x", b"shortiv")
    with pytest.raises(CryptoError):
        cipher.decrypt_cbc(b"123", b"\x00" * 16)
    with pytest.raises(CryptoError):
        cipher.decrypt_cbc(b"", b"\x00" * 16)


@given(st.binary(max_size=100), st.binary(min_size=8, max_size=8))
def test_ctr_roundtrip(data, nonce):
    cipher = AES128(FIPS_KEY)
    assert cipher.encrypt_ctr(cipher.encrypt_ctr(data, nonce), nonce) == data


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=255))
def test_pkcs7_roundtrip(data, block_size):
    padded = pkcs7_pad(data, block_size)
    assert len(padded) % block_size == 0
    assert pkcs7_unpad(padded, block_size) == data


def test_pkcs7_detects_corruption():
    padded = pkcs7_pad(b"hello", 16)
    corrupted = padded[:-1] + bytes([padded[-1] ^ 0x80])
    with pytest.raises(BadPaddingError):
        pkcs7_unpad(corrupted, 16)


def test_pkcs7_rejects_zero_pad_byte():
    with pytest.raises(BadPaddingError):
        pkcs7_unpad(b"\x00" * 16, 16)


def test_pkcs7_rejects_oversized_pad_byte():
    with pytest.raises(BadPaddingError):
        pkcs7_unpad(b"\x11" * 16, 16)
