"""Smaller units: runtime internals, stats records, weaving helpers,
session accounting, error hierarchy."""

import pytest

from repro.analysis.qualified_conditions import Strength
from repro.core.config import DetectionMethod, ResponseKind
from repro.core.stats import Bomb, BombOrigin, InstrumentationReport
from repro.core.weaving import (
    EPILOGUE_LABEL,
    map_registers,
    prepare_woven_body,
    referenced_registers,
    rename_labels,
)
from repro.dex import DexClass, DexFile, Label, assemble, assemble_method
from repro.dex import instructions as ins
from repro.dex.opcodes import Op
from repro.errors import (
    AnalysisError,
    ApkError,
    AttackError,
    CryptoError,
    DexError,
    InstrumentationError,
    ReproError,
    SolverError,
    UnsolvableConstraint,
    VMCrash,
    VMError,
)
from repro.vm import Runtime
from repro.vm.runtime import BombRegistry


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [CryptoError, DexError, VMError, ApkError, AnalysisError,
         InstrumentationError, AttackError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unsolvable_is_solver_error(self):
        assert issubclass(UnsolvableConstraint, SolverError)
        assert issubclass(VMCrash, VMError)


class TestBombRegistry:
    def _registry(self):
        dex = assemble(".class A\n.method on_back 0\nreturn_void\n.end")
        return Runtime(dex).bombs

    def test_counts_and_first_times(self):
        registry = self._registry()
        registry.record("b1", "evaluated")
        registry.record("b1", "evaluated")
        registry.record("b2", "outer_satisfied")
        assert registry.counts["b1"]["evaluated"] == 2
        assert registry.count("evaluated") == 2
        assert registry.bombs_with("outer_satisfied") == {"b2"}
        assert registry.first_time_of("evaluated") is not None
        assert registry.first_time_of("never") is None

    def test_merge_keeps_earliest_first_times(self):
        a = self._registry()
        b = self._registry()
        a._runtime.device.clock = 100.0
        a.record("b1", "inner_met")
        b._runtime.device.clock = 5.0
        b.record("b1", "inner_met")
        a.merge_from(b)
        assert a.first_by_bomb[("b1", "inner_met")] == 5.0
        assert a.counts["b1"]["inner_met"] == 2


class TestRuntimeInternals:
    def test_dynamic_blob_caching(self):
        from repro.dex.serializer import serialize_dex

        host = assemble(".class A\n.method on_back 0\nreturn_void\n.end")
        runtime = Runtime(host)
        payload = assemble(".class P\n.method run 1\nreturn r0\n.end")
        blob = serialize_dex(payload)
        first = runtime.load_blob_method(blob, "P.run")
        second = runtime.load_blob_method(blob, "P.run")
        assert first is second  # cached by digest

    def test_corrupt_blob_crashes_cleanly(self):
        host = assemble(".class A\n.method on_back 0\nreturn_void\n.end")
        runtime = Runtime(host)
        with pytest.raises(VMCrash, match="corrupt payload"):
            runtime.load_blob_method(b"garbage-not-a-dex", "P.run")

    def test_sput_to_unknown_field_crashes(self):
        host = assemble(".class A\n.field x static 0\n.method on_back 0\nreturn_void\n.end")
        runtime = Runtime(host)
        with pytest.raises(VMCrash):
            runtime.sput("A.ghost", 1)

    def test_statics_initialized_from_fields(self):
        host = assemble(".class A\n.field x static 41\n.method on_back 0\nreturn_void\n.end")
        runtime = Runtime(host)
        assert runtime.sget("A.x") == 41

    def test_boot_runs_every_main(self):
        source = """
        .class A
        .field x static 0
        .method main 0
            const r0, 1
            sput r0, A.x
            return_void
        .end
        .class B
        .field y static 0
        .method main 0
            const r0, 2
            sput r0, B.y
            return_void
        .end
        """
        runtime = Runtime(assemble(source))
        runtime.boot()
        assert runtime.statics["A.x"] == 1
        assert runtime.statics["B.y"] == 2


class TestWeavingHelpers:
    def test_referenced_registers(self):
        body = [ins.binop(Op.ADD, 3, 1, 2), ins.sput(3, "A.x")]
        assert referenced_registers(body) == {1, 2, 3}

    def test_map_registers_covers_args(self):
        instr = ins.invoke(5, "A.m", (1, 2))
        mapped = map_registers(instr, {5: 10, 1: 11, 2: 12})
        assert mapped.dst == 10
        assert mapped.args == (11, 12)

    def test_unmapped_register_rejected(self):
        with pytest.raises(InstrumentationError):
            map_registers(ins.move(1, 2), {1: 5})

    def test_exit_jump_goes_to_epilogue(self):
        instr = ins.goto("join")
        renamed = rename_labels(instr, {}, "join")
        assert renamed.target == EPILOGUE_LABEL

    def test_unknown_internal_target_rejected(self):
        with pytest.raises(InstrumentationError):
            rename_labels(ins.goto("elsewhere"), {}, "join")

    def test_prepare_woven_body_renames_consistently(self):
        body = [
            Label("top"),
            ins.if_eqz(0, "top"),
            ins.goto("exit"),
        ]
        woven = prepare_woven_body(body, "exit", {0: 1}, "w_")
        assert woven[0].value == "w_top"
        assert woven[1].target == "w_top"
        assert woven[2].target == EPILOGUE_LABEL


class TestReportModel:
    def _bomb(self, origin, strength, bomb_id="b1"):
        return Bomb(
            bomb_id=bomb_id,
            method="A.m",
            origin=origin,
            strength=strength,
            const_value=1,
            salt_hex="00" * 12,
            hc_hex="00" * 20,
            payload_class=f"Bomb${bomb_id}",
            woven=False,
            detection=DetectionMethod.PUBLIC_KEY,
            response=ResponseKind.CRASH,
        )

    def test_histograms_and_counts(self):
        report = InstrumentationReport(app_name="X")
        report.bombs = [
            self._bomb(BombOrigin.EXISTING, Strength.WEAK, "b1"),
            self._bomb(BombOrigin.EXISTING, Strength.STRONG, "b2"),
            self._bomb(BombOrigin.ARTIFICIAL, Strength.MEDIUM, "b3"),
            self._bomb(BombOrigin.BOGUS, Strength.MEDIUM, "b4"),
        ]
        assert report.total_injected == 3          # bogus excluded
        assert report.count_by_origin(BombOrigin.BOGUS) == 1
        histogram = report.strength_histogram()
        assert histogram[Strength.MEDIUM] == 1     # bogus not counted
        assert report.strength_histogram(BombOrigin.EXISTING)[Strength.WEAK] == 1

    def test_bomb_lookup(self):
        report = InstrumentationReport(app_name="X")
        bomb = self._bomb(BombOrigin.EXISTING, Strength.WEAK)
        report.bombs = [bomb]
        assert report.bomb_by_id("b1") is bomb
        with pytest.raises(KeyError):
            report.bomb_by_id("zzz")

    def test_size_increase_zero_safe(self):
        report = InstrumentationReport(app_name="X")
        assert report.size_increase == 0.0


class TestDisassemblerCompleteness:
    def test_every_opcode_formats(self):
        """format_instr must handle every opcode the assembler can emit."""
        from repro.dex.disassembler import format_instr

        samples = [
            ins.const(0, 1), ins.move(0, 1),
            ins.binop(Op.ADD, 0, 1, 2), ins.binop_lit(Op.ADD_LIT, 0, 1, 5),
            ins.goto("x"), ins.if_eq(0, 1, "x"), ins.if_eqz(0, "x"),
            ins.switch(0, {1: "x"}), ins.ret(0), ins.ret_void(), ins.throw(0),
            ins.new_instance(0, "C"), ins.iget(0, 1, "f"), ins.iput(0, 1, "f"),
            ins.sget(0, "C.f"), ins.sput(0, "C.f"),
            ins.new_array(0, 1), ins.aget(0, 1, 2), ins.aput(0, 1, 2),
            ins.array_len(0, 1), ins.invoke(None, "C.m", (0,)), Label("x"),
            ins.Instr(Op.NOP), ins.Instr(Op.NEG, dst=0, a=1),
            ins.Instr(Op.NOT, dst=0, a=1), ins.binop(Op.CMP, 0, 1, 2),
        ]
        for instr in samples:
            assert isinstance(format_instr(instr), str)
