"""StaticTriggerDetector: the resilience claim, both directions.

Naive cleartext bombs must be localized (correct method + branch pc);
BombDroid-encrypted bombs must not be -- the detector sees the opaque
guards but has no payload to attach them to; clean apps must produce
zero findings (the false-positive bound).
"""

import pytest

from repro.analysis.triggers import analyze_dex
from repro.attacks import StaticTriggerDetector
from repro.core.naive import NaiveProtector
from repro.corpus import build_app
from repro.crypto import RSAKeyPair
from repro.lint import errors, run_lint


@pytest.fixture(scope="module")
def corpus_bundle():
    return build_app("DetectorApp", seed=3, scale=0.4)


@pytest.fixture(scope="module")
def naive_protected(corpus_bundle):
    key = RSAKeyPair.generate(seed=77)
    return NaiveProtector(seed=1).protect(corpus_bundle.apk, key)


class TestCleanApps:
    def test_clean_corpus_app_zero_findings(self, corpus_bundle):
        result = StaticTriggerDetector().run(corpus_bundle.apk)
        assert not result.defeated_defense
        assert result.bombs_found == []
        assert result.details["findings"] == 0
        assert result.details["opaque_guards"] == 0

    def test_clean_fixture_app_zero_findings(self, small_apk):
        result = StaticTriggerDetector().run(small_apk)
        assert not result.defeated_defense


class TestNaiveBombs:
    def test_naive_bombs_localized(self, naive_protected):
        apk, report = naive_protected
        assert report.placements
        scan = analyze_dex(apk.dex())
        localized = [
            placement
            for placement in report.placements
            if any(
                placement.covers(finding.method, finding.branch_pc)
                for finding in scan.findings
            )
        ]
        rate = len(localized) / len(report.placements)
        assert rate >= 0.9, (
            f"localized {len(localized)}/{len(report.placements)} naive bombs"
        )

    def test_attack_result_defeats_naive(self, naive_protected):
        apk, _ = naive_protected
        result = StaticTriggerDetector().run(apk)
        assert result.attack == "static_trigger_analysis"
        assert result.defeated_defense
        assert result.details["top_score"] > 0
        assert "detection_probe" in result.details["kinds"]

    def test_placement_coordinates_point_at_real_blocks(self, naive_protected):
        apk, report = naive_protected
        dex = apk.dex()
        methods = {m.qualified_name: m for m in dex.iter_methods()}
        for placement in report.placements:
            method = methods[placement.method]
            first = method.instructions[placement.start]
            assert first.op.value == "invoke"
            assert first.value == "android.pm.get_public_key"


class TestBombDroidResists:
    def test_no_findings_on_protected_app(self, protected_apk, protection_report):
        assert protection_report.total_injected > 0
        result = StaticTriggerDetector().run(protected_apk)
        assert not result.defeated_defense
        assert result.bombs_found == []
        # The triggers are visible -- the detector counts them -- but
        # nothing sensitive is reachable under them.
        assert result.details["opaque_guards"] > 0
        assert "hash-opaque" in result.notes

    def test_opaque_guard_count_matches_scan(self, protected_apk):
        scan = StaticTriggerDetector().analyze(protected_apk.dex())
        assert scan.findings == []
        assert len(scan.opaque_guards) > 0
        assert scan.branches_classified >= len(scan.opaque_guards)


class TestHsoLocalizableLintRule:
    def test_silent_on_real_bombdroid_output(self, protected_apk):
        diagnostics = run_lint(protected_apk.dex(), rules=["hso-localizable"])
        assert diagnostics == []

    def test_silent_on_clean_app(self, small_apk):
        diagnostics = run_lint(small_apk.dex(), rules=["hso-localizable"])
        assert diagnostics == []

    def test_fires_on_cleartext_payload_next_to_prologue(self):
        # A botched protection: the prologue is right, but the payload
        # (a guarded throw) was left in cleartext instead of encrypted.
        # Our own detector localizes it, and lint must refuse to ship it.
        from repro.dex import DexClass, DexFile, assemble_method

        digest = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"
        body = f"""
            const r1, "73616c74"
            const r2, "bomb-0"
            invoke r3, bomb.hash, r0, r1, r2
            const r4, "{digest}"
            invoke r5, java.str.equals, r3, r4
            if_eqz r5, @no_match
            const r6, 2
            new_array r7, r6
            invoke r8, bomb.derive, r0, r1
            const r9, "00ff"
            invoke r10, bomb.load_run, r8, r9, r7, r0
            const r11, "leaked: repackaging detected"
            throw r11
        @no_match:
            return_void
        """
        dex = DexFile()
        cls = dex.add_class(DexClass(name="Leaky"))
        cls.add_method(assemble_method(body, class_name="Leaky", name="check", params=1))
        diagnostics = run_lint(dex, rules=["hso-localizable"])
        assert errors(diagnostics)
        (diag,) = diagnostics
        assert diag.rule == "hso-localizable"
        assert diag.method == "Leaky.check"
