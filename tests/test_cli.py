"""The command-line interface, end to end through temp files."""

import pytest

from repro.cli import load_apk, main, save_apk


@pytest.fixture()
def workdir(tmp_path):
    return tmp_path


def test_build_protect_inspect_roundtrip(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")

    assert main(["build", "--name", "CliDemo", "--seed", "4", "--scale", "0.1",
                 "--out", app]) == 0
    out = capsys.readouterr().out
    assert "built CliDemo" in out

    # developer key seed for generated apps is seed + 7000
    assert main(["protect", "--in", app, "--out", protected,
                 "--key-seed", "7004", "--profiling-events", "200"]) == 0
    out = capsys.readouterr().out
    assert "bombs" in out

    assert main(["inspect", "--in", protected]) == 0
    out = capsys.readouterr().out
    assert "signature OK" in out
    assert "visible bomb sites:" in out


def test_repackage_and_simulate(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")
    pirated = str(workdir / "pirated.rapk")

    main(["build", "--name", "CliDemo2", "--seed", "5", "--scale", "0.1", "--out", app])
    main(["protect", "--in", app, "--out", protected, "--key-seed", "7005",
          "--profiling-events", "200"])
    capsys.readouterr()

    assert main(["repackage", "--in", protected, "--out", pirated]) == 0
    assert main(["simulate", "--in", pirated, "--devices", "4",
                 "--events", "400"]) == 0
    out = capsys.readouterr().out
    assert "detected on" in out


def test_attack_subcommand(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")
    main(["build", "--name", "CliDemo3", "--seed", "6", "--scale", "0.1", "--out", app])
    main(["protect", "--in", app, "--out", protected, "--key-seed", "7006",
          "--profiling-events", "200"])
    capsys.readouterr()

    # Exit code 0 = defense resisted.
    assert main(["attack", "--in", protected, "--attack", "symbolic"]) == 0
    out = capsys.readouterr().out
    assert "resisted" in out


def test_lint_subcommand(workdir, capsys):
    import json

    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")
    main(["build", "--name", "CliDemo4", "--seed", "7", "--scale", "0.1", "--out", app])
    main(["protect", "--in", app, "--out", protected, "--key-seed", "7007",
          "--profiling-events", "200", "--strict"])
    capsys.readouterr()

    # Exit code 0 = no error-severity diagnostics; both the clean build
    # and the strict-protected output must pass.
    assert main(["lint", "--in", app]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out

    assert main(["lint", "--in", protected]) == 0
    capsys.readouterr()

    assert main(["lint", "--in", protected, "--json"]) == 0
    out = capsys.readouterr().out
    parsed = json.loads(out)
    assert all(entry["severity"] != "error" for entry in parsed)

    assert main(["lint", "--in", protected, "--rules", "weak-salt"]) == 0
    capsys.readouterr()


def test_lint_subcommand_flags_violations(workdir, capsys):
    from repro.apk import Resources, build_apk
    from repro.cli import _save_with_manifest
    from repro.crypto import RSAKeyPair
    from repro.dex import assemble

    dex = assemble(
        ".class A\n.method m 0\n"
        "invoke r0, android.pm.get_public_key\nreturn r0\n.end"
    )
    apk = build_apk(dex, Resources(strings={"app_name": "A"}),
                    RSAKeyPair.generate(seed=77))
    path = str(workdir / "leaky.rapk")
    _save_with_manifest(apk, path)

    assert main(["lint", "--in", path]) == 1
    out = capsys.readouterr().out
    assert "text-search-surface" in out

    assert main(["lint", "--in", path, "--rules", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "leaked-trigger-const" in out
    assert "read-uninit" in out

    assert main(["lint"]) == 2
    assert "--in is required" in capsys.readouterr().err


def test_apk_file_roundtrip(workdir, small_apk):
    path = str(workdir / "x.rapk")
    from repro.cli import _save_with_manifest

    _save_with_manifest(small_apk, path)
    restored = load_apk(path)
    restored.verify()
    assert restored.entries["classes.dex"] == small_apk.entries["classes.dex"]


def test_load_rejects_garbage(workdir):
    path = workdir / "junk.rapk"
    path.write_bytes(b"not an apk")
    from repro.errors import ApkError

    with pytest.raises(ApkError):
        load_apk(str(path))


def test_serve_reports_data_dir_then_recover(workdir, capsys):
    from repro.crypto import RSAKeyPair
    from repro.reporting import DetectionReport, report_to_json, sign_report

    attest = RSAKeyPair.generate(seed=5)
    lines = []
    for i in range(4):
        report = DetectionReport(
            app_name="Game", bomb_id="b0", device_id=f"d{i}",
            observed_key_hex="bb" * 20, timestamp=float(i), nonce=100 + i,
        )
        lines.append(report_to_json(sign_report(report, attest)))
    reports_path = workdir / "reports.jsonl"
    reports_path.write_text("\n".join(lines) + "\n")
    data_dir = str(workdir / "state")

    code = main([
        "serve-reports", "--app", "Game", "--key-hex", "aa" * 20,
        "--reports", str(reports_path), "--data-dir", data_dir,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "accepted=4" in out
    assert "verdict for Game: takedown" in out

    # The ingest journaled durably: a fresh process rebuilds the same
    # verdict from disk alone.
    code = main(["recover", "--data-dir", data_dir])
    assert code == 0
    out = capsys.readouterr().out
    assert "verdict for Game: takedown" in out
    assert "1 snapshot(s) restored" in out


def test_recover_missing_dir_fails(workdir, capsys):
    code = main(["recover", "--data-dir", str(workdir / "nope")])
    assert code == 1
    assert "no durable state" in capsys.readouterr().err


def _naive_apk_file(workdir):
    """A naive-protected corpus app saved to disk, plus its clean twin."""
    from repro.cli import _save_with_manifest
    from repro.core.naive import NaiveProtector
    from repro.corpus import build_app
    from repro.crypto import RSAKeyPair

    bundle = build_app("CliDetect", seed=3, scale=0.2)
    clean = str(workdir / "clean.rapk")
    _save_with_manifest(bundle.apk, clean)
    naive, _ = NaiveProtector(seed=1).protect(
        bundle.apk, RSAKeyPair.generate(seed=77)
    )
    naive_path = str(workdir / "naive.rapk")
    _save_with_manifest(naive, naive_path)
    return clean, naive_path


def test_detect_subcommand_exit_codes(workdir, capsys):
    clean, naive = _naive_apk_file(workdir)

    assert main(["detect", "--in", clean]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out

    assert main(["detect", "--in", naive]) == 1
    out = capsys.readouterr().out
    assert "detection_probe" in out
    assert "score=" in out


def test_detect_top_and_min_score(workdir, capsys):
    _, naive = _naive_apk_file(workdir)

    assert main(["detect", "--in", naive, "--top", "2"]) == 1
    out = capsys.readouterr().out
    assert "suppressed" in out
    assert out.count("score=") == 2

    # An absurd threshold silences everything -> clean exit.
    assert main(["detect", "--in", naive, "--min-score", "1000"]) == 0
    capsys.readouterr()


def test_detect_json_output(workdir, capsys):
    import json

    _, naive = _naive_apk_file(workdir)
    assert main(["detect", "--in", naive, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_findings"] > 0
    assert payload["findings"][0]["score"] >= payload["findings"][-1]["score"]
    assert {"method", "branch_pc", "kind", "sinks"} <= set(payload["findings"][0])
    assert payload["by_kind"].get("detection_probe", 0) > 0


def test_detect_sarif_output(workdir, capsys):
    import json

    clean, naive = _naive_apk_file(workdir)

    assert main(["detect", "--in", naive, "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "repro-detect"
    assert run["results"]
    result = run["results"][0]
    assert result["ruleId"] == "hso-finding"
    (location,) = result["locations"]
    assert "@" in location["logicalLocations"][0]["fullyQualifiedName"]

    assert main(["detect", "--in", clean, "--format", "sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["runs"][0]["results"] == []


def test_lint_format_sarif(workdir, capsys):
    import json

    from repro.apk import Resources, build_apk
    from repro.cli import _save_with_manifest
    from repro.crypto import RSAKeyPair
    from repro.dex import assemble

    dex = assemble(
        ".class A\n.method m 0\n"
        "invoke r0, android.pm.get_public_key\nreturn r0\n.end"
    )
    apk = build_apk(dex, Resources(strings={"app_name": "A"}),
                    RSAKeyPair.generate(seed=77))
    path = str(workdir / "leaky.rapk")
    _save_with_manifest(apk, path)

    assert main(["lint", "--in", path, "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {result["ruleId"] for result in run["results"]}
    assert "text-search-surface" in rule_ids
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rule_ids <= declared
    levels = {result["level"] for result in run["results"]}
    assert levels <= {"error", "warning", "note"}

    # --json stays a working alias.
    assert main(["lint", "--in", path, "--json"]) == 1
    parsed = json.loads(capsys.readouterr().out)
    assert isinstance(parsed, list)


def test_attack_subcommand_static(workdir, capsys):
    clean, naive = _naive_apk_file(workdir)

    assert main(["attack", "--in", naive, "--attack", "static"]) == 1
    out = capsys.readouterr().out
    assert "static_trigger_analysis" in out

    assert main(["attack", "--in", clean, "--attack", "static"]) == 0
    out = capsys.readouterr().out
    assert "resisted" in out
