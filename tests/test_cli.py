"""The command-line interface, end to end through temp files."""

import pytest

from repro.cli import load_apk, main, save_apk


@pytest.fixture()
def workdir(tmp_path):
    return tmp_path


def test_build_protect_inspect_roundtrip(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")

    assert main(["build", "--name", "CliDemo", "--seed", "4", "--scale", "0.1",
                 "--out", app]) == 0
    out = capsys.readouterr().out
    assert "built CliDemo" in out

    # developer key seed for generated apps is seed + 7000
    assert main(["protect", "--in", app, "--out", protected,
                 "--key-seed", "7004", "--profiling-events", "200"]) == 0
    out = capsys.readouterr().out
    assert "bombs" in out

    assert main(["inspect", "--in", protected]) == 0
    out = capsys.readouterr().out
    assert "signature OK" in out
    assert "visible bomb sites:" in out


def test_repackage_and_simulate(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")
    pirated = str(workdir / "pirated.rapk")

    main(["build", "--name", "CliDemo2", "--seed", "5", "--scale", "0.1", "--out", app])
    main(["protect", "--in", app, "--out", protected, "--key-seed", "7005",
          "--profiling-events", "200"])
    capsys.readouterr()

    assert main(["repackage", "--in", protected, "--out", pirated]) == 0
    assert main(["simulate", "--in", pirated, "--devices", "4",
                 "--events", "400"]) == 0
    out = capsys.readouterr().out
    assert "detected on" in out


def test_attack_subcommand(workdir, capsys):
    app = str(workdir / "app.rapk")
    protected = str(workdir / "protected.rapk")
    main(["build", "--name", "CliDemo3", "--seed", "6", "--scale", "0.1", "--out", app])
    main(["protect", "--in", app, "--out", protected, "--key-seed", "7006",
          "--profiling-events", "200"])
    capsys.readouterr()

    # Exit code 0 = defense resisted.
    assert main(["attack", "--in", protected, "--attack", "symbolic"]) == 0
    out = capsys.readouterr().out
    assert "resisted" in out


def test_apk_file_roundtrip(workdir, small_apk):
    path = str(workdir / "x.rapk")
    from repro.cli import _save_with_manifest

    _save_with_manifest(small_apk, path)
    restored = load_apk(path)
    restored.verify()
    assert restored.entries["classes.dex"] == small_apk.entries["classes.dex"]


def test_load_rejects_garbage(workdir):
    path = workdir / "junk.rapk"
    path.write_bytes(b"not an apk")
    from repro.errors import ApkError

    with pytest.raises(ApkError):
        load_apk(str(path))
