"""Self-healing cluster: heartbeats, supervised failover, fencing."""

import threading
import time

import pytest

from repro.chaos.faults import FaultPlan, active_plan
from repro.crypto import RSAKeyPair
from repro.errors import FaultInjected, ReportingError, TransportError
from repro.reporting import (
    DetectionReport,
    FleetConfig,
    OutcomeModel,
    ReportClient,
    ReportServer,
    SubmitStatus,
    TakedownPolicy,
    run_fleet,
    sign_report,
)
from repro.reporting.net import (
    ClusterSupervisor,
    HealthStatus,
    ReplicaFollower,
    ServiceHandle,
    TcpTransport,
    probe_health,
    send_fence,
)

ORIGINAL = "aa" * 20
PIRATE = "bb" * 20
APP = "Game"


@pytest.fixture(scope="module")
def attest_key():
    return RSAKeyPair.generate(seed=4747)


def make_signed(attest_key, i, ts=10.0, key=PIRATE, app=APP):
    return sign_report(
        DetectionReport(
            app_name=app,
            bomb_id=f"b{i:03d}",
            device_id=f"dev-{i:04d}",
            observed_key_hex=key,
            timestamp=ts,
            nonce=1000 + i,
        ),
        attest_key,
    )


class Cluster:
    """One durable leader + ingest service + warm-standby follower."""

    def __init__(self, tmp_path, shards=4, heartbeat_interval=0.05):
        self.server_kwargs = dict(
            shards=shards, policy=TakedownPolicy(distinct_devices=3)
        )
        self.leader = ReportServer(
            data_dir=str(tmp_path / "leader"), **self.server_kwargs
        )
        self.leader.register_app(APP, ORIGINAL)
        self.handle = ServiceHandle.start(
            self.leader,
            replication_port=0,
            heartbeat_interval=heartbeat_interval,
        )
        self.endpoint = self.handle.address
        self.follower = ReplicaFollower(
            str(tmp_path / "replica"),
            self.handle.replication_address,
            expect_shards=shards,
        ).start()
        assert self.follower.wait_applied(1, timeout=10)

    def supervisor(self, **kwargs):
        kwargs.setdefault("server_kwargs", self.server_kwargs)
        kwargs.setdefault("probe_timeout", 0.5)
        return ClusterSupervisor(self.endpoint, [self.follower], **kwargs)

    def accept(self, attest_key, indices):
        transport = TcpTransport([self.endpoint])
        accepted = []
        for i in indices:
            signed = make_signed(attest_key, i)
            assert transport(signed) is SubmitStatus.ACCEPTED
            accepted.append(signed)
        transport.close()
        assert self.follower.wait_applied(1 + len(accepted), timeout=10)
        return accepted

    def kill_leader(self):
        self.handle.kill()
        self.leader.crash()

    def shutdown(self, supervisor=None):
        if supervisor is not None:
            supervisor.shutdown()
            if supervisor.promoted_server is not None:
                supervisor.promoted_server.close()
        self.follower.stop()
        try:
            self.handle.stop()
        except ReportingError:
            pass


# ---------------------------------------------------------------------------
# The supervision protocol, tick by tick
# ---------------------------------------------------------------------------


class TestSupervisorProtocol:
    def test_healthy_leader_never_fails_over(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        supervisor = cluster.supervisor(miss_threshold=2)
        try:
            for _ in range(5):
                assert supervisor.tick() is False
            assert supervisor.failovers == 0
            assert supervisor.misses == 0
            assert supervisor.heartbeats_seen == 5
            assert supervisor.last_health.role == "leader"
            assert supervisor.endpoint() == cluster.endpoint
        finally:
            cluster.shutdown(supervisor)

    def test_single_miss_does_not_promote(self, tmp_path):
        cluster = Cluster(tmp_path)
        supervisor = cluster.supervisor(miss_threshold=3)
        try:
            with active_plan(
                FaultPlan(seed=1).arm(
                    "net.heartbeat_loss", "raise", max_fires=2
                )
            ):
                assert supervisor.tick() is False
                assert supervisor.tick() is False
                assert supervisor.misses == 2
                # The next probe gets through: suspicion resets.
                assert supervisor.tick() is False
            assert supervisor.misses == 0
            assert supervisor.failovers == 0
        finally:
            cluster.shutdown(supervisor)

    def test_dead_leader_promotes_at_threshold(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        accepted = cluster.accept(attest_key, range(4))
        cluster.kill_leader()
        supervisor = cluster.supervisor(miss_threshold=3)
        try:
            outcomes = [supervisor.tick() for _ in range(3)]
            assert outcomes == [False, False, True]
            assert supervisor.failovers == 1
            event = supervisor.event
            assert event.epoch == 1
            assert event.follower_applied == 1 + len(accepted)
            assert supervisor.promoted_server.epoch == 1
            assert supervisor.endpoint() == supervisor.promoted_handle.address
            # The promoted dedup window remembers every pre-kill report.
            transport = TcpTransport([supervisor.endpoint()])
            for signed in accepted:
                assert transport(signed) is SubmitStatus.DUPLICATE
            assert transport(make_signed(attest_key, 9)) is SubmitStatus.ACCEPTED
            transport.close()
        finally:
            cluster.shutdown(supervisor)

    def test_supervisor_crash_resets_suspicion(self, tmp_path):
        cluster = Cluster(tmp_path)
        cluster.kill_leader()
        supervisor = cluster.supervisor(miss_threshold=2)
        try:
            plan = FaultPlan(seed=2).arm(
                "net.supervisor_crash", "raise", max_fires=1
            )
            with active_plan(plan):
                assert supervisor.tick() is False  # crash: no probe made
                assert supervisor.crashes == 1
                assert supervisor.misses == 0
                assert supervisor.tick() is False  # miss 1
                assert supervisor.misses == 1
                assert supervisor.tick() is True   # miss 2 -> failover
            assert supervisor.failovers == 1
        finally:
            cluster.shutdown(supervisor)

    def test_promotes_most_caught_up_follower(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        cluster.accept(attest_key, range(3))
        # A second follower that stopped early: it bootstrapped but
        # never applied the stream, so it must lose the election.
        stale = ReplicaFollower(
            str(tmp_path / "stale"),
            cluster.handle.replication_address,
            expect_shards=4,
        ).start()
        assert stale.wait_applied(1, timeout=10)
        stale.stop()
        cluster.kill_leader()
        supervisor = ClusterSupervisor(
            cluster.endpoint,
            [stale, cluster.follower],
            server_kwargs=cluster.server_kwargs,
            miss_threshold=1,
            probe_timeout=0.5,
        )
        try:
            assert supervisor.tick() is True
            assert supervisor.event.follower_applied == 4
            transport = TcpTransport([supervisor.endpoint()])
            assert transport(make_signed(attest_key, 0)) is SubmitStatus.DUPLICATE
            transport.close()
        finally:
            cluster.shutdown(supervisor)

    def test_threaded_run_promotes_without_ticking_by_hand(
        self, tmp_path, attest_key
    ):
        cluster = Cluster(tmp_path)
        cluster.accept(attest_key, range(3))
        cluster.kill_leader()
        supervisor = cluster.supervisor(miss_threshold=2, interval=0.02)
        supervisor.start()
        try:
            deadline = time.monotonic() + 20
            while supervisor.failovers == 0:
                assert supervisor.error is None, supervisor.error
                assert time.monotonic() < deadline, "never promoted"
                time.sleep(0.01)
            assert supervisor.promoted_server.epoch == 1
        finally:
            cluster.shutdown(supervisor)


# ---------------------------------------------------------------------------
# Fencing: the stale leader is harmless after promotion
# ---------------------------------------------------------------------------


class TestFencing:
    def test_partitioned_leader_is_fenced_and_redirects(
        self, tmp_path, attest_key
    ):
        cluster = Cluster(tmp_path)
        cluster.accept(attest_key, range(3))
        supervisor = cluster.supervisor(miss_threshold=2)
        try:
            # The leader is alive but the supervisor cannot see it.
            with active_plan(
                FaultPlan(seed=3).arm("net.heartbeat_loss", "raise")
            ):
                assert supervisor.tick() is False
                assert supervisor.tick() is True
            assert supervisor.fenced
            assert supervisor.fences_acked == 1
            old_accepted = cluster.handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            )
            # A client still pointed at the old leader is redirected and
            # lands on the promoted one within the same call.
            transport = TcpTransport([cluster.endpoint])
            assert transport(make_signed(attest_key, 7)) is SubmitStatus.ACCEPTED
            assert transport.redirects == 1
            assert transport.last_epoch == supervisor.promoted_server.epoch
            transport.close()
            # The fenced leader accepted nothing after the promotion.
            assert cluster.handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            ) == old_accepted
            health = probe_health(cluster.endpoint)
            assert health.role == "fenced"
            assert health.epoch == supervisor.promoted_server.epoch
        finally:
            cluster.shutdown(supervisor)

    def test_dropped_fence_is_retried_until_acked(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        cluster.accept(attest_key, range(3))
        supervisor = cluster.supervisor(miss_threshold=1)
        try:
            plan = (
                FaultPlan(seed=4)
                .arm("net.heartbeat_loss", "raise")
                .arm("net.stale_leader", "raise", max_fires=1)
            )
            with active_plan(plan):
                assert supervisor.tick() is True   # fence eaten at the node
                assert not supervisor.fenced
                assert supervisor.tick() is False  # re-fence lands
            assert supervisor.fenced
            assert supervisor.fences_sent == 2
            assert supervisor.fences_acked == 1
        finally:
            cluster.shutdown(supervisor)

    def test_stale_fence_cannot_demote_a_newer_epoch(self, tmp_path):
        cluster = Cluster(tmp_path)
        try:
            assert send_fence(cluster.endpoint, 5, "127.0.0.1:1111") is True
            # A delayed fence from an older failover bounces off.
            assert send_fence(cluster.endpoint, 2, "127.0.0.1:2222") is False
            health = probe_health(cluster.endpoint)
            assert health.epoch == 5
            assert health.endpoint == "127.0.0.1:1111"
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# Client-side failover
# ---------------------------------------------------------------------------


class TestClientFailover:
    def test_endpoint_list_rotates_past_dead_nodes(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        try:
            dead = ("127.0.0.1", 1)  # reserved port: connection refused
            transport = TcpTransport([dead, cluster.endpoint])
            # First call fails over to the live endpoint on retry.
            with pytest.raises(TransportError):
                transport(make_signed(attest_key, 0))
            assert transport(make_signed(attest_key, 0)) is SubmitStatus.ACCEPTED
            transport.close()
        finally:
            cluster.shutdown()

    def test_callable_endpoint_follows_supervisor(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        cluster.accept(attest_key, range(2))
        cluster.kill_leader()
        supervisor = cluster.supervisor(miss_threshold=1)
        try:
            assert supervisor.tick() is True
            transport = TcpTransport(supervisor.endpoint)
            assert transport(make_signed(attest_key, 5)) is SubmitStatus.ACCEPTED
            transport.close()
        finally:
            cluster.shutdown(supervisor)

    def test_spooled_backlog_drains_through_redirect_exactly_once(
        self, tmp_path, attest_key
    ):
        """Regression: a spooled client re-routed by NOT_LEADER must not
        double-deliver any (device, nonce) pair."""
        cluster = Cluster(tmp_path)
        target = {"addr": ("127.0.0.1", 1)}  # dead while spooling
        transport = TcpTransport(lambda: target["addr"])
        client = ReportClient(
            transport,
            attest_key,
            device_id="dev-spool",
            max_attempts=2,
            base_backoff=0.0,
        )
        supervisor = cluster.supervisor(miss_threshold=1)
        try:
            backlog = []
            for i in range(6):
                assert client.report(
                    app_name=APP, bomb_id=f"b{i:03d}",
                    observed_key_hex=PIRATE, timestamp=10.0 + i,
                    device_id=f"dev-{i:04d}",
                ) is None
                backlog.append(client.last_signed)
            assert client.spooled == 6
            # Fail over while the backlog sits on flash; the old leader
            # survives, fenced, so the drain goes *through* a redirect.
            with active_plan(
                FaultPlan(seed=5).arm("net.heartbeat_loss", "raise")
            ):
                assert supervisor.tick() is True
            assert supervisor.fenced
            target["addr"] = cluster.endpoint  # client still knows the OLD leader
            assert client.flush() == 6
            assert client.spooled == 0
            accepted = supervisor.promoted_handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            )
            duplicates = supervisor.promoted_handle.call(
                lambda s: int(
                    s.metrics.counter("reporting.duplicates_dropped").value
                )
            )
            assert (accepted, duplicates) == (6, 0)
            # Only the first drained report paid a redirect; the learned
            # endpoint carried the rest straight to the new leader.
            assert transport.redirects == 1
            # Re-delivering the same signed reports is pure dedup.
            resend = TcpTransport(supervisor.endpoint)
            for signed in backlog:
                assert resend(signed) is SubmitStatus.DUPLICATE
            resend.close()
            transport.close()
        finally:
            cluster.shutdown(supervisor)


# ---------------------------------------------------------------------------
# ServiceHandle lifecycle (satellite: idempotent stop/kill)
# ---------------------------------------------------------------------------


class TestServiceHandleLifecycle:
    def make_handle(self):
        server = ReportServer(shards=2)
        server.register_app(APP, ORIGINAL)
        return ServiceHandle.start(server)

    def test_stop_is_idempotent(self):
        handle = self.make_handle()
        handle.stop()
        handle.stop()  # second stop: no-op, no raise
        handle.kill()  # kill after stop: no-op, no raise

    def test_kill_then_stop_is_safe(self):
        handle = self.make_handle()
        handle.kill()
        handle.kill()
        handle.stop()

    def test_call_after_stop_raises_reporting_error(self):
        handle = self.make_handle()
        handle.stop()
        with pytest.raises(ReportingError):
            handle.call(lambda s: s.queue_depth())

    def test_concurrent_stops_from_threads(self):
        handle = self.make_handle()
        errors = []

        def stopper():
            try:
                handle.stop()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(20)
        assert errors == []

    def test_in_flight_call_during_kill_raises_not_hangs(self):
        handle = self.make_handle()
        started = threading.Event()
        outcome = {}

        def slow(server):
            started.set()
            time.sleep(1.0)
            return "done"

        def caller():
            try:
                outcome["result"] = handle.call(slow, timeout=30)
            except ReportingError as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=caller)
        thread.start()
        assert started.wait(10)
        handle.kill()
        thread.join(30)
        assert not thread.is_alive()
        # Either the call squeaked through before the loop died or it
        # surfaced as a clean ReportingError -- never a hang or crash.
        assert "result" in outcome or "error" in outcome


# ---------------------------------------------------------------------------
# ReplicaFollower.wait_applied: condition variable, not a busy-poll
# ---------------------------------------------------------------------------


class TestWaitApplied:
    def test_wakes_promptly_on_apply(self, tmp_path, attest_key):
        cluster = Cluster(tmp_path)
        try:
            transport = TcpTransport([cluster.endpoint])
            woke = {}

            def waiter():
                woke["ok"] = cluster.follower.wait_applied(3, timeout=20)

            thread = threading.Thread(target=waiter)
            thread.start()
            for i in range(2):
                assert transport(make_signed(attest_key, i)) is SubmitStatus.ACCEPTED
            transport.close()
            thread.join(30)
            assert woke["ok"] is True
            assert cluster.follower.applied >= 3
        finally:
            cluster.shutdown()

    def test_timeout_returns_false(self, tmp_path):
        cluster = Cluster(tmp_path)
        try:
            started = time.monotonic()
            assert cluster.follower.wait_applied(10_000, timeout=0.2) is False
            assert time.monotonic() - started < 5.0
        finally:
            cluster.shutdown()

    def test_stop_wakes_waiters(self, tmp_path):
        cluster = Cluster(tmp_path)
        try:
            woke = {}

            def waiter():
                woke["ok"] = cluster.follower.wait_applied(10_000, timeout=30)

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.1)
            cluster.follower.stop()
            thread.join(10)
            assert not thread.is_alive(), "stop() left wait_applied hanging"
            assert woke["ok"] is False
        finally:
            cluster.shutdown()

    def test_heartbeats_do_not_count_as_applies(self, tmp_path):
        cluster = Cluster(tmp_path, heartbeat_interval=0.02)
        try:
            deadline = time.monotonic() + 20
            while cluster.follower.heartbeats < 3:
                assert time.monotonic() < deadline, "no heartbeats arrived"
                time.sleep(0.01)
            # Only the bootstrap snapshot counts; heartbeats are telemetry.
            assert cluster.follower.applied == 1
            health = cluster.follower.health()
            assert health.role == "follower"
        finally:
            cluster.shutdown()


# ---------------------------------------------------------------------------
# The chaos matrix and the supervised fleet, end to end
# ---------------------------------------------------------------------------


class TestFailoverChaosSmoke:
    def test_matrix_holds_and_replays(self, tmp_path):
        from repro.chaos import FailoverChaosConfig, run_failover_chaos

        config = FailoverChaosConfig(
            seed=23,
            reports=12,
            kill_offsets=(5,),
            scenarios=("sigkill", "partition", "stale_leader"),
            data_dir=str(tmp_path / "trials"),
        )
        report = run_failover_chaos(config)
        assert report.ok, report.violations
        assert len(report.trials) == 3
        for trial in report.trials:
            assert trial.epoch == 1
            assert trial.verdict == "takedown"
            assert trial.duplicates_after == trial.accepted_before
        assert run_failover_chaos(config).digest() == report.digest()


class TestSupervisedFleet:
    def test_fleet_heals_itself_mid_run(self, tmp_path):
        model = OutcomeModel(
            report_rate=0.01, observed_key_hex=PIRATE,
            bad_experience_rate=0.05,
        )
        config = FleetConfig(
            devices=3000, batch_size=1000, shards=4, seed=11,
            target_reports=60, transport="tcp",
            data_dir=str(tmp_path / "leader"),
            replica_dir=str(tmp_path / "replica"),
            failover_after_batch=1, supervised=True,
        )
        result = run_fleet(APP, ORIGINAL, model, config)
        assert result.recoveries == 1
        assert result.failover_epoch == 1
        assert result.verdict.value == "takedown"
        assert result.statuses.get("accepted", 0) > 0

    def test_supervised_requires_failover_batch(self):
        model = OutcomeModel(
            report_rate=0.0, observed_key_hex="", bad_experience_rate=0.0
        )
        with pytest.raises(ReportingError, match="supervised"):
            run_fleet(
                APP, ORIGINAL, model,
                FleetConfig(devices=10, batch_size=10, supervised=True),
            )
