"""Steganography for hiding digest fragments in strings.xml.

Section 4.1: the original code digest ``Do`` cannot be hard-coded into
the code file it digests, so BombDroid hides it inside string resources
instead.  We use letter-casing steganography: data bits are encoded in
the upper/lower case of the letters of a cover sentence.  The carrier
still reads as an ordinary UI string, and an attacker "does not know
how to manipulate strings in strings.xml even when they look
suspicious" because the extraction logic lives inside encrypted payload
code.

Each letter carries one bit (uppercase = 1); non-letters are skipped.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ApkError


def stego_capacity(cover: str) -> int:
    """Number of payload *bits* the cover text can carry."""
    return sum(1 for ch in cover if ch.isalpha())


def _bits_of(data: bytes) -> Iterator[int]:
    for byte in data:
        for shift in range(7, -1, -1):
            yield (byte >> shift) & 1


def embed_in_cover(cover: str, data: bytes) -> str:
    """Hide ``data`` in the letter casing of ``cover``.

    Raises :class:`ApkError` if the cover has too few letters.
    """
    needed = len(data) * 8
    if stego_capacity(cover) < needed:
        raise ApkError(
            f"cover text carries {stego_capacity(cover)} bits, need {needed}"
        )
    bits = _bits_of(data)
    out = []
    remaining = needed
    for ch in cover:
        if remaining > 0 and ch.isalpha():
            bit = next(bits)
            out.append(ch.upper() if bit else ch.lower())
            remaining -= 1
        else:
            out.append(ch)
    return "".join(out)


def extract_from_cover(carrier: str, length: int) -> bytes:
    """Recover ``length`` bytes hidden by :func:`embed_in_cover`."""
    needed = length * 8
    bits = []
    for ch in carrier:
        if ch.isalpha():
            bits.append(1 if ch.isupper() else 0)
            if len(bits) == needed:
                break
    if len(bits) < needed:
        raise ApkError(f"carrier holds only {len(bits)} bits, need {needed}")
    out = bytearray()
    for start in range(0, needed, 8):
        byte = 0
        for bit in bits[start : start + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)
