"""On-disk / on-wire framing of the APK container (``.rapk`` files).

A simple length-prefixed binary framing of the entries, manifest and
certificate.  Lived in :mod:`repro.cli` originally; promoted here so
the batch pipeline (worker processes ship APKs as bytes, the artifact
cache stores them content-addressed) and the CLI share one codec.

The byte format is unchanged from the original CLI framing::

    b"RAPK"
    >H  entry count
    per entry (sorted by name): >H name-len, name, >I blob-len, blob
    >I  cert-len, cert

``apk_to_bytes``/``apk_from_bytes`` always carry the manifest as a
``META-INF/MANIFEST.MF`` entry so a round trip preserves signatures
bit-for-bit.
"""

from __future__ import annotations

import struct

from repro.apk.manifest import Manifest
from repro.apk.package import Apk
from repro.apk.signing import Certificate
from repro.errors import ApkError

MAGIC = b"RAPK"

_MANIFEST_ENTRY = "META-INF/MANIFEST.MF"


def frame_entries(apk: Apk) -> bytes:
    """Serialize the container exactly as given (no manifest injection)."""
    out = [MAGIC, struct.pack(">H", len(apk.entries))]
    for name in sorted(apk.entries):
        blob = apk.entries[name]
        encoded = name.encode("utf-8")
        out.append(struct.pack(">H", len(encoded)))
        out.append(encoded)
        out.append(struct.pack(">I", len(blob)))
        out.append(blob)
    cert = apk.cert.serialize()
    out.append(struct.pack(">I", len(cert)))
    out.append(cert)
    return b"".join(out)


def apk_to_bytes(apk: Apk) -> bytes:
    """Serialize with the manifest carried as an entry (round-trippable)."""
    carrier = Apk(
        entries={**apk.entries, _MANIFEST_ENTRY: apk.manifest.serialize()},
        manifest=apk.manifest,
        cert=apk.cert,
    )
    return frame_entries(carrier)


def apk_from_bytes(data: bytes, source: str = "<bytes>") -> Apk:
    """Parse a framed container; raises :class:`ApkError` on bad input."""
    if data[:4] != MAGIC:
        raise ApkError(f"{source} is not a repro APK file")
    offset = 4
    (count,) = struct.unpack_from(">H", data, offset)
    offset += 2
    entries = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from(">H", data, offset)
        offset += 2
        name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        (blob_len,) = struct.unpack_from(">I", data, offset)
        offset += 4
        entries[name] = data[offset : offset + blob_len]
        offset += blob_len
    (cert_len,) = struct.unpack_from(">I", data, offset)
    offset += 4
    cert = Certificate.parse(data[offset : offset + cert_len])
    manifest = (
        Manifest.parse(entries[_MANIFEST_ENTRY])
        if _MANIFEST_ENTRY in entries
        else Manifest.over_entries(entries)
    )
    entries.pop(_MANIFEST_ENTRY, None)
    return Apk(entries=entries, manifest=manifest, cert=cert)


def save_apk(apk: Apk, path: str) -> None:
    """Write an APK container to disk (entries as given)."""
    with open(path, "wb") as handle:
        handle.write(frame_entries(apk))


def save_apk_with_manifest(apk: Apk, path: str) -> None:
    """Write an APK container including its manifest entry."""
    with open(path, "wb") as handle:
        handle.write(apk_to_bytes(apk))


def load_apk(path: str) -> Apk:
    """Read an APK container from disk."""
    with open(path, "rb") as handle:
        data = handle.read()
    return apk_from_bytes(data, source=path)
