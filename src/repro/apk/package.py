"""The APK container: pack, unpack, verify, install.

An :class:`Apk` is a named-entry container (our stand-in for the signed
zip).  ``build_apk`` packages a DexFile + Resources and signs with the
developer key; ``Apk.verify`` re-checks digests and the signature (what
the Android installer does); ``Apk.install_view`` produces the
:class:`repro.vm.runtime.InstalledPackage` snapshot the system retains
and app processes read at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apk.manifest import Manifest
from repro.apk.resources import Resources
from repro.apk.signing import Certificate, sign_apk_entries, verify_apk_entries
from repro.crypto import RSAKeyPair
from repro.dex.model import DexFile
from repro.dex.serializer import deserialize_dex, serialize_dex
from repro.errors import ApkError, SignatureError
from repro.vm.runtime import InstalledPackage

ENTRY_DEX = "classes.dex"
ENTRY_STRINGS = "res/strings.xml"
ENTRY_ICON = "res/icon.png"
ENTRY_APP_MANIFEST = "AndroidManifest.xml"

_SIGNED_ENTRIES = (ENTRY_DEX, ENTRY_STRINGS, ENTRY_ICON, ENTRY_APP_MANIFEST)


@dataclass
class Apk:
    """A (possibly signed) application package."""

    entries: Dict[str, bytes]
    manifest: Manifest
    cert: Certificate

    # -- reads ----------------------------------------------------------------

    def dex(self) -> DexFile:
        """Parse classes.dex (what apktool/dex2jar do for the attacker)."""
        return deserialize_dex(self.entry(ENTRY_DEX))

    def resources(self) -> Resources:
        meta = self.entry(ENTRY_APP_MANIFEST).decode("utf-8").splitlines()
        fields = dict(line.split("=", 1) for line in meta if "=" in line)
        resources = Resources.from_xml(
            self.entry(ENTRY_STRINGS).decode("utf-8"),
            icon=self.entry(ENTRY_ICON),
            app_name=fields.get("name", "App"),
            author=fields.get("author", ""),
        )
        resources.assets = {
            name[len("assets/") :]: data
            for name, data in self.entries.items()
            if name.startswith("assets/")
        }
        return resources

    def entry(self, name: str) -> bytes:
        try:
            return self.entries[name]
        except KeyError:
            raise ApkError(f"APK has no entry {name!r}") from None

    def total_size(self) -> int:
        """Approximate APK size in bytes (code-size-increase metric)."""
        return sum(len(data) for data in self.entries.values())

    # -- integrity ---------------------------------------------------------------

    def verify(self) -> None:
        """Installer-side check: digests match and signature verifies."""
        if not self.manifest.matches(self.entries):
            raise SignatureError("MANIFEST.MF digests do not match APK entries")
        verify_apk_entries(self.manifest.serialize(), self.cert)

    def install_view(self) -> InstalledPackage:
        """Install the APK: verify, then snapshot what the system keeps."""
        self.verify()
        return InstalledPackage(
            cert_fingerprint_hex=self.cert.fingerprint_hex(),
            manifest_digests=dict(self.manifest.digests),
            resources=dict(self.resources().strings),
            code_blob=self.entry(ENTRY_DEX),
        )


def build_apk(dex: DexFile, resources: Resources, keypair: RSAKeyPair) -> Apk:
    """Package and sign an app (the final "Packaging" stage of Fig. 1)."""
    app_manifest = (
        f"name={resources.app_name}\nauthor={resources.author}\n".encode("utf-8")
    )
    entries = {
        ENTRY_DEX: serialize_dex(dex),
        ENTRY_STRINGS: resources.serialize(),
        ENTRY_ICON: resources.icon,
        ENTRY_APP_MANIFEST: app_manifest,
    }
    for name, data in resources.assets.items():
        entries[f"assets/{name}"] = data
    manifest = Manifest.over_entries(entries)
    cert = sign_apk_entries(manifest.serialize(), keypair)
    return Apk(entries=entries, manifest=manifest, cert=cert)
