"""App resources: strings.xml, icon, author metadata.

``strings.xml`` is modeled as an ordered mapping of string keys to
values; it matters to BombDroid because digest fragments are hidden in
it steganographically (Section 4.1, Code Digest Comparison) and because
repackagers commonly swap the app name/author strings and the icon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ApkError


@dataclass
class Resources:
    """Everything under ``res/`` plus the app metadata attackers retouch.

    ``assets`` models the images/audio/data files that dominate real APK
    sizes -- code is typically a small fraction of an APK, which is the
    denominator behind the paper's single-digit size-increase numbers.
    """

    strings: Dict[str, str] = field(default_factory=dict)
    icon: bytes = b"\x89ICON\x00default"
    app_name: str = "App"
    author: str = "developer"
    assets: Dict[str, bytes] = field(default_factory=dict)

    def to_xml(self) -> str:
        """Render strings.xml (canonical order, used for digesting)."""
        lines = ['<?xml version="1.0" encoding="utf-8"?>', "<resources>"]
        for key in sorted(self.strings):
            value = _xml_escape(self.strings[key])
            lines.append(f'    <string name="{key}">{value}</string>')
        lines.append("</resources>")
        return "\n".join(lines)

    @classmethod
    def from_xml(cls, text: str, icon: bytes = b"", app_name: str = "App", author: str = "") -> "Resources":
        """Parse the subset of XML produced by :meth:`to_xml`."""
        strings: Dict[str, str] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line.startswith("<string name="):
                continue
            if not line.endswith("</string>"):
                raise ApkError(f"malformed strings.xml line: {line!r}")
            try:
                key = line.split('"', 2)[1]
                value = line.split(">", 1)[1].rsplit("</string>", 1)[0]
            except IndexError:
                raise ApkError(f"malformed strings.xml line: {line!r}") from None
            strings[key] = _xml_unescape(value)
        return cls(strings=strings, icon=icon, app_name=app_name, author=author)

    def serialize(self) -> bytes:
        return self.to_xml().encode("utf-8")

    def copy(self) -> "Resources":
        return Resources(
            strings=dict(self.strings),
            icon=self.icon,
            app_name=self.app_name,
            author=self.author,
            assets=dict(self.assets),
        )


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _xml_unescape(text: str) -> str:
    return (
        text.replace("&quot;", '"')
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
    )
