"""MANIFEST.MF: per-entry content digests.

When an APK is built, every entry gets a SHA-1 digest recorded in
MANIFEST.MF; the signature then covers the manifest.  Once the app is
installed, the manifest is managed by the Android system and app
processes cannot rewrite it -- which is why code-digest comparison
(reading ``android.pm.get_manifest_digest`` at runtime) detects a
repackager's modified ``classes.dex``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.crypto import sha1_hex
from repro.errors import ApkError


@dataclass
class Manifest:
    """Entry name -> SHA-1 hex digest."""

    digests: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def over_entries(cls, entries: Dict[str, bytes]) -> "Manifest":
        """Digest every entry of an APK-to-be."""
        return cls({name: sha1_hex(data) for name, data in sorted(entries.items())})

    def serialize(self) -> bytes:
        lines = ["Manifest-Version: 1.0"]
        for name in sorted(self.digests):
            lines.append(f"Name: {name}")
            lines.append(f"SHA1-Digest: {self.digests[name]}")
        return ("\n".join(lines) + "\n").encode("ascii")

    @classmethod
    def parse(cls, blob: bytes) -> "Manifest":
        digests: Dict[str, str] = {}
        name = None
        for line in blob.decode("ascii").splitlines():
            if line.startswith("Name: "):
                name = line[len("Name: ") :]
            elif line.startswith("SHA1-Digest: "):
                if name is None:
                    raise ApkError("digest line before any Name line")
                digests[name] = line[len("SHA1-Digest: ") :]
                name = None
        return cls(digests)

    def matches(self, entries: Dict[str, bytes]) -> bool:
        """True when every entry's content matches its recorded digest."""
        if set(entries) != set(self.digests):
            return False
        return all(sha1_hex(entries[name]) == digest for name, digest in self.digests.items())

    def get(self, entry: str) -> str:
        try:
            return self.digests[entry]
        except KeyError:
            raise ApkError(f"no manifest entry for {entry!r}") from None
