"""APK packaging model: container, manifest digests, signing, resources.

Mirrors the pieces of the APK format that repackaging detection reads:

* ``CERT.RSA`` -- the developer certificate; its public key is what
  public-key-comparison detection compares (:mod:`repro.apk.signing`);
* ``MANIFEST.MF`` -- per-entry SHA-1 digests (:mod:`repro.apk.manifest`);
* ``res/strings.xml`` -- string resources, including the steganographic
  carrier for hidden digests (:mod:`repro.apk.resources`,
  :mod:`repro.apk.stego`);
* the container itself with pack/unpack/verify/install
  (:mod:`repro.apk.package`).
"""

from repro.apk.manifest import Manifest
from repro.apk.resources import Resources
from repro.apk.signing import Certificate, sign_apk_entries, verify_apk_entries
from repro.apk.package import Apk, build_apk
from repro.apk.io import (
    apk_from_bytes,
    apk_to_bytes,
    load_apk,
    save_apk,
    save_apk_with_manifest,
)
from repro.apk.stego import embed_in_cover, extract_from_cover, stego_capacity

__all__ = [
    "Manifest",
    "Resources",
    "Certificate",
    "sign_apk_entries",
    "verify_apk_entries",
    "Apk",
    "build_apk",
    "apk_from_bytes",
    "apk_to_bytes",
    "load_apk",
    "save_apk",
    "save_apk_with_manifest",
    "embed_in_cover",
    "extract_from_cover",
    "stego_capacity",
]
