"""APK signing: CERT.RSA and signature verification.

Each developer owns a unique RSA key pair.  The APK carries the public
key and a signature over MANIFEST.MF; the system verifies it at install
time.  A repackager cannot produce the original developer's signature,
so the repackaged APK necessarily carries a *different* public key --
the invariant every detection payload relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import RSAKeyPair, RSAPublicKey
from repro.errors import ApkError, SignatureError


@dataclass(frozen=True)
class Certificate:
    """CERT.RSA: the signer's public key plus the manifest signature."""

    public_key: RSAPublicKey
    signature: int

    def serialize(self) -> bytes:
        key_blob = self.public_key.to_bytes()
        sig_blob = self.signature.to_bytes((self.signature.bit_length() + 7) // 8 or 1, "big")
        return (
            len(key_blob).to_bytes(2, "big")
            + key_blob
            + len(sig_blob).to_bytes(2, "big")
            + sig_blob
        )

    @classmethod
    def parse(cls, blob: bytes) -> "Certificate":
        if len(blob) < 4:
            raise ApkError("truncated CERT.RSA")
        key_len = int.from_bytes(blob[:2], "big")
        key_blob = blob[2 : 2 + key_len]
        offset = 2 + key_len
        sig_len = int.from_bytes(blob[offset : offset + 2], "big")
        sig_blob = blob[offset + 2 : offset + 2 + sig_len]
        if len(key_blob) != key_len or len(sig_blob) != sig_len:
            raise ApkError("malformed CERT.RSA")
        return cls(
            public_key=RSAPublicKey.from_bytes(key_blob),
            signature=int.from_bytes(sig_blob, "big"),
        )

    def fingerprint_hex(self) -> str:
        """The hex key fingerprint exposed via ``android.pm.get_public_key``."""
        return self.public_key.fingerprint().hex()


def sign_apk_entries(manifest_blob: bytes, keypair: RSAKeyPair) -> Certificate:
    """Sign the serialized manifest; returns the certificate to embed."""
    return Certificate(public_key=keypair.public, signature=keypair.sign(manifest_blob))


def verify_apk_entries(manifest_blob: bytes, cert: Certificate) -> None:
    """Raise :class:`SignatureError` unless the signature checks out."""
    if not cert.public_key.verify(manifest_blob, cert.signature):
        raise SignatureError("APK signature does not verify against CERT.RSA")
