"""Symbolic execution over the repro ISA (the TriggerScope role).

Explores a method's paths with symbolic inputs, accumulating path
constraints.  At each conditional the solver decides which sides are
feasible; paths requiring a hash preimage are *blocked* -- the explorer
records the blockage (the bomb is found, its payload is not exposed),
which is exactly how the paper argues G1.

Against the naive baseline and SSN the same engine wins: the trigger
``X == c`` solves immediately (yielding a concrete triggering input),
``rand() < threshold`` is just a satisfiable input constraint, and a
plaintext key comparison leaks the key constant to the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.attacks.solver import (
    BinExpr,
    Const,
    Constraint,
    EqExpr,
    HashExpr,
    NotExpr,
    Solver,
    Sym,
    SymExpr,
    Unsat,
    make_binop,
)
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op
from repro.errors import UnsolvableConstraint
from repro.vm.events import declared_events, handler_name_for

_BINOP_NAMES = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.DIV: "div", Op.REM: "rem",
    Op.AND: "and", Op.OR: "or", Op.XOR: "xor", Op.SHL: "shl", Op.SHR: "shr",
}
_LIT_BINOP_NAMES = {
    Op.ADD_LIT: "add", Op.SUB_LIT: "sub", Op.MUL_LIT: "mul", Op.DIV_LIT: "div",
    Op.REM_LIT: "rem", Op.AND_LIT: "and", Op.OR_LIT: "or", Op.XOR_LIT: "xor",
}
_COMPARES = {
    Op.IF_EQ: "eq", Op.IF_NE: "ne", Op.IF_LT: "lt",
    Op.IF_GE: "ge", Op.IF_GT: "gt", Op.IF_LE: "le",
}

_DETECTION_APIS = (
    "android.pm.get_public_key",
    "android.pm.get_manifest_digest",
    "android.pm.get_method_hash",
)


@dataclass
class PathResult:
    """One explored path."""

    method: str
    status: str                      # completed | hash_blocked | crash | budget
    constraints: List[Constraint] = field(default_factory=list)
    model: Optional[Dict[str, object]] = None
    detection_reached: bool = False
    leaked_key_constants: List[str] = field(default_factory=list)
    bomb_sites_seen: Set[str] = field(default_factory=set)
    hash_walls: int = 0
    reflection_targets: List[str] = field(default_factory=list)


@dataclass
class _State:
    pc: int
    registers: Dict[int, SymExpr]
    statics: Dict[str, SymExpr]
    constraints: List[Constraint]
    steps: int = 0
    bomb_sites: Set[str] = field(default_factory=set)
    detection: bool = False
    leaked: List[str] = field(default_factory=list)
    reflections: List[str] = field(default_factory=list)
    hash_walls: int = 0

    def fork(self, pc: int) -> "_State":
        return _State(
            pc=pc,
            registers=dict(self.registers),
            statics=dict(self.statics),
            constraints=list(self.constraints),
            steps=self.steps,
            bomb_sites=set(self.bomb_sites),
            detection=self.detection,
            leaked=list(self.leaked),
            reflections=list(self.reflections),
            hash_walls=self.hash_walls,
        )


class SymbolicExplorer:
    """Bounded DFS path exploration of one method."""

    def __init__(
        self,
        concrete_statics: Optional[Dict[str, object]] = None,
        max_paths: int = 128,
        max_steps: int = 3000,
    ) -> None:
        self._concrete_statics = concrete_statics or {}
        self._max_paths = max_paths
        self._max_steps = max_steps
        self._solver = Solver()
        #: paths blocked by unsolvable hash constraints (explorer-wide:
        #: blocked forks are discarded, so per-path counters would lose
        #: exactly the events we care about).
        self.hash_walls = 0

    # ------------------------------------------------------------------

    def explore_method(self, method: DexMethod) -> List[PathResult]:
        initial = _State(
            pc=0,
            registers={
                index: Sym(f"arg{index}", "any") for index in range(method.params)
            },
            statics={},
            constraints=[],
        )
        results: List[PathResult] = []
        stack = [initial]
        labels = method.label_map()

        while stack and len(results) < self._max_paths:
            state = stack.pop()
            result = self._run_path(method, state, stack, labels)
            if result is not None:
                results.append(result)
        return results

    # ------------------------------------------------------------------

    def _run_path(
        self,
        method: DexMethod,
        state: _State,
        stack: List[_State],
        labels: Dict[str, int],
    ) -> Optional[PathResult]:
        instructions = method.instructions
        regs = state.registers

        while state.pc < len(instructions):
            if state.steps > self._max_steps:
                return self._finish(method, state, "budget")
            state.steps += 1
            instr = instructions[state.pc]
            op = instr.op

            if op is Op.LABEL or op is Op.NOP:
                state.pc += 1
                continue
            if op is Op.CONST:
                regs[instr.dst] = Const(instr.value)
            elif op is Op.MOVE:
                regs[instr.dst] = regs.get(instr.a, Sym.fresh("undef"))
            elif op in _BINOP_NAMES:
                regs[instr.dst] = make_binop(
                    _BINOP_NAMES[op],
                    regs.get(instr.a, Sym.fresh("undef")),
                    regs.get(instr.b, Sym.fresh("undef")),
                )
            elif op in _LIT_BINOP_NAMES:
                regs[instr.dst] = make_binop(
                    _LIT_BINOP_NAMES[op],
                    regs.get(instr.a, Sym.fresh("undef")),
                    Const(instr.value),
                )
            elif op in (Op.NEG, Op.NOT):
                regs[instr.dst] = make_binop(
                    "sub" if op is Op.NEG else "xor",
                    Const(0 if op is Op.NEG else -1),
                    regs.get(instr.a, Sym.fresh("undef")),
                )
            elif op is Op.CMP:
                regs[instr.dst] = Sym.fresh("cmp")
            elif op is Op.GOTO:
                state.pc = labels[instr.target]
                continue
            elif op in _COMPARES:
                return self._branch(
                    method, state, stack, labels,
                    Constraint(_COMPARES[op],
                               regs.get(instr.a, Sym.fresh("undef")),
                               regs.get(instr.b, Sym.fresh("undef"))),
                    labels[instr.target],
                )
            elif op in (Op.IF_EQZ, Op.IF_NEZ, Op.IF_LTZ, Op.IF_GEZ):
                relation = {
                    Op.IF_EQZ: "eq", Op.IF_NEZ: "ne",
                    Op.IF_LTZ: "lt", Op.IF_GEZ: "ge",
                }[op]
                return self._branch(
                    method, state, stack, labels,
                    Constraint(relation,
                               regs.get(instr.a, Sym.fresh("undef")),
                               Const(0)),
                    labels[instr.target],
                )
            elif op is Op.SWITCH:
                return self._switch(method, state, stack, labels, instr)
            elif op in (Op.RETURN, Op.RETURN_VOID):
                return self._finish(method, state, "completed")
            elif op is Op.THROW:
                return self._finish(method, state, "crash")
            elif op is Op.SGET:
                regs[instr.dst] = self._static(state, instr.value)
            elif op is Op.SPUT:
                state.statics[instr.value] = regs.get(instr.a, Sym.fresh("undef"))
            elif op in (Op.NEW_INSTANCE, Op.NEW_ARRAY, Op.AGET, Op.ARRAY_LEN, Op.IGET):
                if instr.dst is not None:
                    regs[instr.dst] = Sym.fresh("heap")
            elif op in (Op.APUT, Op.IPUT):
                pass  # heap summarized away
            elif op is Op.INVOKE:
                self._invoke(state, instr)
            state.pc += 1

        return self._finish(method, state, "completed")

    # ------------------------------------------------------------------

    def _static(self, state: _State, name: str) -> SymExpr:
        if name in state.statics:
            return state.statics[name]
        if name in self._concrete_statics:
            value = self._concrete_statics[name]
            if isinstance(value, (int, str, bool, type(None))):
                return Const(value)
        fresh = Sym(f"static:{name}", "any")
        state.statics[name] = fresh
        return fresh

    def _invoke(self, state: _State, instr) -> None:
        name = instr.value
        regs = state.registers
        args = [regs.get(r, Sym.fresh("undef")) for r in instr.args]

        result: SymExpr
        folded = _fold_library_call(name, args)
        if folded is not None:
            if instr.dst is not None:
                regs[instr.dst] = folded
            return
        if name == "java.str.equals":
            result = EqExpr(args[0], args[1])
        elif name == "bomb.hash":
            salt = args[1].value if isinstance(args[1], Const) else "?"
            bomb_id = args[2].value if len(args) > 2 and isinstance(args[2], Const) else "?"
            state.bomb_sites.add(str(bomb_id))
            result = HashExpr(args[0], str(salt))
        elif name in ("bomb.derive", "bomb.decrypt", "bomb.load_run"):
            # Reaching here needs a solved hash; treated as opaque.
            result = Sym.fresh("opaque")
        elif name in _DETECTION_APIS:
            state.detection = True
            result = Sym("pubkey" if name.endswith("public_key") else "digest", "str")
        elif name == "android.reflect.call":
            result = Sym.fresh("reflect", "str")
            if isinstance(args[0], Const):
                target = str(args[0].value)
                state.reflections.append(target)
                if target in _DETECTION_APIS:
                    state.detection = True
                    # The attacker now knows this value IS the public
                    # key: any comparison against it leaks the constant.
                    result = Sym("pubkey", "str")
        elif name == "android.env.get":
            env_name = args[0].value if isinstance(args[0], Const) else "?"
            result = Sym(f"env:{env_name}", "any")
        elif name == "java.rand.next":
            result = Sym.fresh("rand", "int")
            bound = args[0]
            state.constraints.append(Constraint("ge", result, Const(0)))
            if isinstance(bound, Const):
                state.constraints.append(Constraint("lt", result, bound))
        elif name == "java.str.length":
            result = Sym.fresh("strlen", "int")
        elif name.startswith("java.str."):
            if isinstance(args[0], Const) and all(isinstance(a, Const) for a in args):
                result = Sym.fresh("strfold", "any")
            else:
                result = Sym.fresh("strop", "any")
        else:
            result = Sym.fresh(f"call:{name}", "any")

        if instr.dst is not None:
            regs[instr.dst] = result

        # A plaintext key comparison leaks the constant to the attacker.
        if isinstance(result, EqExpr):
            for side, other in ((result.left, result.right), (result.right, result.left)):
                if (
                    isinstance(side, Sym)
                    and side.name in ("pubkey", "digest")
                    and isinstance(other, Const)
                ):
                    state.leaked.append(str(other.value))

    # ------------------------------------------------------------------

    def _branch(
        self,
        method: DexMethod,
        state: _State,
        stack: List[_State],
        labels: Dict[str, int],
        constraint: Constraint,
        target_pc: int,
    ) -> Optional[PathResult]:
        taken = state.fork(target_pc)
        taken.constraints.append(constraint)
        fall = state
        fall.constraints.append(constraint.negated())
        fall.pc += 1

        taken_ok = self._feasible(taken)
        fall_ok = self._feasible(fall)

        if taken_ok and fall_ok:
            stack.append(taken)
            return self._run_path(method, fall, stack, labels)
        if taken_ok:
            return self._run_path(method, taken, stack, labels)
        if fall_ok:
            return self._run_path(method, fall, stack, labels)
        return self._finish(method, state, "unsat")

    def _switch(self, method, state, stack, labels, instr) -> Optional[PathResult]:
        subject = state.registers.get(instr.a, Sym.fresh("undef"))
        branches: List[_State] = []
        default = state.fork(state.pc + 1)
        for key, label in instr.value.items():
            case = state.fork(labels[label])
            case.constraints.append(Constraint("eq", subject, Const(key)))
            default.constraints.append(Constraint("ne", subject, Const(key)))
            if self._feasible(case):
                branches.append(case)
        if self._feasible(default):
            branches.append(default)
        if not branches:
            return self._finish(method, state, "unsat")
        first, rest = branches[0], branches[1:]
        stack.extend(rest)
        return self._run_path(method, first, stack, method.label_map())

    def _feasible(self, state: _State) -> bool:
        try:
            self._solver.solve(state.constraints)
            return True
        except Unsat:
            return False
        except UnsolvableConstraint:
            self.hash_walls += 1
            state.hash_walls += 1
            return False

    def _finish(self, method: DexMethod, state: _State, status: str) -> PathResult:
        model = None
        if status in ("completed", "crash"):
            try:
                model = self._solver.solve(state.constraints)
            except (Unsat, UnsolvableConstraint):
                model = None
        return PathResult(
            method=method.qualified_name,
            status=status,
            constraints=state.constraints,
            model=model,
            detection_reached=state.detection,
            leaked_key_constants=state.leaked,
            bomb_sites_seen=state.bomb_sites,
            hash_walls=state.hash_walls,
            reflection_targets=state.reflections,
        )


class SymbolicAttack:
    """Whole-app symbolic sweep: explore every event handler."""

    def __init__(
        self,
        concrete_statics: Optional[Dict[str, object]] = None,
        max_paths: int = 64,
        max_steps: int = 2500,
    ) -> None:
        self._statics = concrete_statics
        self._max_paths = max_paths
        self._max_steps = max_steps

    def run(self, apk: Apk) -> AttackResult:
        dex = apk.dex()
        explorer = SymbolicExplorer(
            concrete_statics=self._statics,
            max_paths=self._max_paths,
            max_steps=self._max_steps,
        )
        all_paths: List[PathResult] = []
        for kind, class_name in declared_events(dex):
            method = dex.classes[class_name].methods[handler_name_for(kind)]
            all_paths.extend(explorer.explore_method(method))

        detection_paths = [
            p for p in all_paths if p.detection_reached and p.model is not None
        ]
        hash_walls = explorer.hash_walls
        bomb_sites = set()
        for path in all_paths:
            bomb_sites |= path.bomb_sites_seen
        leaked = sorted({key for p in all_paths for key in p.leaked_key_constants})
        reflections = sorted({t for p in all_paths for t in p.reflection_targets})

        return AttackResult(
            attack="symbolic_execution",
            defeated_defense=bool(detection_paths),
            bombs_found=sorted(bomb_sites),
            bombs_exposed=[p.method for p in detection_paths],
            details={
                "paths_explored": len(all_paths),
                "hash_walls": hash_walls,
                "detection_paths": len(detection_paths),
                "leaked_key_constants": leaked,
                "reflection_targets": reflections,
                "trigger_models": [
                    p.model for p in detection_paths[:5] if p.model
                ],
            },
            notes=(
                f"{hash_walls} paths blocked by unsolvable hash constraints"
                if hash_walls
                else "no hash obstacles encountered"
            ),
        )


_STR_FOLDS = {
    "java.str.equals": lambda a, b: a == b,
    "java.str.starts_with": lambda a, b: a.startswith(b),
    "java.str.ends_with": lambda a, b: a.endswith(b),
    "java.str.contains": lambda a, b: b in a,
    "java.str.length": lambda a: len(a),
    "java.str.concat": lambda a, b: a + (str(b) if isinstance(b, int) else b),
    "java.str.substring": lambda a, i, j: a[i:j],
    "java.str.char_at": lambda a, i: ord(a[i]),
    "java.str.index_of": lambda a, b: a.find(b),
    "java.str.from_int": lambda a: str(a),
    "java.str.to_int": lambda a: int(a),
    "java.math.abs": abs,
    "java.math.min": min,
    "java.math.max": max,
}


def _fold_library_call(name: str, args) -> Optional[Const]:
    """Concretely evaluate a pure library call when every operand is a
    constant -- this is what lets the engine walk straight through
    SSN's string-deobfuscation loop and read the reflection target."""
    fold = _STR_FOLDS.get(name)
    if fold is None:
        return None
    if not all(isinstance(a, Const) for a in args):
        return None
    try:
        return Const(fold(*(a.value for a in args)))
    except Exception:
        return None
