"""Blackbox-fuzzing attack harness (Table 4, Figure 5).

Runs each fuzzer against a protected app on an attacker lab device for
a simulated hour and reports:

* the fraction of outer trigger conditions satisfied (Table 4), and
* the fraction of double-trigger bombs *fully* triggered over time
  (Figure 5's curve).

For every fully triggered bomb the attacker can trace back and disable
it (they saw the payload); the survival rate of the remaining bombs is
the defense's resilience headline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.fuzzing.generators import EventGenerator, GENERATORS
from repro.fuzzing.session import FuzzSession, SessionResult
from repro.vm.device import DeviceProfile, attacker_lab_profiles


@dataclass
class FuzzAttackOutcome:
    """One fuzzer's hour against one app."""

    fuzzer: str
    outer_satisfied: int
    fully_triggered: int
    total_bombs: int
    events_played: int
    coverage: float
    trigger_curve: List[tuple]

    @property
    def outer_satisfied_rate(self) -> float:
        return self.outer_satisfied / self.total_bombs if self.total_bombs else 0.0

    @property
    def fully_triggered_rate(self) -> float:
        return self.fully_triggered / self.total_bombs if self.total_bombs else 0.0


class FuzzingAttack:
    """Drive one or more fuzzers against a protected app."""

    def __init__(
        self,
        duration_seconds: float = 3600.0,
        seed: int = 0,
        device: Optional[DeviceProfile] = None,
    ) -> None:
        self._duration = duration_seconds
        self._seed = seed
        self._device = device or attacker_lab_profiles(1, seed=seed)[0]

    def run_one(
        self,
        apk: Apk,
        fuzzer_name: str,
        real_bomb_ids: Sequence[str],
    ) -> FuzzAttackOutcome:
        generator_cls: Type[EventGenerator] = GENERATORS[fuzzer_name]
        dex = apk.dex()
        session = FuzzSession(
            dex,
            generator_cls(dex, seed=self._seed),
            self._device.copy(),
            package=apk.install_view(),
            seed=self._seed,
        )
        result = session.run_for(self._duration, sample_every=60.0)
        real = set(real_bomb_ids)
        curve = [
            (elapsed, count) for elapsed, count in result.trigger_curve
        ]
        return FuzzAttackOutcome(
            fuzzer=fuzzer_name,
            outer_satisfied=len(result.bombs_outer_satisfied & real),
            fully_triggered=len(result.bombs_inner_met & real),
            total_bombs=len(real),
            events_played=result.events_played,
            coverage=result.coverage,
            trigger_curve=curve,
        )

    def run_all(
        self,
        apk: Apk,
        real_bomb_ids: Sequence[str],
        fuzzers: Sequence[str] = ("monkey", "puma", "androidhooker", "dynodroid"),
    ) -> Dict[str, FuzzAttackOutcome]:
        return {
            name: self.run_one(apk, name, real_bomb_ids) for name in fuzzers
        }

    def as_attack_result(self, outcome: FuzzAttackOutcome) -> AttackResult:
        return AttackResult(
            attack=f"blackbox_fuzzing({outcome.fuzzer})",
            defeated_defense=outcome.fully_triggered_rate > 0.5,
            bombs_found=[f"outer{index}" for index in range(outcome.outer_satisfied)],
            bombs_exposed=[f"full{index}" for index in range(outcome.fully_triggered)],
            details={
                "outer_satisfied_rate": outcome.outer_satisfied_rate,
                "fully_triggered_rate": outcome.fully_triggered_rate,
                "events_played": outcome.events_played,
            },
            notes=(
                f"{outcome.outer_satisfied_rate:.1%} outer conditions satisfied, "
                f"{outcome.fully_triggered_rate:.1%} bombs fully triggered"
            ),
        )
