"""API-interception (vtable-hijack) attack and the code-scan counter.

Section 4.1: "it is indeed possible to intercept calls to getPublicKey
through vtable hijacking; scanning can be used to check the integrity
of the vtable or the function body."

The scenario: suppose the attacker ships a modification that makes the
identity APIs lie -- ``getPublicKey`` and the manifest digests return
the *original* developer's values.  (On non-jailbroken user devices the
paper's threat model rules this out; this attack explores the
hypothetical where it works.)  Public-key and digest bombs are then
blind.  Code-snippet-scanning bombs are not: they hash the loaded
method bodies, and the attacker's actual code edits (the adware they
inserted, the hooks themselves) still show.

``VTableHijackAttack`` tampers with a cleartext (hot) method, runs the
app under a *perfectly spoofed* package identity, and reports which
detection methods still fire.  Sessions are driven through
:class:`~repro.fuzzing.session.FuzzSession` (Dynodroid with coverage
feedback -- the attacker's best exerciser), and mesh content pins count
as a surviving channel: a meshed bomb that trips on the tampered hot
method defeats the hijack even though the identity APIs never blinked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.core.config import DetectionMethod
from repro.core.stats import InstrumentationReport
from repro.dex import instructions as ins
from repro.fuzzing.generators import DynodroidGenerator
from repro.fuzzing.session import FuzzSession
from repro.vm.device import DevicePopulation
from repro.vm.events import Event


class VTableHijackAttack:
    """Spoof the identity APIs, tamper with cleartext code, observe."""

    def __init__(self, seed: int = 0, sessions: int = 6, events: int = 600) -> None:
        self._seed = seed
        self._sessions = sessions
        self._events = events

    def run(
        self,
        protected: Apk,
        report: InstrumentationReport,
        tamper_method: Optional[str] = None,
    ) -> AttackResult:
        """Tamper with ``tamper_method`` (default: a hot method), spoof
        the package identity, and fuzz; returns which bombs still fired.
        """
        dex = protected.dex()
        target = tamper_method or (report.hot_methods[0] if report.hot_methods else None)
        if target is None:
            raise ValueError("no method available to tamper with")
        method = dex.get_method(target)
        # The attacker's edit: an exfiltration beacon in a hot path.
        patch_reg = method.grow_registers(1)
        method.instructions.insert(0, ins.invoke(None, "android.log.i", (patch_reg,)))
        method.instructions.insert(0, ins.const(patch_reg, "ad-sdk-init"))
        method.invalidate()
        method.validate()

        # Perfect identity spoof: the runtime's package view is the
        # ORIGINAL one -- getPublicKey and manifest digests answer as if
        # nothing happened.  Only the loaded code itself differs.
        spoofed_package = protected.install_view()

        detections: List[str] = []
        mesh_tripped: Set[str] = set()
        population = DevicePopulation(seed=self._seed)
        for index in range(self._sessions):
            session = FuzzSession(
                dex,
                DynodroidGenerator(dex, seed=self._seed * 100 + index),
                population.sample(),
                package=spoofed_package,
                seed=self._seed * 100 + index,
            )
            result = session.run_for(self._events * Event.DURATION)
            detections.extend(sorted(result.bombs_detected))
            mesh_tripped |= result.bombs_mesh_tripped

        by_method: Dict[str, int] = {}
        for bomb_id in detections:
            try:
                bomb = report.bomb_by_id(bomb_id)
            except KeyError:
                continue
            key = bomb.detection.value if bomb.detection else "?"
            by_method[key] = by_method.get(key, 0) + 1

        scan_fired = by_method.get(DetectionMethod.CODE_SCAN.value, 0) > 0
        identity_fired = (
            by_method.get(DetectionMethod.PUBLIC_KEY.value, 0)
            + by_method.get(DetectionMethod.CODE_DIGEST.value, 0)
        ) > 0
        mesh_caught = bool(mesh_tripped)
        if scan_fired and mesh_caught:
            notes = (
                "code scanning and mesh content pins both caught the "
                "tamper despite a perfect identity spoof"
            )
        elif scan_fired:
            notes = (
                "code scanning detected the tamper despite a perfect "
                "identity spoof"
            )
        elif mesh_caught:
            notes = (
                "mesh content pins tripped on the tampered hot method "
                "despite a perfect identity spoof"
            )
        else:
            notes = "no scan bombs reached; identity spoof held"
        return AttackResult(
            attack="vtable_hijack",
            # The hijack succeeds only if NO detection channel survives
            # -- neither a detection proper nor a mesh content pin.
            defeated_defense=not detections and not mesh_caught,
            bombs_found=[],
            bombs_exposed=sorted(set(detections) | mesh_tripped),
            details={
                "tampered_method": target,
                "detections_by_method": by_method,
                "identity_spoof_held": not identity_fired,
                "code_scan_caught_it": scan_fired,
                "mesh_trips": len(mesh_tripped),
            },
            notes=notes,
        )
