"""Attack-side signature library for bomb prologues.

Satellite of the mesh PR: the deletion and text-search attacks used to
hard-code their pattern knowledge (a literal ``bomb.hash`` match and a
``pc + 6`` branch lookahead).  This module makes that knowledge an
explicit, configurable artifact shared by every pattern-matching
adversary, in three tiers of sophistication:

1. :data:`CLASSIC_SIGNATURE` -- the published single-pattern strip:
   anchor on the literal ``bomb.hash`` invoke, patch the first
   ``if_eqz`` within a five-instruction window.  Meshed apps morph
   prologues specifically so this signature misses at least every
   other bomb.
2. :data:`EXTENDED_SIGNATURE` -- the same anchor with a wider window
   and more branch opcodes: catches the SPLIT and DECOY shapes, still
   blind to per-app alias symbols.
3. :func:`strip_learned` -- the adaptive multi-pattern stripper: it
   *learns* the one invariant every bomb must carry (a long bytes
   ciphertext constant, which ordinary app code never embeds) and
   retargets every forward conditional branch shielding it.  Aliases
   and shape morphs do not help against it -- but it can no longer
   tell a guard branch from adjacent app logic, so on a woven app the
   strip is corrupting (exactly the trade-off weaving is designed to
   force).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dex import instructions as ins
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op

#: What a realistic attacker greps disassembly for (shared with the
#: ``text-search-surface`` lint rule's adversary model).
SUSPICIOUS_PATTERNS = (
    "get_public_key",
    "get_manifest_digest",
    "get_method_hash",
    "bomb.hash",
    "bomb.decrypt",
    "bomb.load_run",
)

#: App bytecode never embeds long byte blobs; payload ciphertexts are
#: the only bytes constants this size, so they are a learnable anchor.
MIN_CIPHERTEXT_LEN = 32

#: How far before a ciphertext constant the adaptive stripper considers
#: conditional branches part of the bomb prologue.
DEFAULT_LEARN_WINDOW = 16

#: Tighter window for *liveness*: in every emitted prologue shape the
#: final shielding branch sits within three instructions of the
#: ciphertext constant (branch, key-derive invoke, const), while real
#: app code is always a full prologue head (>= 7 instructions) away, so
#: this window sees bomb-internal branches only.
LIVE_WINDOW = 4


@dataclass(frozen=True)
class PrologueSignature:
    """One describable bomb-prologue pattern.

    ``branch_window`` bounds the lookahead after a trigger invoke: pcs
    ``invoke_pc + 1 .. invoke_pc + branch_window - 1`` are scanned (the
    historical hard-coded behavior is ``branch_window=6``).  Up to
    ``max_branches`` branches whose opcode is in ``branch_ops`` are
    rewritten per site.
    """

    name: str
    trigger_invokes: Tuple[str, ...] = ("bomb.hash",)
    branch_window: int = 6
    branch_ops: Tuple[Op, ...] = (Op.IF_EQZ,)
    max_branches: int = 1


#: The published Listing-3 strip (exact historical strip_bombs behavior).
CLASSIC_SIGNATURE = PrologueSignature(name="listing3-classic")

#: Wider single-pattern strip: catches split/decoy prologue morphs but
#: still anchors on the canonical invoke name, so aliased bombs survive.
EXTENDED_SIGNATURE = PrologueSignature(
    name="extended-window",
    branch_window=16,
    branch_ops=(Op.IF_EQZ, Op.IF_NEZ),
    max_branches=4,
)


def find_trigger_sites(
    dex: DexFile, signature: PrologueSignature = CLASSIC_SIGNATURE
) -> List[Tuple[DexMethod, int]]:
    """``(method, pc)`` of every trigger invoke the signature matches."""
    sites: List[Tuple[DexMethod, int]] = []
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.INVOKE and instr.value in signature.trigger_invokes:
                sites.append((method, pc))
    return sites


def strip_with_signature(
    dex: DexFile, signature: PrologueSignature = CLASSIC_SIGNATURE
) -> int:
    """Disable every prologue the signature matches; returns branches
    patched.  Matched branches are rewritten into unconditional jumps
    to their own target (the no-match continuation), so the payload
    behind them can never run."""
    patched = 0
    for method, pc in find_trigger_sites(dex, signature):
        instructions = method.instructions
        rewritten = 0
        stop = min(pc + signature.branch_window, len(instructions))
        for look in range(pc + 1, stop):
            candidate = instructions[look]
            if candidate.op in signature.branch_ops and candidate.target is not None:
                instructions[look] = ins.goto(candidate.target)
                patched += 1
                rewritten += 1
                if rewritten >= signature.max_branches:
                    break
        if rewritten:
            method.invalidate()
    return patched


def find_ciphertext_anchors(
    dex: DexFile, min_len: int = MIN_CIPHERTEXT_LEN
) -> List[Tuple[DexMethod, int]]:
    """``(method, pc)`` of every learnable payload-ciphertext constant."""
    anchors: List[Tuple[DexMethod, int]] = []
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if (
                instr.op is Op.CONST
                and isinstance(instr.value, bytes)
                and len(instr.value) >= min_len
            ):
                anchors.append((method, pc))
    return anchors


def count_live_anchors(
    dex: DexFile,
    live_window: int = LIVE_WINDOW,
    min_len: int = MIN_CIPHERTEXT_LEN,
) -> int:
    """Ciphertext anchors still shielded by a conditional forward
    branch -- i.e. bombs a strip left armed.  A fully stripped app has
    zero (every prologue branch became an unconditional jump); a meshed
    app after a single-pattern strip keeps every morphed survivor.
    A static over-approximation: it asks whether the branch in front of
    the payload is still conditional, not whether the payload is
    reachable."""
    live = 0
    for method, ct_pc in find_ciphertext_anchors(dex, min_len):
        labels = method.label_map()
        instructions = method.instructions
        for pc in range(max(0, ct_pc - live_window), ct_pc):
            instr = instructions[pc]
            if instr.target is None or not instr.op.value.startswith("if_"):
                continue
            target_pc = labels.get(instr.target)
            if target_pc is not None and target_pc > ct_pc:
                live += 1
                break
    return live


def strip_learned(
    dex: DexFile,
    learn_window: int = DEFAULT_LEARN_WINDOW,
    min_len: int = MIN_CIPHERTEXT_LEN,
) -> int:
    """The adaptive multi-pattern strip; returns branches patched.

    For each ciphertext anchor, every conditional branch shortly before
    it that jumps *forward past* the anchor is treated as a guard and
    rewritten unconditional: whatever shape or alias the prologue uses,
    its no-match branches must skip the decrypt/run sequence, and that
    control-flow fact is not obfuscatable.  The cost of this generality
    is collateral damage -- an app branch inside the window that happens
    to jump past the bomb is rewritten too, and woven bombs' no-match
    paths skip relocated app code by construction, so the stripped app
    diverges behaviorally (measured by the differential test).
    """
    patched = 0
    for method, ct_pc in find_ciphertext_anchors(dex, min_len):
        labels = method.label_map()
        instructions = method.instructions
        changed = False
        for pc in range(max(0, ct_pc - learn_window), ct_pc):
            instr = instructions[pc]
            if instr.target is None or not instr.op.value.startswith("if_"):
                continue
            target_pc = labels.get(instr.target)
            if target_pc is None or target_pc <= ct_pc:
                continue
            instructions[pc] = ins.goto(instr.target)
            patched += 1
            changed = True
        if changed:
            method.invalidate()
    return patched
