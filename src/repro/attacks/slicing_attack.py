"""Backward-slicing attack (HARVESTER, Rasthofer et al.).

"Performs backward program slicing starting from the line of suspected
code, and then executes the extracted slices to uncover the payload
behavior."

The suspected lines are the ``bomb.decrypt`` / ``bomb.load_run`` calls
(or, for naive bombs, the detection API calls).  The attack slices each
criterion, materializes the slice as a runnable method, and force-
executes it.  Encrypted bombs stop it cold: the slice contains the
*derivation* of the key from X, not the key itself, so executing the
slice with arbitrary inputs reproduces the same wrong-key failure.
"""

from __future__ import annotations

import random
from typing import List

from repro.analysis.slicing import backward_slice, extract_slice_method
from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.dex.opcodes import Op
from repro.errors import VMError
from repro.vm.device import attacker_lab_profiles
from repro.vm.interpreter import CountingTracer
from repro.vm.runtime import Runtime

_CRITERION_CALLS = (
    "bomb.decrypt",
    "bomb.load_run",
    "android.pm.get_public_key",
    "android.pm.get_manifest_digest",
)


class SlicingAttack:
    """Slice every suspicious call site and execute the slice."""

    def __init__(self, seed: int = 0, max_criteria: int = 60) -> None:
        self._seed = seed
        self._max_criteria = max_criteria

    def run(self, apk: Apk) -> AttackResult:
        rng = random.Random(self._seed)
        device = attacker_lab_profiles(1, seed=self._seed)[0]
        dex = apk.dex()

        criteria = []
        for method in dex.iter_methods():
            for pc, instr in enumerate(method.instructions):
                if instr.op is Op.INVOKE and instr.value in _CRITERION_CALLS:
                    criteria.append((method, pc, instr.value))
        criteria = criteria[: self._max_criteria]

        exposed: List[str] = []
        failures = 0
        slice_sizes = []
        for method, pc, call in criteria:
            sliced_pcs = backward_slice(method, pc)
            slice_sizes.append(len(sliced_pcs))
            slice_method = extract_slice_method(method, pc)

            run_dex = apk.dex()
            run_dex.classes[method.class_name].add_method(slice_method)
            tracer = CountingTracer()
            runtime = Runtime(
                run_dex, device=device.copy(), package=apk.install_view(),
                seed=self._seed, tracer=tracer,
            )
            args = [rng.randrange(1000) if i % 2 == 0 else "probe" for i in range(slice_method.params)]
            site = f"{method.qualified_name}@{pc}"
            try:
                runtime.invoke(slice_method.qualified_name, args, budget=200_000)
            except VMError:
                failures += 1
                continue
            if call.startswith("android.pm.") and call in tracer.invocations:
                # Naive bomb: the slice ran the cleartext detection.
                exposed.append(site)
            if runtime.bombs.bombs_with("payload_run"):
                exposed.append(site)

        return AttackResult(
            attack="slicing",
            defeated_defense=bool(exposed),
            bombs_found=[f"{m.qualified_name}@{pc}" for m, pc, _ in criteria],
            bombs_exposed=exposed,
            details={
                "criteria": len(criteria),
                "slice_execution_failures": failures,
                "mean_slice_size": (sum(slice_sizes) / len(slice_sizes)) if slice_sizes else 0,
            },
            notes=f"{failures} slice executions failed (encrypted payloads need the key)",
        )
