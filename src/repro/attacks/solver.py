"""Symbolic expressions and the path-constraint solver.

This is the constraint-solving half of the symbolic executor.  It is a
small, honest solver for the constraint language our apps produce:

* affine integer chains (``x*3 + 2 == 11``),
* congruences (``x % 8 == 5``),
* orderings and disequalities,
* string equality with literals,
* bitwise ``xor`` with constants (invertible),
* and **uninterpreted hash applications**.

The last is the point of the whole exercise: ``Hash(X|salt) == Hc``
admits no inversion rule, so the solver raises
:class:`UnsolvableConstraint` -- "as cryptographic hash functions
cannot be reversed, no constraint solvers can solve it" (Section 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SolverError, UnsolvableConstraint

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1

_fresh_counter = itertools.count()


# ---------------------------------------------------------------------------
# Expression language
# ---------------------------------------------------------------------------


class SymExpr:
    """Base class of symbolic expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Sym(SymExpr):
    """A free variable (input, environment reading, opaque call result)."""

    name: str
    kind: str = "int"  # 'int' | 'str' | 'any'

    @staticmethod
    def fresh(prefix: str, kind: str = "any") -> "Sym":
        return Sym(f"{prefix}#{next(_fresh_counter)}", kind)


@dataclass(frozen=True)
class Const(SymExpr):
    """A concrete value."""

    value: object


@dataclass(frozen=True)
class BinExpr(SymExpr):
    """Integer binary operation; at least one side is usually symbolic."""

    op: str  # add sub mul div rem and or xor shl shr
    left: SymExpr
    right: SymExpr


@dataclass(frozen=True)
class HashExpr(SymExpr):
    """Uninterpreted cryptographic hash of (argument | salt)."""

    arg: SymExpr
    salt: str


@dataclass(frozen=True)
class EqExpr(SymExpr):
    """Boolean-valued equality (e.g. the result of String.equals)."""

    left: SymExpr
    right: SymExpr


@dataclass(frozen=True)
class NotExpr(SymExpr):
    operand: SymExpr


@dataclass(frozen=True)
class Constraint:
    """``left <relation> right`` with relation in eq/ne/lt/ge/gt/le."""

    relation: str
    left: SymExpr
    right: SymExpr

    def negated(self) -> "Constraint":
        opposite = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}
        return Constraint(opposite[self.relation], self.left, self.right)


class Unsat(SolverError):
    """The path condition is contradictory."""


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------

_FOLDS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: int(a / b) if b else None,
    "rem": lambda a, b: a - int(a / b) * b if b else None,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: a >> (b & 31),
}


def make_binop(op: str, left: SymExpr, right: SymExpr) -> SymExpr:
    """Build a binop, constant-folding when both sides are concrete."""
    if isinstance(left, Const) and isinstance(right, Const):
        lv, rv = left.value, right.value
        if isinstance(lv, bool):
            lv = int(lv)
        if isinstance(rv, bool):
            rv = int(rv)
        if isinstance(lv, int) and isinstance(rv, int):
            folded = _FOLDS[op](lv, rv)
            if folded is not None:
                return Const(_wrap32(folded))
    return BinExpr(op, left, right)


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > INT_MAX else value


# ---------------------------------------------------------------------------
# Variable domains
# ---------------------------------------------------------------------------


@dataclass
class _Domain:
    """Accumulated facts about one variable."""

    forced: object = None
    has_forced: bool = False
    lo: int = INT_MIN
    hi: int = INT_MAX
    excluded: set = None
    congruences: list = None  # [(modulus, residue)]
    str_forced: Optional[str] = None
    str_excluded: set = None

    def __post_init__(self) -> None:
        self.excluded = set()
        self.congruences = []
        self.str_excluded = set()


class Solver:
    """Decide satisfiability of a constraint conjunction; build a model.

    ``solve`` returns a model (variable name -> value) when satisfiable,
    raises :class:`Unsat` when contradictory, and raises
    :class:`UnsolvableConstraint` when satisfiability hinges on
    inverting a hash.
    """

    def solve(self, constraints: List[Constraint]) -> Dict[str, object]:
        domains: Dict[str, _Domain] = {}
        for constraint in constraints:
            self._absorb(constraint, domains)
        model: Dict[str, object] = {}
        for name, domain in domains.items():
            model[name] = self._pick(name, domain)
        return model

    # -- constraint absorption ------------------------------------------------

    def _absorb(self, constraint: Constraint, domains: Dict[str, _Domain]) -> None:
        left, relation, right = constraint.left, constraint.relation, constraint.right
        # Normalize: constant on the right.
        if isinstance(left, Const) and not isinstance(right, Const):
            flip = {"eq": "eq", "ne": "ne", "lt": "gt", "ge": "le", "gt": "lt", "le": "ge"}
            left, right, relation = right, left, flip[relation]

        if isinstance(left, Const) and isinstance(right, Const):
            if not _concrete_holds(relation, left.value, right.value):
                raise Unsat(f"concrete contradiction: {left.value} {relation} {right.value}")
            return

        if not isinstance(right, Const):
            # symbolic-vs-symbolic: treat as satisfiable unless both
            # sides are the same hash application compared 'ne'.
            return

        # Reduce the left side toward a bare Sym.
        left, relation, value = self._reduce(left, relation, right.value, domains)
        if left is None:
            return  # reduced away (e.g. congruence recorded)

        if isinstance(left, HashExpr):
            if relation == "eq":
                raise UnsolvableConstraint(
                    "path requires inverting Hash(X|salt) == constant"
                )
            return  # hash != constant: trivially satisfiable

        if isinstance(left, EqExpr):
            # (a == b) <rel> truthy-const
            truthy = bool(value)
            want_equal = truthy if relation == "eq" else not truthy
            inner_rel = "eq" if want_equal else "ne"
            self._absorb(Constraint(inner_rel, left.left, left.right), domains)
            return

        if not isinstance(left, Sym):
            return  # unsupported shape: assume satisfiable (best effort)

        domain = domains.setdefault(left.name, _Domain())
        self._apply_fact(left, domain, relation, value)

    def _reduce(
        self, expr: SymExpr, relation: str, value, domains: Dict[str, _Domain]
    ) -> Tuple[Optional[SymExpr], str, object]:
        """Invert affine/xor/rem layers around the core expression."""
        while isinstance(expr, BinExpr):
            op, left, right = expr.op, expr.left, expr.right
            if isinstance(right, Const) and isinstance(right.value, int):
                c = right.value
                if op == "add":
                    expr, value = left, value - c
                    continue
                if op == "sub":
                    expr, value = left, value + c
                    continue
                if op == "xor":
                    expr, value = left, value ^ c
                    continue
                if op == "mul" and c != 0 and relation in ("eq", "ne"):
                    if value % c != 0:
                        if relation == "eq":
                            raise Unsat("no integer solution to multiplication")
                        return None, relation, value  # ne trivially sat
                    expr, value = left, value // c
                    continue
                if op == "rem" and c > 0 and relation in ("eq", "ne"):
                    core = left
                    if isinstance(core, Sym) and relation == "eq":
                        if not 0 <= value < c and not -c < value <= 0:
                            raise Unsat("residue outside modulus range")
                        domain = domains.setdefault(core.name, _Domain())
                        domain.congruences.append((c, value))
                        return None, relation, value
                    return core if relation == "ne" else None, relation, value
            if isinstance(left, Const) and isinstance(left.value, int):
                c = left.value
                if op == "add":
                    expr, value = right, value - c
                    continue
                if op == "sub":  # c - e == v  =>  e == c - v
                    expr, value = right, c - value
                    continue
                if op == "xor":
                    expr, value = right, value ^ c
                    continue
            break
        return expr, relation, value

    @staticmethod
    def _apply_fact(sym: Sym, domain: _Domain, relation: str, value) -> None:
        if isinstance(value, str) or sym.kind == "str":
            if relation == "eq":
                if domain.str_forced is not None and domain.str_forced != value:
                    raise Unsat(f"{sym.name} forced to two strings")
                if value in domain.str_excluded:
                    raise Unsat(f"{sym.name} equals an excluded string")
                domain.str_forced = value
            elif relation == "ne":
                if domain.str_forced is not None and domain.str_forced == value:
                    raise Unsat(f"{sym.name} both equal and unequal to {value!r}")
                domain.str_excluded.add(value)
            return
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, int):
            return
        if relation == "eq":
            if domain.has_forced and domain.forced != value:
                raise Unsat(f"{sym.name} forced to two values")
            if value in domain.excluded or not domain.lo <= value <= domain.hi:
                raise Unsat(f"{sym.name} == {value} conflicts with domain")
            domain.forced = value
            domain.has_forced = True
        elif relation == "ne":
            if domain.has_forced and domain.forced == value:
                raise Unsat(f"{sym.name} both == and != {value}")
            domain.excluded.add(value)
        elif relation == "lt":
            domain.hi = min(domain.hi, value - 1)
        elif relation == "le":
            domain.hi = min(domain.hi, value)
        elif relation == "gt":
            domain.lo = max(domain.lo, value + 1)
        elif relation == "ge":
            domain.lo = max(domain.lo, value)
        if domain.lo > domain.hi:
            raise Unsat(f"{sym.name} has empty interval")
        if domain.has_forced and not domain.lo <= domain.forced <= domain.hi:
            raise Unsat(f"{sym.name} forced value left the interval")

    # -- model construction ---------------------------------------------------------

    def _pick(self, name: str, domain: _Domain):
        if domain.str_forced is not None:
            return domain.str_forced
        if domain.has_forced:
            value = domain.forced
            for modulus, residue in domain.congruences:
                if value % modulus != residue % modulus:
                    raise Unsat(f"{name} forced value violates congruence")
            return value
        if domain.str_excluded and domain.str_forced is None:
            candidate = "?"
            while candidate in domain.str_excluded:
                candidate += "?"
            return candidate
        # Search for an int satisfying interval + congruences + exclusions.
        start = max(domain.lo, min(domain.hi, 0))
        for offset in range(200_000):
            for candidate in (start + offset, start - offset):
                if not domain.lo <= candidate <= domain.hi:
                    continue
                if candidate in domain.excluded:
                    continue
                if all(candidate % m == r % m for m, r in domain.congruences):
                    return candidate
        raise Unsat(f"no witness found for {name}")


def _concrete_holds(relation: str, a, b) -> bool:
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    if relation == "eq":
        return type(a) is type(b) and a == b
    if relation == "ne":
        return not (type(a) is type(b) and a == b)
    try:
        return {"lt": a < b, "ge": a >= b, "gt": a > b, "le": a <= b}[relation]
    except TypeError:
        raise Unsat(f"type mismatch in {relation} comparison") from None
