"""The static trigger-analysis adversary (Difuzer / TriggerZoo role).

Wraps :mod:`repro.analysis.triggers` as an attack for the resilience
matrix: an interprocedural control-dependence + taint pass that ranks
suspicious guarded regions (hidden sensitive operations).  Against the
naive Listing-2 bombs it localizes every cleartext detection block;
against BombDroid it *sees* the hash-opaque triggers but finds no
sensitive operation to attach them to -- the payload is encrypted, so
the detector has nothing to localize (reported in
``details["opaque_guards"]``).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.triggers import TriggerScan, analyze_dex
from repro.apk.package import Apk
from repro.attacks.base import AttackResult

#: Findings below this score are noise, not localized bombs.
DEFAULT_MIN_SCORE = 2.0


class StaticTriggerDetector:
    """Interprocedural HSO detector run as an adversary analysis."""

    def __init__(self, min_score: float = DEFAULT_MIN_SCORE) -> None:
        self.min_score = min_score

    def analyze(self, dex) -> TriggerScan:
        """Raw whole-program scan (also used by lint and the CLI)."""
        return analyze_dex(dex, min_score=self.min_score)

    def run(self, apk: Apk) -> AttackResult:
        scan = self.analyze(apk.dex())
        found = [finding.site for finding in scan.findings]
        top: Optional[float] = scan.findings[0].score if scan.findings else None
        notes = ""
        if scan.opaque_guards and not scan.findings:
            notes = (
                f"{len(scan.opaque_guards)} hash-opaque guard(s) visible but no "
                f"sensitive operation reachable under them; payloads are "
                f"encrypted, nothing to localize"
            )
        elif scan.findings:
            notes = (
                f"top finding {scan.findings[0].describe()}"
            )
        return AttackResult(
            attack="static_trigger_analysis",
            defeated_defense=bool(scan.findings),
            bombs_found=found,
            details={
                "findings": len(scan.findings),
                "opaque_guards": len(scan.opaque_guards),
                "methods_scanned": scan.methods_scanned,
                "branches_classified": scan.branches_classified,
                "top_score": round(top, 2) if top is not None else 0.0,
                "kinds": scan.by_kind(),
            },
            notes=notes,
        )
