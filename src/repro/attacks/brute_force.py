"""Brute-force key recovery (Section 5.1).

Everything the attacker needs is visible at a bomb site: the salt, the
stored digest ``Hc``, and the ciphertext.  Cracking means finding an
``X`` with ``Hash(X | salt) == Hc``.  The cost is ``|dom(X)| * t``:

* **weak** (boolean): 2 candidates -- always cracked;
* **medium** (int): up to 2^32 candidates -- cracked only when the
  constant happens to fall inside the attacker's enumeration budget;
* **strong** (string): unbounded -- only dictionary attacks apply.

``rainbow_attack`` demonstrates why per-bomb salts matter: a
precomputed unsalted table never matches a salted digest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.qualified_conditions import Strength
from repro.attacks.base import AttackResult
from repro.core.stats import Bomb
from repro.crypto import Salt, encode_value, sha1
from repro.crypto.kdf import hash_constant

#: Seconds to hash-and-check one candidate (used for cost *estimates*;
#: comparable to the paper's ``t``).
T_PER_TRY = 1e-6


class CrackOutcome(enum.Enum):
    CRACKED = "cracked"
    EXHAUSTED_BUDGET = "exhausted_budget"
    INFEASIBLE = "infeasible"


@dataclass
class CrackReport:
    bomb_id: str
    strength: Strength
    outcome: CrackOutcome
    tries: int
    recovered: object = None
    estimated_full_cost_seconds: float = 0.0


def classify_strength_cost(strength: Strength) -> float:
    """Worst-case enumeration cost in seconds for one bomb."""
    domain_sizes = {
        Strength.WEAK: 2,
        Strength.MEDIUM: 2**32,
        Strength.STRONG: float("inf"),
    }
    return domain_sizes[strength] * T_PER_TRY


class BruteForceAttack:
    """Enumerate candidate constants against the visible (salt, Hc)."""

    def __init__(
        self,
        int_budget: int = 200_000,
        dictionary: Sequence[str] = (),
    ) -> None:
        self._int_budget = int_budget
        self._dictionary = list(dictionary)

    def crack_bomb(self, bomb: Bomb) -> CrackReport:
        """Attack one bomb's outer condition."""
        salt = Salt(bytes.fromhex(bomb.salt_hex))
        target = bytes.fromhex(bomb.hc_hex)
        tries = 0

        if bomb.strength is Strength.WEAK:
            for candidate in (False, True):
                tries += 1
                if hash_constant(candidate, salt) == target:
                    return CrackReport(
                        bomb.bomb_id, bomb.strength, CrackOutcome.CRACKED,
                        tries, recovered=candidate,
                        estimated_full_cost_seconds=2 * T_PER_TRY,
                    )
            return CrackReport(
                bomb.bomb_id, bomb.strength, CrackOutcome.EXHAUSTED_BUDGET, tries,
                estimated_full_cost_seconds=2 * T_PER_TRY,
            )

        if bomb.strength is Strength.MEDIUM:
            # Enumerate small magnitudes first (how real attackers order
            # the search); give up at the budget.
            for magnitude in range(self._int_budget // 2):
                for candidate in (magnitude, -magnitude):
                    tries += 1
                    if hash_constant(candidate, salt) == target:
                        return CrackReport(
                            bomb.bomb_id, bomb.strength, CrackOutcome.CRACKED,
                            tries, recovered=candidate,
                            estimated_full_cost_seconds=classify_strength_cost(bomb.strength),
                        )
            return CrackReport(
                bomb.bomb_id, bomb.strength, CrackOutcome.EXHAUSTED_BUDGET, tries,
                estimated_full_cost_seconds=classify_strength_cost(bomb.strength),
            )

        # STRONG: only a dictionary has any hope.
        for word in self._dictionary:
            tries += 1
            if hash_constant(word, salt) == target:
                return CrackReport(
                    bomb.bomb_id, bomb.strength, CrackOutcome.CRACKED,
                    tries, recovered=word,
                    estimated_full_cost_seconds=float("inf"),
                )
        return CrackReport(
            bomb.bomb_id, bomb.strength, CrackOutcome.INFEASIBLE, tries,
            estimated_full_cost_seconds=float("inf"),
        )

    def run(self, bombs: Iterable[Bomb]) -> AttackResult:
        reports: List[CrackReport] = [self.crack_bomb(bomb) for bomb in bombs]
        cracked = [r for r in reports if r.outcome is CrackOutcome.CRACKED]
        by_strength: Dict[str, List[CrackReport]] = {}
        for report in reports:
            by_strength.setdefault(report.strength.value, []).append(report)
        return AttackResult(
            attack="brute_force",
            # Cracking *every* bomb is what would defeat the defense;
            # cracking the weak tail is expected and priced in.
            defeated_defense=len(cracked) == len(reports) and bool(reports),
            bombs_found=[r.bomb_id for r in reports],
            bombs_exposed=[r.bomb_id for r in cracked],
            details={
                "reports": reports,
                "cracked_by_strength": {
                    strength: sum(1 for r in group if r.outcome is CrackOutcome.CRACKED)
                    / len(group)
                    for strength, group in by_strength.items()
                },
            },
        )


def rainbow_attack(bombs: Iterable[Bomb], table_values: Sequence[object]) -> Dict[str, bool]:
    """Precomputed-table attack with *unsalted* hashes.

    Returns bomb_id -> cracked.  Always all-False when bombs are salted
    (Section 5.1: "such attacks can be defeated by mixing a unique
    plaintext salt ... into the hash computation").
    """
    table = {sha1(encode_value(value)).hex(): value for value in table_values}
    return {bomb.bomb_id: bomb.hc_hex in table for bomb in bombs}
