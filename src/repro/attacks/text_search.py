"""Text-search attack.

The attacker greps the disassembled code for revealing API names and
constants (Section 2.1): ``getPublicKey``, digest lookups, crypto
helpers.  Against SSN the key API name is hidden behind an obfuscated
reflection string, so the search misses it; against BombDroid the
``bomb.*`` helpers are visible -- the *sites* are findable, but the
detection logic, keys, and woven app code are encrypted, so finding a
site yields nothing safely actionable (deleting it corrupts the app;
see :mod:`repro.attacks.deletion`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.attacks.signatures import SUSPICIOUS_PATTERNS
from repro.dex.disassembler import disassemble

__all__ = ["TextSearchAttack", "SUSPICIOUS_PATTERNS"]


class TextSearchAttack:
    """Scan the app's disassembly for suspicious text."""

    def run(self, apk: Apk) -> AttackResult:
        listing = disassemble(apk.dex())
        hits: Dict[str, int] = {}
        for pattern in SUSPICIOUS_PATTERNS:
            count = listing.count(pattern)
            if count:
                hits[pattern] = count

        # Locating the plaintext detection logic is what defeats the
        # defense; bomb sites alone are not actionable because the
        # payload (and the original code woven into it) is ciphertext.
        plaintext_detection = any(
            pattern in hits
            for pattern in ("get_public_key", "get_manifest_digest", "get_method_hash")
        )
        bomb_sites = hits.get("bomb.hash", 0)
        return AttackResult(
            attack="text_search",
            defeated_defense=plaintext_detection,
            bombs_found=[f"site{index}" for index in range(bomb_sites)],
            details={"hits": hits},
            notes=(
                "plaintext detection API visible"
                if plaintext_detection
                else "only opaque bomb sites visible; payloads encrypted"
            ),
        )
