"""Forced execution / multi-path exploration attack.

Wilhelm & Chiueh's forced sampled execution (and Moser et al.'s
multi-path exploration): run the code but *force* suspicious branches
down the path the inputs would not take, hoping to expose conditional
payloads.

Against a plain logic bomb (Listing 2) this trivially works -- the
payload is sitting in the taken branch as cleartext code.  Against a
cryptographically obfuscated bomb, forcing the hash-check branch
executes ``bomb.decrypt`` with a key derived from the *actual* (wrong)
value of X, which fails padding validation: the attacker observes a
crash, not a payload (G2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.dex import instructions as ins
from repro.dex.model import DexMethod
from repro.dex.opcodes import CONDITIONAL_BRANCHES, Op
from repro.errors import VMError
from repro.vm.device import attacker_lab_profiles
from repro.vm.events import ARITY, EventKind, declared_events, handler_name_for, random_args
from repro.vm.runtime import Runtime

import random


@dataclass
class ForcedRun:
    """What forcing one branch produced."""

    method: str
    branch_pc: int
    forced_taken: bool
    outcome: str              # "ok" | "crash" | "payload_decrypt_failed"
    payload_exposed: bool


class ForcedExecutionAttack:
    """Force each suspicious branch and observe."""

    def __init__(self, seed: int = 0, per_method_branches: int = 12) -> None:
        self._seed = seed
        self._limit = per_method_branches

    def run(self, apk: Apk) -> AttackResult:
        rng = random.Random(self._seed)
        device = attacker_lab_profiles(1, seed=self._seed)[0]
        dex = apk.dex()
        runs: List[ForcedRun] = []

        for kind, class_name in declared_events(dex):
            method = dex.classes[class_name].methods[handler_name_for(kind)]
            suspicious = self._suspicious_branches(method)
            for branch_pc in suspicious[: self._limit]:
                for taken in (True, False):
                    run = self._force_branch(
                        apk, device, method, branch_pc, kind, rng, taken
                    )
                    if run is not None:
                        runs.append(run)

        exposed = [run for run in runs if run.payload_exposed]
        decrypt_failures = [run for run in runs if run.outcome == "payload_decrypt_failed"]
        return AttackResult(
            attack="forced_execution",
            defeated_defense=bool(exposed),
            bombs_found=[f"{run.method}@{run.branch_pc}" for run in runs],
            bombs_exposed=[f"{run.method}@{run.branch_pc}" for run in exposed],
            details={
                "forced_runs": len(runs),
                "decrypt_failures": len(decrypt_failures),
            },
            notes=(
                f"{len(decrypt_failures)} forced paths died in payload "
                "decryption (wrong key)"
            ),
        )

    @staticmethod
    def _suspicious_branches(method: DexMethod) -> List[int]:
        """Branches guarding something interesting: right after a hash
        comparison, or any equality branch (the naive-bomb shape)."""
        out = []
        for pc, instr in enumerate(method.instructions):
            if instr.op in (Op.IF_EQZ, Op.IF_NEZ, Op.IF_EQ, Op.IF_NE):
                out.append(pc)
        return out

    def _force_branch(
        self,
        apk: Apk,
        device,
        method: DexMethod,
        branch_pc: int,
        kind: EventKind,
        rng: random.Random,
        taken: bool,
    ) -> Optional[ForcedRun]:
        """Run a copy of the app with one branch hardwired."""
        from repro.vm.interpreter import CountingTracer

        dex = apk.dex()  # fresh copy to mutate
        target_method = dex.get_method(method.qualified_name)
        instr = target_method.instructions[branch_pc]
        if instr.op not in CONDITIONAL_BRANCHES:
            return None
        if taken:
            target_method.instructions[branch_pc] = ins.goto(instr.target)
        else:
            target_method.instructions[branch_pc] = ins.Instr(Op.NOP)
        target_method.invalidate()

        tracer = CountingTracer()
        runtime = Runtime(
            dex, device=device.copy(), package=apk.install_view(),
            seed=self._seed, tracer=tracer,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        args = random_args(kind, rng)
        outcome = "ok"
        try:
            runtime.invoke(method.qualified_name, list(args), budget=300_000)
        except VMError as exc:
            outcome = (
                "payload_decrypt_failed"
                if "decryption failed" in str(exc) or "corrupt payload" in str(exc)
                else "crash"
            )
        # Exposure = the forced path reached *readable* detection logic:
        # a detection API was invoked outside an encrypted payload.  For
        # obfuscated bombs the decrypt dies first; for naive bombs the
        # cleartext payload runs directly.
        detection_apis = (
            "android.pm.get_public_key",
            "android.pm.get_manifest_digest",
            "android.pm.get_method_hash",
        )
        ran_payload = bool(runtime.bombs.bombs_with("payload_run"))
        invoked_detection = any(api in tracer.invocations for api in detection_apis)
        exposed = invoked_detection and not ran_payload
        return ForcedRun(
            method=method.qualified_name,
            branch_pc=branch_pc,
            forced_taken=taken,
            outcome=outcome,
            payload_exposed=exposed,
        )
