"""Common attack-result record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class AttackResult:
    """Outcome of one adversary analysis against one app.

    ``defeated_defense`` is the attacker's verdict: True when the attack
    yields a repackagable app with detection neutralized (or payloads
    fully exposed) *without* corrupting the app.
    """

    attack: str
    defeated_defense: bool
    bombs_found: List[str] = field(default_factory=list)      # sites located
    bombs_exposed: List[str] = field(default_factory=list)    # payloads read
    bombs_disabled: List[str] = field(default_factory=list)   # neutralized safely
    app_corrupted: bool = False
    details: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def summary(self) -> str:
        verdict = "DEFEATED" if self.defeated_defense else "resisted"
        return (
            f"{self.attack}: defense {verdict} "
            f"(found={len(self.bombs_found)}, exposed={len(self.bombs_exposed)}, "
            f"disabled={len(self.bombs_disabled)}, corrupted={self.app_corrupted})"
        )
