"""Adversary analyses (Section 2.1's attack taxonomy).

Every attack from the paper's threat model is implemented against both
BombDroid-protected apps and the SSN baseline:

``text_search``        grep the disassembly for suspicious names
``fuzzing``            blackbox fuzzing with Monkey/PUMA/AndroidHooker/
                       Dynodroid on attacker lab devices
``symbolic``           symbolic execution with a constraint solver
                       (TriggerScope role) -- defeated by hashed outer
                       conditions (G1)
``forced_execution``   force both sides of suspicious branches
                       (Wilhelm & Chiueh) -- defeated by encryption (G2)
``slicing_attack``     backward slicing + slice execution (HARVESTER)
``instrumentation``    make rand deterministic, log reflection targets,
                       patch constants -- kills SSN, bounces off bombs
``deletion``           delete suspicious code -- corrupts woven apps (G4)
``brute_force``        enumerate dom(X) against Hash(X|salt)==Hc;
                       strength classes of Figure 4
``debugging``          the human-analyst model of Section 8.3.2
``static_detector``    interprocedural HSO detector (Difuzer/TriggerZoo
                       role): control dependence + taint + scoring
"""

from repro.attacks.base import AttackResult
from repro.attacks.signatures import (
    CLASSIC_SIGNATURE,
    EXTENDED_SIGNATURE,
    PrologueSignature,
    SUSPICIOUS_PATTERNS,
    count_live_anchors,
    strip_learned,
    strip_with_signature,
)
from repro.attacks.text_search import TextSearchAttack
from repro.attacks.brute_force import BruteForceAttack, CrackOutcome, classify_strength_cost
from repro.attacks.deletion import AdaptiveStripperAttack, DeletionAttack
from repro.attacks.instrumentation import InstrumentationAttack
from repro.attacks.forced_execution import ForcedExecutionAttack
from repro.attacks.slicing_attack import SlicingAttack
from repro.attacks.debugging import DebuggerAttack, HumanAnalystAttack
from repro.attacks.fuzzing import FuzzingAttack
from repro.attacks.symbolic import SymbolicExplorer, SymbolicAttack
from repro.attacks.hooking import VTableHijackAttack
from repro.attacks.static_detector import StaticTriggerDetector

__all__ = [
    "AttackResult",
    "TextSearchAttack",
    "SUSPICIOUS_PATTERNS",
    "BruteForceAttack",
    "CrackOutcome",
    "classify_strength_cost",
    "DeletionAttack",
    "AdaptiveStripperAttack",
    "PrologueSignature",
    "CLASSIC_SIGNATURE",
    "EXTENDED_SIGNATURE",
    "strip_with_signature",
    "strip_learned",
    "count_live_anchors",
    "InstrumentationAttack",
    "ForcedExecutionAttack",
    "SlicingAttack",
    "DebuggerAttack",
    "HumanAnalystAttack",
    "FuzzingAttack",
    "SymbolicExplorer",
    "SymbolicAttack",
    "VTableHijackAttack",
    "StaticTriggerDetector",
]
