"""Code-instrumentation attack (Section 2.1).

The attacker modifies code and hooks runtime facilities to assist
analysis:

* force ``rand()`` deterministic so probabilistic detection (SSN) runs
  on every invocation;
* log reflection-call destinations to discover hidden API calls;
* patch plaintext constants (SSN's ``PUBKEY``) so detection compares
  against the *attacker's* key.

Against SSN this is fatal: the whole Listing-1 structure is in the
clear.  Against BombDroid the same playbook stalls -- the comparison
constant lives inside ciphertext, and patching the only visible
constants (``Hc``, ciphertext) just breaks decryption, corrupting the
app wherever a bomb would have fired.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apk.package import Apk, build_apk
from repro.attacks.base import AttackResult
from repro.crypto import RSAKeyPair
from repro.dex import instructions as ins
from repro.dex.model import DexFile
from repro.dex.opcodes import Op
from repro.errors import VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm.device import attacker_lab_profiles
from repro.vm.runtime import Runtime


def force_rand_deterministic(dex: DexFile) -> int:
    """Replace every ``java.rand.next`` call's result with 0."""
    patched = 0
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.INVOKE and instr.value == "java.rand.next":
                if instr.dst is not None:
                    method.instructions[pc] = ins.const(instr.dst, 0)
                    patched += 1
        method.invalidate()
    return patched


def log_reflection_targets(apk: Apk, events: int = 400, seed: int = 0) -> List[str]:
    """Run the app in the attacker's lab and collect reflection
    destinations (the check-the-destination trick from Section 1)."""
    device = attacker_lab_profiles(1, seed=seed)[0]
    runtime = Runtime(apk.dex(), device=device, package=apk.install_view(), seed=seed)
    try:
        runtime.boot()
    except VMError:
        pass
    generator = DynodroidGenerator(apk.dex(), seed=seed + 1)
    for event in generator.stream(events):
        try:
            runtime.dispatch(event)
        except VMError:
            pass
    return sorted(set(runtime.reflection_log))


def patch_string_constants(dex: DexFile, old: str, new: str) -> int:
    """Rewrite every CONST loading ``old`` to load ``new`` instead."""
    patched = 0
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.CONST and instr.value == old:
                method.instructions[pc] = ins.const(instr.dst, new)
                patched += 1
        method.invalidate()
    return patched


class InstrumentationAttack:
    """The full SSN-killing playbook, also aimed at BombDroid."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def run_against_ssn(
        self,
        protected: Apk,
        attacker_key: RSAKeyPair,
        original_key_hex: str,
    ) -> AttackResult:
        """Defeat SSN: derandomize, find the hidden call, patch PUBKEY."""
        dex = protected.dex()
        derandomized = force_rand_deterministic(dex)
        probe = build_apk(dex, protected.resources(), attacker_key)
        reflection_targets = log_reflection_targets(probe, seed=self._seed)
        found_hidden_call = "android.pm.get_public_key" in reflection_targets

        # Patch the plaintext original-key constant to the attacker's
        # fingerprint so the comparison always "passes".
        patched_keys = patch_string_constants(
            dex, original_key_hex, attacker_key.public.fingerprint().hex()
        )
        cracked = build_apk(dex, protected.resources(), attacker_key)
        detection_survived = self._detection_fires(cracked)

        return AttackResult(
            attack="code_instrumentation(ssn)",
            defeated_defense=found_hidden_call and patched_keys > 0 and not detection_survived,
            bombs_found=reflection_targets,
            bombs_disabled=[f"key_const_{index}" for index in range(patched_keys)],
            details={
                "rand_calls_derandomized": derandomized,
                "reflection_targets": reflection_targets,
                "key_constants_patched": patched_keys,
                "detection_survived": detection_survived,
            },
        )

    def run_against_bombdroid(
        self,
        protected: Apk,
        attacker_key: RSAKeyPair,
        original_key_hex: str,
        original: Optional[Apk] = None,
    ) -> AttackResult:
        """Apply the same playbook to a bomb-protected app.

        The reflection log is empty (no reflection is used), there is no
        plaintext key constant to patch, and patching the visible Hc
        digests only stops payloads from decrypting -- which deletes
        woven app code, i.e. corrupts the app.
        """
        dex = protected.dex()
        derandomized = force_rand_deterministic(dex)
        probe = build_apk(dex, protected.resources(), attacker_key)
        reflection_targets = log_reflection_targets(probe, seed=self._seed)
        patched_keys = patch_string_constants(
            dex, original_key_hex, attacker_key.public.fingerprint().hex()
        )
        return AttackResult(
            attack="code_instrumentation(bombdroid)",
            defeated_defense=patched_keys > 0 or bool(reflection_targets),
            bombs_found=reflection_targets,
            details={
                "rand_calls_derandomized": derandomized,
                "reflection_targets": reflection_targets,
                "key_constants_patched": patched_keys,
            },
            notes="no plaintext key constants or reflection calls to exploit",
        )

    def _detection_fires(self, apk: Apk, events: int = 600) -> bool:
        """Does the (cracked) app still respond to repackaging?"""
        device = attacker_lab_profiles(1, seed=self._seed)[0]
        runtime = Runtime(apk.dex(), device=device, package=apk.install_view(), seed=self._seed)
        try:
            runtime.boot()
        except VMError:
            return True
        generator = DynodroidGenerator(apk.dex(), seed=self._seed + 2)
        for event in generator.stream(events):
            try:
                runtime.dispatch(event)
            except VMError as exc:
                if "SSN" in str(exc):
                    return True
        return bool(runtime.detections)
