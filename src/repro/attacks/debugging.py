"""Debugging and human-analyst attacks (Sections 2.1 and 8.3.2).

``DebuggerAttack`` -- run the app under a tracing debugger with
watchpoints on the identity APIs ("hook calls to getPublicKey ... to
locate the repackaging detection code").  The catch the paper makes:
"such dynamic analysis works only when repackaging detection is
executed" -- watch hits only come from payloads whose double trigger
already fired, and the methods they trace back to are dynamically
loaded ``Bomb$...`` classes whose static code is ciphertext.

``HumanAnalystAttack`` -- the Section 8.3.2 protocol.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.apk.package import Apk
from repro.attacks.base import AttackResult
from repro.errors import VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.fuzzing.session import FuzzSession
from repro.vm.debugger import Debugger
from repro.vm.device import DeviceProfile, ENV_DOMAINS, attacker_lab_profiles
from repro.vm.runtime import Runtime

_TIME_VARS = ("time.hour", "time.dow", "time.minute")

_IDENTITY_APIS = (
    "android.pm.get_public_key",
    "android.pm.get_manifest_digest",
    "android.pm.get_method_hash",
)


class DebuggerAttack:
    """Hook the identity APIs under a debugger and trace hits back.

    The paper's Debugging attack: run the repackaged app, watch for
    calls to ``getPublicKey`` (and friends), trace the call back to the
    responsible code, disable it.  Against BombDroid the hits that do
    occur trace back to dynamically loaded payload classes -- code that
    exists only as ciphertext in the shipped APK -- and only for bombs
    whose double trigger fired during the session.
    """

    def __init__(self, seed: int = 0, session_seconds: float = 600.0) -> None:
        self._seed = seed
        self._session_seconds = session_seconds

    def run(self, apk: Apk, total_bombs: int) -> AttackResult:
        device = attacker_lab_profiles(1, seed=self._seed)[0]
        dex = apk.dex()
        debugger = Debugger().watch_api(*_IDENTITY_APIS)
        runtime = Runtime(
            dex, device=device, package=apk.install_view(),
            seed=self._seed, tracer=debugger,
        )
        try:
            runtime.boot()
        except VMError:
            pass
        generator = DynodroidGenerator(dex, seed=self._seed)
        start = runtime.device.clock
        iterator = generator.events()
        while runtime.device.clock - start < self._session_seconds:
            event = next(iterator)
            try:
                runtime.dispatch(event)
            except VMError:
                pass

        shipped_classes = set(dex.classes)
        traced_sources: Set[str] = set()
        for api in _IDENTITY_APIS:
            traced_sources |= debugger.source_methods(api)
        # Sources inside shipped (cleartext) classes are actionable; hits
        # tracing back to dynamically loaded payload classes are not --
        # their code is not in the APK the attacker can edit.
        actionable = {
            source for source in traced_sources
            if source.split(".")[0] in shipped_classes
        }
        payload_sources = traced_sources - actionable

        return AttackResult(
            attack="debugging",
            defeated_defense=bool(actionable),
            bombs_found=sorted(traced_sources),
            bombs_exposed=sorted(payload_sources),
            details={
                "watch_hits": len(debugger.watch_hits),
                "actionable_cleartext_sources": sorted(actionable),
                "payload_only_sources": sorted(payload_sources),
                "fraction_of_bombs_observed": (
                    len(payload_sources) / total_bombs if total_bombs else 0.0
                ),
            },
            notes=(
                "all watch hits trace to encrypted dynamically-loaded payloads"
                if traced_sources and not actionable
                else ("no watch hits at all" if not traced_sources else
                      "cleartext detection located")
            ),
        )


class HumanAnalystAttack:
    """The Section 8.3.2 protocol: sessions of guided fuzzing with
    blind environment mutation.

    Four skilled analysts, 20 hours per app, full knowledge of
    BombDroid's implementation.  The paper's result: at most 9.3% of
    bombs triggered -- "attackers cannot configure the environments in
    a guided way" because the inner conditions are encrypted.
    """

    def __init__(
        self,
        seed: int = 0,
        total_hours: float = 20.0,
        session_minutes: float = 30.0,
    ) -> None:
        self._seed = seed
        self._total_seconds = total_hours * 3600
        self._session_seconds = session_minutes * 60

    def run(self, apk: Apk, total_bombs: int) -> AttackResult:
        rng = random.Random(self._seed)
        device = attacker_lab_profiles(1, seed=self._seed)[0]
        dex = apk.dex()

        triggered: Set[str] = set()
        outer_satisfied: Set[str] = set()
        elapsed = 0.0
        session_index = 0
        while elapsed < self._total_seconds:
            session_index += 1
            generator = DynodroidGenerator(dex, seed=self._seed + session_index)
            session = FuzzSession(
                dex,
                generator,
                device.copy(),
                package=apk.install_view(),
                seed=self._seed + session_index,
            )
            result = session.run_for(self._session_seconds, sample_every=300)
            outer_satisfied |= result.bombs_outer_satisfied
            triggered |= result.bombs_inner_met
            elapsed += self._session_seconds
            # Between sessions: mutate a few environment variables.
            self._mutate_environment(device, rng)

        fraction = (len(triggered) / total_bombs) if total_bombs else 0.0
        return AttackResult(
            attack="human_analyst",
            defeated_defense=fraction > 0.5,
            bombs_found=sorted(outer_satisfied),
            bombs_exposed=sorted(triggered),
            details={
                "sessions": session_index,
                "outer_satisfied": len(outer_satisfied),
                "fully_triggered": len(triggered),
                "fraction_triggered": fraction,
            },
            notes=f"{fraction:.1%} of bombs triggered in {elapsed / 3600:.0f} analyst-hours",
        )

    @staticmethod
    def _mutate_environment(device: DeviceProfile, rng: random.Random) -> None:
        """Blindly flip 1-3 environment variables to random values."""
        names = [name for name in ENV_DOMAINS if name not in _TIME_VARS]
        for name in rng.sample(names, rng.randrange(1, 4)):
            device.mutate(name, ENV_DOMAINS[name].sample(rng))
        # Also jump the clock: time triggers are popular.
        device.clock += rng.uniform(0, 7 * 86400)
