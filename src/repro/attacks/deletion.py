"""Code-deletion attack (Section 2.1 / 3.4).

"A trivial attack is to delete any suspicious code."  The attacker
locates every bomb prologue (they are syntactically recognizable:
``invoke bomb.hash``) and disables it by rewriting the hash-check
branch into an unconditional jump to its no-match continuation -- the
payload can then never run.

The defense's answer is weaving: for a woven bomb the no-match path
*skips the original body*, so the app is corrupted exactly when the
deleted trigger would have fired.  Bogus bombs corrupt the app the same
way while never having carried detection at all.

``DeletionAttack.run`` performs the deletion and then *measures* the
corruption by differential testing against the original app.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apk.package import Apk, build_apk
from repro.attacks.base import AttackResult
from repro.crypto import RSAKeyPair
from repro.dex import instructions as ins
from repro.dex.model import DexFile
from repro.dex.opcodes import Op
from repro.errors import VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm.device import DeviceProfile, DevicePopulation
from repro.vm.runtime import Runtime


def strip_bombs(dex: DexFile) -> int:
    """Disable every bomb prologue in place; returns sites patched.

    A prologue is ``invoke rH, bomb.hash, ...`` followed (within a few
    instructions) by ``if_eqz rEq, @continue``; rewriting that branch to
    ``goto @continue`` guarantees the payload never runs.
    """
    patched = 0
    for method in dex.iter_methods():
        instructions = method.instructions
        for pc, instr in enumerate(instructions):
            if instr.op is not Op.INVOKE or instr.value != "bomb.hash":
                continue
            for look in range(pc + 1, min(pc + 6, len(instructions))):
                candidate = instructions[look]
                if candidate.op is Op.IF_EQZ:
                    instructions[look] = ins.goto(candidate.target)
                    patched += 1
                    break
        method.invalidate()
    return patched


class DeletionAttack:
    """Delete bombs, repackage, and measure what it did to the app."""

    def __init__(self, differential_events: int = 800, seed: int = 0) -> None:
        self._events = differential_events
        self._seed = seed

    def run(
        self,
        protected: Apk,
        attacker_key: RSAKeyPair,
        original: Optional[Apk] = None,
    ) -> AttackResult:
        dex = protected.dex()
        patched = strip_bombs(dex)
        dex.validate()
        stripped = build_apk(dex, protected.resources(), attacker_key)

        corrupted = False
        divergences = 0
        crashes = 0
        if original is not None:
            divergences, crashes = self._differential_test(original, stripped)
            corrupted = divergences > 0 or crashes > 0

        return AttackResult(
            attack="code_deletion",
            # Deleting succeeds at silencing detection, but a corrupted
            # app is not a sellable repackage -- the defense holds when
            # weaving made deletion destructive.
            defeated_defense=patched > 0 and not corrupted,
            bombs_found=[f"site{index}" for index in range(patched)],
            bombs_disabled=[f"site{index}" for index in range(patched)],
            app_corrupted=corrupted,
            details={
                "sites_patched": patched,
                "state_divergences": divergences,
                "new_crashes": crashes,
            },
        )

    def _differential_test(self, original: Apk, stripped: Apk) -> Tuple[int, int]:
        """Run both apps on one device/event-stream; count behavioral
        differences (diverged static state, crashes only in the
        stripped app)."""
        population = DevicePopulation(seed=self._seed)
        device_a = population.sample()
        device_b = device_a.copy()
        runtime_a = Runtime(
            original.dex(), device=device_a,
            package=original.install_view(), seed=self._seed,
        )
        runtime_b = Runtime(
            stripped.dex(), device=device_b,
            package=stripped.install_view(), seed=self._seed,
        )
        for runtime in (runtime_a, runtime_b):
            try:
                runtime.boot()
            except VMError:
                pass

        generator = DynodroidGenerator(original.dex(), seed=self._seed + 1)
        divergences = 0
        crashes = 0
        for event in generator.stream(self._events):
            crash_a = crash_b = False
            try:
                runtime_a.dispatch(event)
            except VMError:
                crash_a = True
            try:
                runtime_b.dispatch(event)
            except VMError:
                crash_b = True
            if crash_b and not crash_a:
                crashes += 1
        app_fields = {
            key: value
            for key, value in runtime_a.statics.items()
            if not key.startswith("Bomb$")
        }
        for key, value in app_fields.items():
            if runtime_b.statics.get(key) != value:
                divergences += 1
        return divergences, crashes
