"""Code-deletion attacks (Section 2.1 / 3.4).

"A trivial attack is to delete any suspicious code."  The attacker
locates every bomb prologue (they are syntactically recognizable:
``invoke bomb.hash``) and disables it by rewriting the hash-check
branch into an unconditional jump to its no-match continuation -- the
payload can then never run.

The defense's answer is weaving: for a woven bomb the no-match path
*skips the original body*, so the app is corrupted exactly when the
deleted trigger would have fired.  Bogus bombs corrupt the app the same
way while never having carried detection at all.  Meshed apps add a
second answer: prologues are morphed per app, so the single-pattern
signature misses at least every other bomb, and the survivors' payloads
verify peer digests -- the strip itself trips a tamper response.

Two attacker classes live here:

* :class:`DeletionAttack` -- the signature-driven strip (pattern
  knowledge injected via :mod:`repro.attacks.signatures`);
* :class:`AdaptiveStripperAttack` -- the upgraded multi-pattern
  stripper that learns bomb shapes from their ciphertext anchors
  instead of matching invoke names.

Both perform the strip and then *measure* the corruption by
differential testing against the original app.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.apk.package import Apk, build_apk
from repro.attacks.base import AttackResult
from repro.attacks.signatures import (
    CLASSIC_SIGNATURE,
    DEFAULT_LEARN_WINDOW,
    PrologueSignature,
    count_live_anchors,
    strip_learned,
    strip_with_signature,
)
from repro.crypto import RSAKeyPair
from repro.dex.model import DexFile
from repro.errors import VMError
from repro.fuzzing.generators import DynodroidGenerator
from repro.vm.device import DevicePopulation
from repro.vm.runtime import Runtime


def strip_bombs(
    dex: DexFile, signature: PrologueSignature = CLASSIC_SIGNATURE
) -> int:
    """Disable every bomb prologue the signature matches, in place;
    returns sites patched.  The historical hard-coded behavior (literal
    ``bomb.hash`` anchor, first ``if_eqz`` within five instructions) is
    the default :data:`~repro.attacks.signatures.CLASSIC_SIGNATURE`."""
    return strip_with_signature(dex, signature)


def differential_test(
    original: Apk, stripped: Apk, events: int, seed: int
) -> Tuple[int, int]:
    """Run both apps on one device/event-stream; returns (diverged
    app static fields, crashes only in the stripped app)."""
    population = DevicePopulation(seed=seed)
    device_a = population.sample()
    device_b = device_a.copy()
    runtime_a = Runtime(
        original.dex(), device=device_a,
        package=original.install_view(), seed=seed,
    )
    runtime_b = Runtime(
        stripped.dex(), device=device_b,
        package=stripped.install_view(), seed=seed,
    )
    for runtime in (runtime_a, runtime_b):
        try:
            runtime.boot()
        except VMError:
            pass

    generator = DynodroidGenerator(original.dex(), seed=seed + 1)
    divergences = 0
    crashes = 0
    for event in generator.stream(events):
        crash_a = crash_b = False
        try:
            runtime_a.dispatch(event)
        except VMError:
            crash_a = True
        try:
            runtime_b.dispatch(event)
        except VMError:
            crash_b = True
        if crash_b and not crash_a:
            crashes += 1
    app_fields = {
        key: value
        for key, value in runtime_a.statics.items()
        if not key.startswith("Bomb$")
    }
    for key, value in app_fields.items():
        if runtime_b.statics.get(key) != value:
            divergences += 1
    return divergences, crashes


class DeletionAttack:
    """Delete bombs, repackage, and measure what it did to the app."""

    def __init__(
        self,
        differential_events: int = 800,
        seed: int = 0,
        signature: PrologueSignature = CLASSIC_SIGNATURE,
    ) -> None:
        self._events = differential_events
        self._seed = seed
        self._signature = signature

    def run(
        self,
        protected: Apk,
        attacker_key: RSAKeyPair,
        original: Optional[Apk] = None,
    ) -> AttackResult:
        dex = protected.dex()
        patched = strip_bombs(dex, self._signature)
        dex.validate()
        # Bombs the signature missed (mesh survivors) are still armed:
        # their prologue branches remain conditional in front of the
        # payload ciphertext.
        live = count_live_anchors(dex)
        stripped = build_apk(dex, protected.resources(), attacker_key)

        corrupted = False
        divergences = 0
        crashes = 0
        if original is not None:
            divergences, crashes = differential_test(
                original, stripped, self._events, self._seed
            )
            corrupted = divergences > 0 or crashes > 0

        return AttackResult(
            attack="code_deletion",
            # Deleting succeeds at silencing detection, but a corrupted
            # app is not a sellable repackage, and a bomb the signature
            # missed still detects -- the defense holds when weaving
            # made deletion destructive or the mesh kept survivors.
            defeated_defense=patched > 0 and not corrupted and live == 0,
            bombs_found=[f"site{index}" for index in range(patched)],
            bombs_disabled=[f"site{index}" for index in range(patched)],
            app_corrupted=corrupted,
            details={
                "signature": self._signature.name,
                "sites_patched": patched,
                "live_sites": live,
                "state_divergences": divergences,
                "new_crashes": crashes,
            },
        )


class AdaptiveStripperAttack:
    """The upgraded multi-pattern stripper against meshed apps.

    Instead of matching invoke names, it learns each bomb's location
    from the ciphertext constant its prologue must reference and
    retargets every guard branch shielding it
    (:func:`repro.attacks.signatures.strip_learned`).  Morphed and
    aliased prologues fall to it -- what remains is the defense's
    second line: weaving makes the blanket strip corrupting, which the
    differential test measures, and ``residual_detections`` reports
    whether any live bomb or mesh guard still fires on the repackage.
    """

    def __init__(
        self,
        differential_events: int = 800,
        seed: int = 0,
        learn_window: int = DEFAULT_LEARN_WINDOW,
        detection_sessions: int = 4,
        detection_events: int = 400,
    ) -> None:
        self._events = differential_events
        self._seed = seed
        self._learn_window = learn_window
        self._sessions = detection_sessions
        self._detection_events = detection_events

    def run(
        self,
        protected: Apk,
        attacker_key: RSAKeyPair,
        original: Optional[Apk] = None,
    ) -> AttackResult:
        dex = protected.dex()
        patched = strip_learned(dex, self._learn_window)
        dex.validate()
        stripped = build_apk(dex, protected.resources(), attacker_key)

        corrupted = False
        divergences = 0
        crashes = 0
        if original is not None:
            divergences, crashes = differential_test(
                original, stripped, self._events, self._seed
            )
            corrupted = divergences > 0 or crashes > 0

        detections, mesh_trips = self._residual_activity(stripped)
        return AttackResult(
            attack="adaptive_strip",
            defeated_defense=(
                patched > 0 and not corrupted and detections == 0 and mesh_trips == 0
            ),
            bombs_found=[f"anchor{index}" for index in range(patched)],
            bombs_disabled=[f"anchor{index}" for index in range(patched)],
            app_corrupted=corrupted,
            details={
                "branches_patched": patched,
                "state_divergences": divergences,
                "new_crashes": crashes,
                "residual_detections": detections,
                "residual_mesh_trips": mesh_trips,
            },
        )

    def _residual_activity(self, stripped: Apk) -> Tuple[int, int]:
        """Fuzz the repackaged app; count surviving detection firings
        and mesh-guard trips across attacker test sessions."""
        detections = 0
        mesh_trips = 0
        for session in range(self._sessions):
            seed = self._seed + 100 + session
            runtime = Runtime(
                stripped.dex(),
                device=DevicePopulation(seed=seed).sample(),
                package=stripped.install_view(),
                seed=seed,
            )
            try:
                runtime.boot()
            except VMError:
                pass
            for event in DynodroidGenerator(stripped.dex(), seed=seed).stream(
                self._detection_events
            ):
                try:
                    runtime.dispatch(event)
                except VMError:
                    pass
            detections += len(runtime.detections)
            mesh_trips += runtime.bombs.count("mesh_tripped")
        return detections, mesh_trips
