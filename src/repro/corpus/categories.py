"""Category profiles and named-app specifications.

Numbers mirror Table 1 of the paper: per-category app counts, average
lines of code, candidate-method counts, existing qualified conditions,
and environment-variable uses.  Our size unit is *instructions*, which
tracks Java LOC closely enough for the structural statistics to carry
over (one bytecode instruction per simple statement, a handful per
compound one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CategoryProfile:
    """Average structural characteristics of one app category."""

    name: str
    app_count: int            # apps in this category (Table 1)
    avg_loc: int              # average lines of Java code
    avg_candidate_methods: int
    avg_existing_qcs: int
    avg_env_vars: int

    @property
    def avg_methods(self) -> int:
        """Total methods; candidates are the non-hot 90%."""
        return max(1, round(self.avg_candidate_methods / 0.9))


#: Table 1, row by row.
CATEGORY_PROFILES: Tuple[CategoryProfile, ...] = (
    CategoryProfile("Game", 105, 3_043, 95, 56, 16),
    CategoryProfile("Science&Edu", 98, 4_046, 86, 44, 8),
    CategoryProfile("Sport&Health", 87, 5_467, 113, 40, 11),
    CategoryProfile("Writing", 149, 7_099, 149, 67, 6),
    CategoryProfile("Navigation", 121, 9_374, 185, 52, 9),
    CategoryProfile("Multimedia", 108, 10_032, 203, 72, 17),
    CategoryProfile("Security", 152, 11_073, 242, 86, 12),
    CategoryProfile("Development", 143, 14_376, 373, 93, 11),
)

CATEGORY_BY_NAME: Dict[str, CategoryProfile] = {p.name: p for p in CATEGORY_PROFILES}

#: Total apps across categories -- the paper evaluates 963.
TOTAL_APPS = sum(p.app_count for p in CATEGORY_PROFILES)


@dataclass(frozen=True)
class NamedAppSpec:
    """One of the eight apps used in Tables 2-5 and Figures 3-5.

    Sizes are chosen so the injected-bomb counts land in the same
    ordering as the paper's Table 2 (BRouter largest, Angulo smallest).
    """

    name: str
    category: str
    seed: int
    methods: int
    instructions: int
    existing_qcs: int
    env_vars: int
    paper_bombs: int          # Table 2 reference value


NAMED_APPS: Tuple[NamedAppSpec, ...] = (
    NamedAppSpec("AndroFish", "Game", 101, 34, 1_100, 48, 16, 67),
    NamedAppSpec("Angulo", "Science&Edu", 102, 26, 900, 33, 8, 43),
    NamedAppSpec("SWJournal", "Writing", 103, 30, 1_000, 40, 6, 58),
    NamedAppSpec("Calendar", "Writing", 104, 46, 1_600, 78, 7, 104),
    NamedAppSpec("BRouter", "Navigation", 105, 90, 3_400, 190, 9, 263),
    NamedAppSpec("Binaural Beat", "Multimedia", 106, 38, 1_300, 60, 17, 82),
    NamedAppSpec("Hash Droid", "Security", 107, 32, 1_100, 47, 12, 65),
    NamedAppSpec("CatLog", "Development", 108, 36, 1_200, 53, 11, 73),
)

NAMED_APP_BY_NAME: Dict[str, NamedAppSpec] = {spec.name: spec for spec in NAMED_APPS}
