"""App assembly: classes, fields, handlers, helpers -> a signed APK.

``build_app`` produces one runnable app matching a category profile (or
explicit structural targets); ``build_named_app`` produces one of the
paper's eight apps, including AndroFish's hand-modelled fish-state
class whose six fields reproduce Figure 3; ``generate_corpus`` yields a
whole category's worth of apps for the Table 1 experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.apk.package import Apk, build_apk
from repro.apk.resources import Resources
from repro.corpus.categories import (
    CATEGORY_BY_NAME,
    CategoryProfile,
    NAMED_APP_BY_NAME,
    NamedAppSpec,
)
from repro.corpus.codegen import (
    AppPlan,
    COMMON_WORDS,
    HANDLER_PARAM_TYPES,
    MethodGenerator,
)
from repro.crypto import RSAKeyPair
from repro.dex.builder import MethodBuilder
from repro.dex.model import DexClass, DexField, DexFile
from repro.vm.events import EventKind


@dataclass
class AppBundle:
    """Everything about one generated app."""

    name: str
    category: str
    dex: DexFile
    resources: Resources
    developer_key: RSAKeyPair
    apk: Apk


_HANDLER_KINDS = tuple(EventKind)

_FIELD_WORDS = (
    "score", "mode", "level", "count", "offset", "total", "index", "ticks",
    "step", "depth", "rate", "mass", "phase", "gain", "bias", "seq",
)
_STR_FIELD_WORDS = ("title", "status", "label", "query", "buffer", "token")


def build_app(
    name: str,
    category: str = "Game",
    seed: int = 0,
    methods: Optional[int] = None,
    instructions: Optional[int] = None,
    existing_qcs: Optional[int] = None,
    env_vars: Optional[int] = None,
    scale: float = 1.0,
) -> AppBundle:
    """Generate one app.

    Structural targets default to the category profile scaled by
    ``scale`` (Table 1 sizes are large; tests use small scales).
    """
    profile = CATEGORY_BY_NAME[category]
    rng = random.Random(seed)
    method_target = methods if methods is not None else max(4, round(profile.avg_methods * scale))
    instr_target = (
        instructions if instructions is not None else max(80, round(profile.avg_loc * scale))
    )
    qc_target = (
        existing_qcs if existing_qcs is not None else max(2, round(profile.avg_existing_qcs * scale))
    )
    env_target = env_vars if env_vars is not None else max(1, round(profile.avg_env_vars * min(1.0, scale * 2)))

    class_count = max(1, min(8, method_target // 6))
    class_names = [f"{_identifier(name)}{'' if i == 0 else i}" for i in range(class_count)]

    plan = AppPlan(rng=rng, class_names=class_names, env_quota=env_target, qc_quota=qc_target)
    dex = DexFile()
    classes = {cls_name: dex.add_class(DexClass(name=cls_name)) for cls_name in class_names}

    _declare_fields(plan, classes, rng)
    generator = MethodGenerator(plan)

    body_budget = instr_target
    remaining_methods = method_target
    avg_len = max(12, instr_target // max(1, method_target))

    # Helpers first (callable by everything generated after them).
    helper_count = max(1, method_target // 5)
    for index in range(helper_count):
        cls_name = rng.choice(class_names)
        params = rng.randrange(0, 3)
        method_name = f"calc{index}"
        method = generator.generate(
            cls_name, method_name, ["int"] * params,
            target_length=_jitter(rng, avg_len), returns_int=True,
        )
        classes[cls_name].add_method(method)
        plan.helpers.append((f"{cls_name}.{method_name}", params))
        body_budget -= method.real_instruction_count()
        remaining_methods -= 1

    # Event handlers: every class gets a few, covering many kinds.
    handler_count = min(remaining_methods, max(len(class_names) * 3, remaining_methods // 2))
    for index in range(handler_count):
        cls_name = class_names[index % len(class_names)]
        kind = _HANDLER_KINDS[index % len(_HANDLER_KINDS)]
        handler_name = f"on_{kind.value}"
        if handler_name in classes[cls_name].methods:
            continue
        param_types = HANDLER_PARAM_TYPES[kind]
        method = generator.generate(
            cls_name, handler_name, param_types,
            target_length=_jitter(rng, avg_len),
        )
        classes[cls_name].add_method(method)
        body_budget -= method.real_instruction_count()
        remaining_methods -= 1

    # Plain methods to hit the size target.
    index = 0
    while remaining_methods > 0 and body_budget > 0:
        cls_name = rng.choice(class_names)
        method_name = f"fn{index}"
        index += 1
        if method_name in classes[cls_name].methods:
            continue
        params = rng.randrange(0, 3)
        method = generator.generate(
            cls_name, method_name, ["int"] * params,
            target_length=_jitter(rng, avg_len), returns_int=bool(rng.randrange(2)),
        )
        classes[cls_name].add_method(method)
        plan.helpers.append((f"{cls_name}.{method_name}", params))
        body_budget -= method.real_instruction_count()
        remaining_methods -= 1

    _add_main(classes[class_names[0]], plan, rng)
    dex.validate()

    # Realistic asset weight: in shipping APKs, code is a small fraction
    # of the package (images/audio/data dominate); the paper's 8-13%
    # size-increase numbers are relative to such packages.
    from repro.dex.serializer import serialize_dex

    dex_bytes = len(serialize_dex(dex))
    resources = Resources(
        strings={
            "app_name": name,
            "greeting": f"Welcome to {name}, enjoy your stay with us today",
            "tagline": "the quick brown fox jumps over the lazy dog every single morning",
        },
        app_name=name,
        author=f"dev-{seed}",
        assets={
            "media.bin": rng.randbytes(dex_bytes * 18),
            "layouts.bin": rng.randbytes(dex_bytes * 4),
        },
    )
    developer_key = RSAKeyPair.generate(seed=seed + 7_000)
    apk = build_apk(dex, resources, developer_key)
    return AppBundle(
        name=name, category=category, dex=dex, resources=resources,
        developer_key=developer_key, apk=apk,
    )


def build_named_app(name: str, scale: float = 1.0) -> AppBundle:
    """One of the paper's eight apps (Tables 2-5, Figures 3-5)."""
    spec: NamedAppSpec = NAMED_APP_BY_NAME[name]
    bundle = build_app(
        name=spec.name,
        category=spec.category,
        seed=spec.seed,
        methods=max(4, round(spec.methods * scale)),
        instructions=max(80, round(spec.instructions * scale)),
        existing_qcs=max(2, round(spec.existing_qcs * scale)),
        env_vars=spec.env_vars,
    )
    if name == "AndroFish":
        _add_androfish_fish_class(bundle)
    return bundle


def generate_corpus(
    category: str,
    count: int,
    scale: float = 0.25,
    seed: int = 0,
) -> Iterator[AppBundle]:
    """Apps of one category for corpus-level experiments."""
    for index in range(count):
        yield build_app(
            name=f"{category.replace('&', '')}App{index}",
            category=category,
            seed=seed * 10_000 + index,
            scale=scale,
        )


# ---------------------------------------------------------------------------


def _identifier(name: str) -> str:
    return "".join(ch for ch in name if ch.isalnum()) or "App"


def _jitter(rng: random.Random, mean: int) -> int:
    return max(8, int(mean * rng.uniform(0.6, 1.5)))


def _declare_fields(plan: AppPlan, classes: Dict[str, DexClass], rng: random.Random) -> None:
    for cls_name, cls in classes.items():
        for word in rng.sample(_FIELD_WORDS, rng.randrange(3, 7)):
            if word in cls.fields:
                continue
            cls.add_field(DexField(name=word, static=True, initial=rng.randrange(0, 50)))
            plan.int_fields.append(f"{cls_name}.{word}")
        for word in rng.sample(_STR_FIELD_WORDS, rng.randrange(1, 3)):
            if word in cls.fields:
                continue
            cls.add_field(
                DexField(name=word, static=True, initial=rng.choice(COMMON_WORDS))
            )
            plan.str_fields.append(f"{cls_name}.{word}")


def _add_main(cls: DexClass, plan: AppPlan, rng: random.Random) -> None:
    """App entry: seed a few fields so state starts varied."""
    builder = MethodBuilder(cls.name, "main", params=0)
    for field_name in plan.int_fields[:4]:
        reg = builder.const_new(rng.randrange(0, 10))
        builder.sput(reg, field_name)
    builder.ret_void()
    cls.add_method(builder.build())


def _add_androfish_fish_class(bundle: AppBundle) -> None:
    """AndroFish's fish-state class: the six Figure 3 variables.

    ``dir`` flips between 0 and 1 (few unique values), ``width`` and
    ``height`` wander in small ranges, ``speed`` in a medium range, and
    ``posX``/``posY`` take values across 0..100000/0..160000 -- exactly
    the entropy spread Figure 3 visualizes.
    """
    dex = bundle.dex
    cls = dex.add_class(DexClass(name="Fish"))
    for name, initial in (
        ("dir", 0), ("width", 24), ("height", 16),
        ("speed", 40), ("posX", 500), ("posY", 800),
    ):
        cls.add_field(DexField(name=name, static=True, initial=initial))

    builder = MethodBuilder("Fish", "on_tick", params=1)
    millis = 0
    # dir flips when posX crosses the screen bounds.
    pos_x = builder.reg()
    builder.sget(pos_x, "Fish.posX")
    speed = builder.reg()
    builder.sget(speed, "Fish.speed")
    direction = builder.reg()
    builder.sget(direction, "Fish.dir")
    flipped = builder.fresh_label("flip")
    advance = builder.fresh_label("advance")
    builder.if_nez(direction, flipped)
    builder.add(pos_x, pos_x, speed)
    builder.goto(advance)
    builder.label(flipped)
    builder.sub(pos_x, pos_x, speed)
    builder.label(advance)
    limit = builder.const_new(100_000)
    zero = builder.const_new(0)
    in_range = builder.fresh_label("inr")
    builder.if_lt(pos_x, limit, in_range)
    one = builder.const_new(1)
    builder.sput(one, "Fish.dir")
    builder.label(in_range)
    under = builder.fresh_label("under")
    builder.if_gt(pos_x, zero, under)
    builder.sput(zero, "Fish.dir")
    builder.label(under)
    builder.sput(pos_x, "Fish.posX")
    # posY drifts with the tick argument; speed/width/height wobble.
    pos_y = builder.reg()
    builder.sget(pos_y, "Fish.posY")
    builder.add(pos_y, pos_y, millis)
    wrap = builder.reg()
    builder.rem_lit(wrap, pos_y, 160_000)
    builder.sput(wrap, "Fish.posY")
    builder.sget(speed, "Fish.speed")
    builder.add_lit(speed, speed, 3)
    builder.rem_lit(speed, speed, 200)
    builder.sput(speed, "Fish.speed")
    width = builder.reg()
    builder.sget(width, "Fish.width")
    builder.add_lit(width, width, 1)
    builder.rem_lit(width, width, 16)
    builder.add_lit(width, width, 15)
    builder.sput(width, "Fish.width")
    height = builder.reg()
    builder.sget(height, "Fish.height")
    builder.add_lit(height, height, 1)
    builder.rem_lit(height, height, 12)
    builder.add_lit(height, height, 10)
    builder.sput(height, "Fish.height")
    builder.ret_void()
    cls.add_method(builder.build())

    # Tapping a fish scores when the tap lands on its position band.
    touch = MethodBuilder("Fish", "on_touch", params=2)
    x, y = 0, 1
    band = touch.reg()
    touch.sget(band, "Fish.posX")
    touch.rem_lit(band, band, 1000)
    tap = touch.reg()
    touch.mul_lit(tap, x, 1)
    touch.rem_lit(tap, tap, 1000)
    miss = touch.fresh_label("miss")
    touch.if_ne(tap, band, miss)
    score_cls = sorted(dex.classes)[0]
    touch.label(miss)
    touch.ret_void()
    cls.add_method(touch.build())

    # Rebuild the APK so the packaged dex includes the Fish class.
    bundle.apk = build_apk(dex, bundle.resources, bundle.developer_key)
