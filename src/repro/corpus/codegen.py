"""Random-but-runnable method body generation.

The generator produces code with the *structural features BombDroid
cares about* -- equality conditions against constants (weak/medium/
strong mix), switches, loops, environment-variable reads, static-field
state -- while guaranteeing the result executes without faults under
any event stream: loops are bounded, division is by nonzero literals,
registers are type-tracked (int vs string) so no operation sees an
operand of the wrong type.

Satisfiability of the generated QCs is deliberately mixed, because the
fuzzing experiments (Table 4) hinge on it:

* *easy* -- ``param % m == k``: a random fuzzer hits it in ~m tries;
* *moderate* -- exact equality with a small input domain (menu ids,
  key codes);
* *hard* -- equality between an app field and a rare value, or with a
  string outside the fuzzers' dictionaries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dex.builder import MethodBuilder
from repro.dex.model import DexMethod
from repro.vm.device import ChoiceDomain, ENV_DOMAINS, IntDomain
from repro.vm.events import ARITY, EventKind

#: Words some string QCs use; overlaps with the fuzzers' text dictionary
#: so a fraction of string conditions is reachable by fuzzing.
COMMON_WORDS = (
    "hello", "test", "fish", "route", "note", "map", "journal", "calendar",
    "beat", "hash", "log", "pause", "play", "save", "load", "north",
)

#: Words no fuzzer dictionary contains (hard string QCs).
RARE_WORDS = (
    "xyzzy_warp", "qmlrt_gate", "zpt_unlock_77", "kv9_secret", "jjq_mode",
    "wqx_trigger", "uu7_panel", "grv_stage4",
)

_STR_ENVS = tuple(
    name
    for name, domain in ENV_DOMAINS.items()
    if isinstance(domain, ChoiceDomain) and isinstance(domain.choices[0][0], str)
)
_INT_ENVS = tuple(
    name
    for name, domain in ENV_DOMAINS.items()
    if isinstance(domain, IntDomain)
    or (isinstance(domain, ChoiceDomain) and isinstance(domain.choices[0][0], int))
)

#: Handler parameter types by event kind.
HANDLER_PARAM_TYPES: Dict[EventKind, Tuple[str, ...]] = {
    EventKind.TOUCH: ("int", "int"),
    EventKind.LONG_PRESS: ("int", "int"),
    EventKind.KEY: ("int",),
    EventKind.TEXT: ("str",),
    EventKind.MENU: ("int",),
    EventKind.SCROLL: ("int",),
    EventKind.BACK: (),
    EventKind.TICK: ("int",),
    EventKind.SENSOR: ("int",),
}


@dataclass
class AppPlan:
    """Shared generation context for one app."""

    rng: random.Random
    class_names: List[str]
    int_fields: List[str] = field(default_factory=list)   # qualified names
    str_fields: List[str] = field(default_factory=list)
    bool_fields: List[str] = field(default_factory=list)
    helpers: List[Tuple[str, int]] = field(default_factory=list)  # (name, params)
    env_quota: int = 0
    qc_quota: int = 0
    env_used: int = 0
    qcs_emitted: int = 0


class MethodGenerator:
    """Generates one method body."""

    def __init__(self, plan: AppPlan) -> None:
        self._plan = plan
        self._rng = plan.rng

    # -- public -----------------------------------------------------------

    def generate(
        self,
        class_name: str,
        method_name: str,
        param_types: Sequence[str],
        target_length: int,
        returns_int: bool = False,
        force_qcs: int = 0,
    ) -> DexMethod:
        builder = MethodBuilder(class_name, method_name, params=len(param_types))
        int_regs = [i for i, t in enumerate(param_types) if t == "int"]
        str_regs = [i for i, t in enumerate(param_types) if t == "str"]
        state = _MethodState(builder, int_regs, str_regs)

        for _ in range(force_qcs):
            self._emit_qc(state)
        while len(builder._instructions) < target_length:
            self._emit_statement(state)

        if returns_int:
            builder.ret(self._int_source(state))
        else:
            builder.ret_void()
        return builder.build()

    # -- statement selection -----------------------------------------------

    def _emit_statement(self, state: "_MethodState") -> None:
        plan = self._plan
        rng = self._rng
        choices = [
            (self._emit_arith, 24),
            (self._emit_field_update, 16),
            (self._emit_compare_branch, 10),
            (self._emit_loop, 11),
            (self._emit_string_op, 8),
            (self._emit_log, 3),
        ]
        if plan.qcs_emitted < plan.qc_quota:
            choices.append((self._emit_qc, 18))
        if plan.env_used < plan.env_quota:
            choices.append((self._emit_env_read, 8))
        if plan.helpers:
            choices.append((self._emit_helper_call, 8))
        emitters, weights = zip(*choices)
        rng.choices(emitters, weights=weights, k=1)[0](state)

    # -- sources ---------------------------------------------------------------

    def _int_source(self, state: "_MethodState") -> int:
        rng = self._rng
        plan = self._plan
        if state.int_regs and rng.random() < 0.6:
            return rng.choice(state.int_regs)
        reg = state.builder.reg()
        if plan.int_fields and rng.random() < 0.6:
            state.builder.sget(reg, rng.choice(plan.int_fields))
        else:
            state.builder.const(reg, rng.randrange(0, 1000))
        state.int_regs.append(reg)
        return reg

    def _str_source(self, state: "_MethodState") -> int:
        rng = self._rng
        plan = self._plan
        if state.str_regs and rng.random() < 0.5:
            return rng.choice(state.str_regs)
        reg = state.builder.reg()
        if plan.str_fields and rng.random() < 0.6:
            state.builder.sget(reg, rng.choice(plan.str_fields))
        else:
            state.builder.const(reg, rng.choice(COMMON_WORDS + RARE_WORDS))
        state.str_regs.append(reg)
        return reg

    # -- emitters ------------------------------------------------------------------

    def _emit_arith(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        a = self._int_source(state)
        dst = builder.reg()
        kind = rng.randrange(4)
        if kind == 0:
            builder.add(dst, a, self._int_source(state))
        elif kind == 1:
            builder.mul_lit(dst, a, rng.randrange(2, 9))
        elif kind == 2:
            builder.sub_lit(dst, a, rng.randrange(1, 50))
        else:
            builder.and_lit(dst, a, (1 << rng.randrange(3, 9)) - 1)
        state.int_regs.append(dst)

    def _emit_field_update(self, state: "_MethodState") -> None:
        plan = self._plan
        if not plan.int_fields:
            return self._emit_arith(state)
        field_name = self._rng.choice(plan.int_fields)
        builder = state.builder
        reg = builder.reg()
        builder.sget(reg, field_name)
        builder.add_lit(reg, reg, self._rng.randrange(1, 7))
        builder.sput(reg, field_name)
        state.int_regs.append(reg)

    def _emit_env_read(self, state: "_MethodState") -> None:
        plan = self._plan
        builder = state.builder
        rng = self._rng
        plan.env_used += 1
        if rng.random() < 0.3 and _STR_ENVS:
            name = rng.choice(_STR_ENVS)
            name_reg = builder.const_new(name)
            value = builder.reg()
            builder.invoke(value, "android.env.get", (name_reg,))
            state.str_regs.append(value)
        else:
            name = rng.choice(_INT_ENVS)
            name_reg = builder.const_new(name)
            value = builder.reg()
            builder.invoke(value, "android.env.get", (name_reg,))
            state.int_regs.append(value)

    def _emit_compare_branch(self, state: "_MethodState") -> None:
        """A non-QC conditional (ordering comparison)."""
        builder = state.builder
        rng = self._rng
        a = self._int_source(state)
        b = self._int_source(state)
        skip = builder.fresh_label("cmp")
        rng.choice([builder.if_lt, builder.if_ge, builder.if_gt, builder.if_le])(a, b, skip)
        self._emit_small_body(state)
        builder.label(skip)

    def _emit_loop(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        counter = builder.const_new(0)
        limit = builder.const_new(rng.randrange(8, 40))
        accumulator = self._int_source(state)
        top = builder.fresh_label("loop")
        done = builder.fresh_label("done")
        builder.label(top)
        builder.if_ge(counter, limit, done)
        builder.add(accumulator, accumulator, counter)
        builder.add_lit(counter, counter, 1)
        builder.goto(top)
        builder.label(done)

    def _emit_string_op(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        s = self._str_source(state)
        if rng.random() < 0.5:
            word = builder.const_new(rng.choice(COMMON_WORDS))
            dst = builder.reg()
            builder.invoke(dst, "java.str.concat", (s, word))
            state.str_regs.append(dst)
            if self._plan.str_fields and rng.random() < 0.5:
                builder.sput(dst, rng.choice(self._plan.str_fields))
        else:
            dst = builder.reg()
            builder.invoke(dst, "java.str.length", (s,))
            state.int_regs.append(dst)

    def _emit_log(self, state: "_MethodState") -> None:
        builder = state.builder
        message = self._str_source(state)
        builder.invoke(None, "android.log.i", (message,))

    def _emit_helper_call(self, state: "_MethodState") -> None:
        builder = state.builder
        name, params = self._rng.choice(self._plan.helpers)
        args = [self._int_source(state) for _ in range(params)]
        dst = builder.reg()
        builder.invoke(dst, name, args)
        state.int_regs.append(dst)

    # -- qualified conditions ------------------------------------------------------

    def _emit_qc(self, state: "_MethodState") -> None:
        plan = self._plan
        plan.qcs_emitted += 1

        # Most conditions in real apps sit on paths that are *not* taken
        # on every interaction (the paper's observation D2: a tester
        # covers a small portion of an app).  Wrap a majority of QC
        # sites in an input-dependent guard so they are reached only on
        # a fraction of executions -- this is also what keeps the
        # protected app's overhead low (Table 5): dormant bombs cost
        # nothing when control never reaches them.
        builder = state.builder
        rng = self._rng
        guard_label = None
        # Guard on an *event parameter* where one exists: it varies per
        # interaction, so the site is rarely hit on any single event but
        # reliably reachable over a session.  (A constant-valued guard
        # would make the site statically dead.)
        int_params = [r for r in state.int_regs if r < builder.params]
        if int_params and rng.random() < 0.6:
            source = rng.choice(int_params)
            gated = builder.reg()
            builder.rem_lit(gated, source, rng.choice((4, 6, 8)))
            guard_label = builder.fresh_label("rare")
            builder.if_nez(gated, guard_label)

        # Registers defined under the guard are conditionally assigned;
        # scope them so later code never reads a maybe-undefined value.
        int_mark = len(state.int_regs)
        str_mark = len(state.str_regs)

        roll = rng.random()
        if roll < 0.40:
            self._emit_bool_qc(state)
        elif roll < 0.62:
            self._emit_int_qc(state)
        elif roll < 0.80:
            self._emit_switch_qc(state)
        else:
            self._emit_str_qc(state)

        if guard_label is not None:
            builder.label(guard_label)
            del state.int_regs[int_mark:]
            del state.str_regs[str_mark:]

    def _emit_int_qc(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        if rng.random() < 0.55:
            # Easy: (x % m) == k -- random fuzzing hits it in ~m tries.
            source = self._int_source(state)
            modulus = rng.choice((4, 8, 16, 32))
            tested = builder.reg()
            builder.rem_lit(tested, source, modulus)
            constant = rng.randrange(modulus)
        else:
            # Hard: exact match on a wider value.
            tested = self._int_source(state)
            constant = rng.randrange(0, rng.choice((12, 285, 4096, 100_000)))
        const_reg = builder.reg()
        builder.const(const_reg, constant)
        skip = builder.fresh_label("qci")
        builder.if_ne(tested, const_reg, skip)
        self._emit_small_body(state)
        builder.label(skip)

    def _emit_str_qc(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        subject = self._str_source(state)
        word = rng.choice(COMMON_WORDS if rng.random() < 0.5 else RARE_WORDS)
        const_reg = builder.reg()
        builder.const(const_reg, word)
        result = builder.reg()
        builder.invoke(result, "java.str.equals", (subject, const_reg))
        skip = builder.fresh_label("qcs")
        builder.if_eqz(result, skip)
        self._emit_small_body(state)
        builder.label(skip)

    def _emit_bool_qc(self, state: "_MethodState") -> None:
        """Weak QC: a boolean test (string comparison of two variables)."""
        builder = state.builder
        a = self._str_source(state)
        b = self._str_source(state)
        result = builder.reg()
        builder.invoke(result, "java.str.equals", (a, b))
        skip = builder.fresh_label("qcb")
        if self._rng.random() < 0.5:
            builder.if_eqz(result, skip)
        else:
            builder.if_nez(result, skip)
        self._emit_small_body(state)
        builder.label(skip)

    def _emit_switch_qc(self, state: "_MethodState") -> None:
        builder = state.builder
        rng = self._rng
        source = self._int_source(state)
        tested = builder.reg()
        builder.rem_lit(tested, source, 16)
        case_count = rng.randrange(2, 5)
        keys = rng.sample(range(16), case_count)
        end = builder.fresh_label("swend")
        table = {}
        case_labels = []
        for key in keys:
            label = builder.fresh_label("case")
            table[key] = label
            case_labels.append(label)
        builder.switch(tested, table)
        builder.goto(end)
        for label in case_labels:
            builder.label(label)
            self._emit_small_body(state)
            builder.goto(end)
        builder.label(end)

    def _emit_small_body(self, state: "_MethodState") -> None:
        """1-3 simple statements: the weavable content of a condition.

        Registers defined inside a conditional body are scoped to it --
        code after the join must not read a register that is only
        assigned when the branch was taken.
        """
        int_mark = len(state.int_regs)
        str_mark = len(state.str_regs)
        for _ in range(self._rng.randrange(1, 4)):
            if self._plan.int_fields and self._rng.random() < 0.7:
                self._emit_field_update(state)
            else:
                self._emit_arith(state)
        del state.int_regs[int_mark:]
        del state.str_regs[str_mark:]


@dataclass
class _MethodState:
    builder: MethodBuilder
    int_regs: List[int]
    str_regs: List[int]
