"""Synthetic app corpus.

Stands in for the 963 F-Droid apps: eight category profiles with the
static characteristics of Table 1, a generator that produces runnable
apps matching a profile, and the eight named apps (AndroFish, Angulo,
SWJournal, Calendar, BRouter, Binaural Beat, Hash Droid, CatLog) used
throughout the paper's per-app tables.
"""

from repro.corpus.categories import (
    CategoryProfile,
    CATEGORY_PROFILES,
    CATEGORY_BY_NAME,
    NamedAppSpec,
    NAMED_APPS,
    NAMED_APP_BY_NAME,
    TOTAL_APPS,
)
from repro.corpus.generator import AppBundle, build_app, build_named_app, generate_corpus

__all__ = [
    "CategoryProfile",
    "CATEGORY_PROFILES",
    "CATEGORY_BY_NAME",
    "NAMED_APP_BY_NAME",
    "TOTAL_APPS",
    "NamedAppSpec",
    "NAMED_APPS",
    "AppBundle",
    "build_app",
    "build_named_app",
    "generate_corpus",
]
