"""Stealth lint rules: does the protected app leak what the paper hides?

Each rule inspects the *protected* app the way an adversary (or a
post-instrumentation regression) would, and cross-checks it against the
instrumentation report when one is available.  Rules are registered in
:data:`RULES` and run by :func:`repro.lint.engine.run_lint`.

Rule catalog (paper anchors in parentheses):

======================  =====================================================
``leaked-trigger-const`` the plaintext trigger constant ``c`` survives in
                        the method after bomb injection (§3.2: "the constant
                        value c, which works as the key, is removed")
``bomb-in-loop``        a bomb prologue sits inside a natural loop (§7.2's
                        placement rule; wrecks the overhead budget)
``live-set-mismatch``   registers packed into the payload array disagree
                        with the registers unpacked afterwards or with the
                        liveness result recorded at weave time (§3.4)
``low-entropy-qc``      an artificial QC tests a field whose profiled
                        unique-value count is below the Figure 3 threshold
``text-search-surface`` plaintext detection APIs findable by the
                        text-search adversary (§2.1 / attacks/text_search)
``weak-salt``           two bombs share one salt, collapsing their key
                        domains (§3.2: per-bomb random salt)
``hso-localizable``     our own static trigger detector (Difuzer role,
                        :mod:`repro.analysis.triggers`) can localize a
                        bomb's payload -- the stealth claim is void
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TYPE_CHECKING,
    Tuple,
)

from repro.analysis.defs import constant_in_block
from repro.analysis.loops import instructions_in_loops
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import Op, TERMINATORS
from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids repro.core import
    from repro.lint.engine import LintContext

#: Framework calls that must never appear in plaintext in the main dex:
#: finding one is exactly what defeats the defense in the text-search
#: attack (the detection logic is supposed to live only inside encrypted
#: payloads).
PLAINTEXT_DETECTION_APIS = (
    "android.pm.get_public_key",
    "android.pm.get_manifest_digest",
    "android.pm.get_method_hash",
    "bomb.stego_extract",
)

#: Substrings an attacker greps disassembly for (attacks/text_search.py).
SUSPICIOUS_NAME_FRAGMENTS = (
    "get_public_key",
    "get_manifest_digest",
    "get_method_hash",
)


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: Severity
    paper_ref: str
    description: str
    check: Callable[["LintContext"], Iterable[Diagnostic]]


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity, paper_ref: str, description: str):
    """Register a check function under ``rule_id``."""

    def decorator(fn: Callable[["LintContext"], Iterable[Diagnostic]]):
        RULES[rule_id] = Rule(
            id=rule_id,
            severity=severity,
            paper_ref=paper_ref,
            description=description,
            check=fn,
        )
        return fn

    return decorator


# ---------------------------------------------------------------------------
# Bomb-site recovery.  The Listing-3 prologue has a rigid shape, so the
# lint engine can re-derive each site's materials (salt, id, packed
# register slots) straight from the protected bytecode.
# ---------------------------------------------------------------------------


@dataclass
class BombSite:
    """One recovered bomb invocation inside a protected method."""

    method: DexMethod
    hash_pc: int                     # pc of the ``bomb.hash`` INVOKE
    var_reg: Optional[int] = None    # register holding the tested X
    salt_hex: Optional[str] = None
    bomb_id: Optional[str] = None
    load_run_pc: Optional[int] = None
    declared_len: Optional[int] = None       # array-length constant (r + 2)
    packed_stores: Dict[int, int] = field(default_factory=dict)  # slot -> reg
    packed_loads: Dict[int, int] = field(default_factory=dict)   # slot -> reg

    @property
    def packed_count(self) -> Optional[int]:
        if self.declared_len is None:
            return None
        return self.declared_len - 2


def _canonical(value, aliases: Optional[Dict[str, str]]):
    """Resolve an invoke symbol through the app's alias table (mesh
    ALIASED prologues route ``bomb.*`` through per-app names)."""
    if aliases and isinstance(value, str):
        return aliases.get(value, value)
    return value


def _recover_site(
    method: DexMethod, hash_pc: int, aliases: Optional[Dict[str, str]] = None
) -> BombSite:
    site = BombSite(method=method, hash_pc=hash_pc)
    instructions = method.instructions
    invoke = instructions[hash_pc]
    if len(invoke.args) == 3:
        var_reg, salt_reg, id_reg = invoke.args
        site.var_reg = var_reg
        salt = constant_in_block(method, hash_pc, salt_reg)
        if salt is not None and isinstance(salt[1], str):
            site.salt_hex = salt[1]
        bomb_id = constant_in_block(method, hash_pc, id_reg)
        if bomb_id is not None and isinstance(bomb_id[1], str):
            site.bomb_id = bomb_id[1]

    # Find this site's load_run (stop if another site starts first).
    array_reg: Optional[int] = None
    for pc in range(hash_pc + 1, len(instructions)):
        instr = instructions[pc]
        if instr.op is not Op.INVOKE:
            continue
        name = _canonical(instr.value, aliases)
        if name == "bomb.hash":
            break
        if name == "bomb.load_run" and len(instr.args) == 4:
            site.load_run_pc = pc
            array_reg = instr.args[2]
            break
    if site.load_run_pc is None or array_reg is None:
        return site

    # Walk back to the NEW_ARRAY, reading the declared length and the
    # slot -> register packing (const idx; aput reg, arr, idx pairs).
    for pc in range(site.load_run_pc - 1, hash_pc, -1):
        instr = instructions[pc]
        if instr.op is Op.NEW_ARRAY and instr.dst == array_reg:
            length = constant_in_block(method, pc, instr.a)
            if length is not None and isinstance(length[1], int):
                site.declared_len = length[1]
            break
    for pc in range(hash_pc + 1, site.load_run_pc):
        instr = instructions[pc]
        if instr.op is Op.APUT and instr.dst == array_reg:
            index = constant_in_block(method, pc, instr.b)
            if index is not None and isinstance(index[1], int):
                site.packed_stores[index[1]] = instr.a

    # Walk forward over the unpack sequence (aget reg, result, idx).
    result_reg = instructions[site.load_run_pc].dst
    count = site.packed_count
    for pc in range(site.load_run_pc + 1, len(instructions)):
        instr = instructions[pc]
        if instr.op is Op.INVOKE and _canonical(instr.value, aliases) in (
            "bomb.hash",
            "bomb.load_run",
        ):
            break
        if instr.op in (Op.RETURN, Op.RETURN_VOID, Op.THROW):
            # The dispatch tail (ret_void / label / aget rv / ret) still
            # follows; keep scanning until the next site instead.
            continue
        if instr.op is Op.AGET and instr.a == result_reg:
            index = constant_in_block(method, pc, instr.b)
            if index is None or not isinstance(index[1], int):
                continue
            if count is not None and index[1] >= count:
                continue  # control / return-value slots, not live state
            site.packed_loads[index[1]] = instr.dst
    return site


def bomb_sites(
    dex: DexFile, aliases: Optional[Dict[str, str]] = None
) -> List[BombSite]:
    """Every recoverable bomb site in ``dex``, in method/pc order.

    ``aliases`` (``alias -> canonical``) lets the linter see through a
    meshed app's per-app alias symbols; pass the protection pipeline's
    table, or derive one from an installed APK's resources with
    :func:`repro.vm.aliases.alias_table_from_resources`.
    """
    sites: List[BombSite] = []
    for method in dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.INVOKE and _canonical(instr.value, aliases) == "bomb.hash":
                sites.append(_recover_site(method, pc, aliases))
    return sites


# ---------------------------------------------------------------------------
# The rules.
# ---------------------------------------------------------------------------


@rule(
    "leaked-trigger-const",
    Severity.ERROR,
    "§3.2",
    "plaintext trigger constant c survives after bomb injection",
)
def check_leaked_trigger_const(ctx: "LintContext") -> Iterator[Diagnostic]:
    if ctx.report is None:
        return
    spans = _site_spans(ctx)
    for bomb in ctx.report.bombs:
        if bomb.const_value is None:
            continue
        try:
            method = ctx.dex.get_method(bomb.method)
        except Exception:
            continue
        emitted = spans.get(method.qualified_name, ())
        for pc, instr in enumerate(method.instructions):
            if instr.op is not Op.CONST:
                continue
            if any(start <= pc < stop for start, stop in emitted):
                continue  # the bomb's own prologue/dispatch, not app code
            value = instr.value
            if type(value) is not type(bomb.const_value) or value != bomb.const_value:
                continue
            if bomb.const_erased and _feeds_comparison(method, pc, instr.dst):
                yield Diagnostic(
                    rule="leaked-trigger-const",
                    severity=Severity.ERROR,
                    method=method.qualified_name,
                    span=(pc, pc + 1),
                    message=(
                        f"trigger constant {bomb.const_value!r} of bomb "
                        f"{bomb.bomb_id} was erased at weave time but is "
                        f"back in the bytecode"
                    ),
                )
            elif isinstance(value, str):
                # Surviving string constants are the grep-able surface a
                # HARVESTER-style attacker keys on; int literals are too
                # common to flag when legitimately still consumed.
                yield Diagnostic(
                    rule="leaked-trigger-const",
                    severity=Severity.WARNING,
                    method=method.qualified_name,
                    span=(pc, pc + 1),
                    message=(
                        f"trigger string {bomb.const_value!r} of bomb "
                        f"{bomb.bomb_id} is still text-searchable in the method"
                    ),
                )


def _site_spans(ctx: "LintContext") -> Dict[str, List[Tuple[int, int]]]:
    """Per-method pc ranges occupied by emitted bomb code.

    A span runs from the ``bomb.hash`` INVOKE to the no-match join label
    (the target of the prologue's ``IF_EQZ``), covering the dispatch
    tail -- whose control-slot compares legitimately use small int
    literals that may collide with a trigger constant.
    """
    spans: Dict[str, List[Tuple[int, int]]] = {}
    for site in ctx.sites():
        instructions = site.method.instructions
        labels = site.method.label_map()
        end = site.load_run_pc if site.load_run_pc is not None else site.hash_pc
        for pc in range(site.hash_pc + 1, len(instructions)):
            instr = instructions[pc]
            if instr.op is Op.IF_EQZ and instr.target in labels:
                end = max(end, labels[instr.target])
                break
        spans.setdefault(site.method.qualified_name, []).append(
            (site.hash_pc, end + 1)
        )
    return spans


def _feeds_comparison(method: DexMethod, pc: int, reg: Optional[int]) -> bool:
    """Whether the value defined at ``pc`` reaches an equality test.

    A trigger constant is only "back" when it reproduces the qualified
    condition's shape -- feeding an ``IF_EQ``/``IF_NE``/``CMP`` or a
    ``java.str.*`` comparison.  A mere value collision (the same literal
    used as an array index or loop bound) is not a leak.
    """
    if reg is None:
        return False
    for cursor in range(pc + 1, len(method.instructions)):
        instr = method.instructions[cursor]
        if instr.op is Op.LABEL:
            return False
        if instr.op in (Op.IF_EQ, Op.IF_NE, Op.CMP) and reg in (instr.a, instr.b):
            return True
        if (
            instr.op is Op.INVOKE
            and isinstance(instr.value, str)
            and instr.value.startswith("java.str.")
            and reg in instr.args
        ):
            return True
        if reg in instr.writes() or instr.op in TERMINATORS:
            return False
    return False


@rule(
    "bomb-in-loop",
    Severity.ERROR,
    "§7.2",
    "bomb prologue placed inside a natural loop",
)
def check_bomb_in_loop(ctx: "LintContext") -> Iterator[Diagnostic]:
    for method, sites in ctx.sites_by_method():
        try:
            forbidden = instructions_in_loops(method)
        except Exception:
            continue  # malformed method; the verifier reports it
        for site in sites:
            if site.hash_pc in forbidden:
                yield Diagnostic(
                    rule="bomb-in-loop",
                    severity=Severity.ERROR,
                    method=method.qualified_name,
                    span=(site.hash_pc, site.hash_pc + 1),
                    message=(
                        f"bomb {site.bomb_id or '?'} evaluates its hash inside "
                        f"a natural loop (placement rule violated)"
                    ),
                )


@rule(
    "live-set-mismatch",
    Severity.ERROR,
    "§3.4",
    "packed payload registers disagree with the liveness result",
)
def check_live_set_mismatch(ctx: "LintContext") -> Iterator[Diagnostic]:
    recorded: Dict[str, Tuple[int, ...]] = {}
    if ctx.report is not None:
        recorded = {bomb.bomb_id: bomb.packed_regs for bomb in ctx.report.bombs}
    for site in ctx.sites():
        if site.load_run_pc is None:
            continue
        span = (site.hash_pc, site.load_run_pc + 1)
        count = site.packed_count
        if count is None:
            continue  # array length untraceable; nothing sound to compare
        if sorted(site.packed_stores) != list(range(count)):
            yield Diagnostic(
                rule="live-set-mismatch",
                severity=Severity.ERROR,
                method=site.method.qualified_name,
                span=span,
                message=(
                    f"bomb {site.bomb_id or '?'} declares {count} live slots "
                    f"but packs slots {sorted(site.packed_stores)}"
                ),
            )
            continue
        if site.packed_stores != site.packed_loads:
            yield Diagnostic(
                rule="live-set-mismatch",
                severity=Severity.ERROR,
                method=site.method.qualified_name,
                span=span,
                message=(
                    f"bomb {site.bomb_id or '?'} packs registers "
                    f"{site.packed_stores} but unpacks {site.packed_loads}"
                ),
            )
            continue
        expected = recorded.get(site.bomb_id or "")
        if expected is not None:
            actual = tuple(site.packed_stores[i] for i in sorted(site.packed_stores))
            if actual != tuple(expected):
                yield Diagnostic(
                    rule="live-set-mismatch",
                    severity=Severity.ERROR,
                    method=site.method.qualified_name,
                    span=span,
                    message=(
                        f"bomb {site.bomb_id} packs {actual} but liveness "
                        f"analysis recorded {tuple(expected)} at weave time"
                    ),
                )


@rule(
    "low-entropy-qc",
    Severity.WARNING,
    "§7.2 / Fig. 3",
    "artificial QC field below the profiled entropy threshold",
)
def check_low_entropy_qc(ctx: "LintContext") -> Iterator[Diagnostic]:
    if ctx.field_entropy is None:
        return
    for site in ctx.sites():
        if site.var_reg is None:
            continue
        field_name = _sget_source(site.method, site.hash_pc, site.var_reg)
        if field_name is None:
            continue
        unique = ctx.field_entropy.get(field_name)
        if unique is not None and unique < ctx.min_qc_entropy:
            yield Diagnostic(
                rule="low-entropy-qc",
                severity=Severity.WARNING,
                method=site.method.qualified_name,
                span=(site.hash_pc, site.hash_pc + 1),
                message=(
                    f"bomb {site.bomb_id or '?'} tests field {field_name!r} "
                    f"with only {unique} profiled unique value(s) "
                    f"(threshold {ctx.min_qc_entropy}); the outer trigger "
                    f"fires too predictably"
                ),
            )


def _sget_source(method: DexMethod, pc: int, reg: int) -> Optional[str]:
    """Field name when ``reg`` at ``pc`` was defined by an in-block SGET."""
    cursor = pc - 1
    while cursor >= 0:
        instr = method.instructions[cursor]
        if instr.op is Op.LABEL:
            return None
        if reg in instr.writes():
            if instr.op is Op.SGET and isinstance(instr.value, str):
                return instr.value
            return None
        cursor -= 1
    return None


@rule(
    "text-search-surface",
    Severity.ERROR,
    "§2.1",
    "plaintext detection API findable by the text-search adversary",
)
def check_text_search_surface(ctx: "LintContext") -> Iterator[Diagnostic]:
    plaintext = set(PLAINTEXT_DETECTION_APIS)
    for method in ctx.dex.iter_methods():
        for pc, instr in enumerate(method.instructions):
            if instr.op is Op.INVOKE and instr.value in plaintext:
                yield Diagnostic(
                    rule="text-search-surface",
                    severity=Severity.ERROR,
                    method=method.qualified_name,
                    span=(pc, pc + 1),
                    message=(
                        f"detection API {instr.value!r} invoked in plaintext; "
                        f"a text search finds and removes it"
                    ),
                )
            elif instr.op is Op.CONST and isinstance(instr.value, str):
                for fragment in SUSPICIOUS_NAME_FRAGMENTS:
                    if fragment in instr.value:
                        yield Diagnostic(
                            rule="text-search-surface",
                            severity=Severity.ERROR,
                            method=method.qualified_name,
                            span=(pc, pc + 1),
                            message=(
                                f"string constant leaks detection API name "
                                f"{fragment!r} to a text search"
                            ),
                        )
                        break


@rule(
    "weak-salt",
    Severity.ERROR,
    "§3.2",
    "salt reuse across bombs collapses their key domains",
)
def check_weak_salt(ctx: "LintContext") -> Iterator[Diagnostic]:
    by_salt: Dict[str, List[str]] = {}
    if ctx.report is not None:
        for bomb in ctx.report.bombs:
            by_salt.setdefault(bomb.salt_hex, []).append(bomb.bomb_id)
    else:
        for site in ctx.sites():
            if site.salt_hex is not None:
                by_salt.setdefault(site.salt_hex, []).append(
                    site.bomb_id or f"{site.method.qualified_name}@{site.hash_pc}"
                )
    for salt_hex, bombs in sorted(by_salt.items()):
        if len(bombs) > 1:
            yield Diagnostic(
                rule="weak-salt",
                severity=Severity.ERROR,
                method=None,
                message=(
                    f"salt {salt_hex} is shared by bombs {sorted(bombs)}; "
                    f"cracking one trigger cracks them all"
                ),
            )


#: A trigger-detector finding within this many pcs *before* a bomb's
#: ``bomb.hash`` still localizes the bomb: the surrounding qualified
#: condition's branch guards the whole prologue.
_HSO_GUARD_WINDOW = 12


@rule(
    "hso-localizable",
    Severity.ERROR,
    "§5 / Difuzer",
    "our own static trigger detector can localize a bomb's payload",
)
def check_hso_localizable(ctx: "LintContext") -> Iterator[Diagnostic]:
    """Run the in-house HSO detector against the protected app.

    BombDroid's stealth claim is precisely that an interprocedural
    control-dependence + taint pass cannot attach a sensitive operation
    to the encrypted triggers.  If a finding lands inside (or on the
    guard of) a recovered bomb site, the protected app fails its own
    strongest static adversary and must not ship.
    """
    sites = ctx.sites()
    if not sites:
        return  # nothing protected, nothing to localize
    # Imported at call time: triggers sits above the dex model only,
    # but keeping lint import-light mirrors the engine's verifier import.
    from repro.analysis.triggers import analyze_dex

    scan = analyze_dex(ctx.dex)
    for finding in scan.findings:
        for site in sites:
            if finding.method != site.method.qualified_name:
                continue
            end = site.load_run_pc if site.load_run_pc is not None else site.hash_pc
            if site.hash_pc - _HSO_GUARD_WINDOW <= finding.branch_pc <= end:
                yield Diagnostic(
                    rule="hso-localizable",
                    severity=Severity.ERROR,
                    method=finding.method,
                    span=(finding.branch_pc, finding.branch_pc + 1),
                    message=(
                        f"bomb {site.bomb_id or '?'} is localizable by static "
                        f"trigger analysis: {finding.kind.value} guard with "
                        f"sinks {list(finding.sinks)} "
                        f"(score {finding.score:.1f})"
                    ),
                )
                break
