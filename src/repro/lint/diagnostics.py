"""Structured diagnostics shared by the verifier and the lint engine.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, the
method it anchors to (or None for app-level findings), an optional pc
span ``[start, end)`` into the method's instruction list, and a
human-readable message.  Both layers of the static-analysis subsystem
-- the bytecode verifier (:mod:`repro.analysis.verifier`) and the
stealth lint rules (:mod:`repro.lint.rules`) -- emit this shape, so
callers can gate, sort and render findings uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Finding severity; ordering is meaningful (gates compare >=)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One verifier or lint finding."""

    rule: str
    severity: Severity
    message: str
    method: Optional[str] = None          # qualified method name
    span: Optional[Tuple[int, int]] = None  # pc range [start, end)

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    @property
    def location(self) -> str:
        """``Class.method@pc`` (or as much of it as is known)."""
        if self.method is None:
            return "<app>"
        if self.span is None:
            return self.method
        start, end = self.span
        if end - start <= 1:
            return f"{self.method}@{start}"
        return f"{self.method}@{start}-{end - 1}"

    def format(self) -> str:
        return f"{self.severity.name.lower()}[{self.rule}] {self.location}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (``repro lint --json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "method": self.method,
            "span": list(self.span) if self.span is not None else None,
            "message": self.message,
        }


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset, original order preserved."""
    return [diag for diag in diagnostics if diag.is_error]


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or None for an empty run."""
    best: Optional[Severity] = None
    for diag in diagnostics:
        if best is None or diag.severity > best:
            best = diag.severity
    return best


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable render order: errors first, then by location, then rule."""
    return sorted(
        diagnostics,
        key=lambda d: (
            -int(d.severity),
            d.method or "",
            d.span or (-1, -1),
            d.rule,
        ),
    )


def format_report(diagnostics: Iterable[Diagnostic]) -> str:
    """Multi-line human-readable report with a one-line summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diag.format() for diag in ordered]
    error_count = sum(1 for diag in ordered if diag.is_error)
    warning_count = sum(1 for diag in ordered if diag.severity is Severity.WARNING)
    lines.append(f"{error_count} error(s), {warning_count} warning(s)")
    return "\n".join(lines)
