"""SARIF 2.1.0 rendering of diagnostics.

``repro lint --format sarif`` and ``repro detect --format sarif`` emit
this so CI can upload findings as code-scanning artifacts.  The repro
ISA has no source files, so findings anchor to *logical* locations
(``Class.method@pc``) rather than physical ones -- SARIF supports this
natively via ``logicalLocations``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Severity, sort_diagnostics

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _result(diag: Diagnostic) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": diag.rule,
        "level": _LEVELS.get(diag.severity, "warning"),
        "message": {"text": diag.message},
    }
    if diag.method is not None:
        logical: Dict[str, object] = {
            "fullyQualifiedName": diag.location,
            "kind": "function",
        }
        result["locations"] = [{"logicalLocations": [logical]}]
    return result


def to_sarif(
    diagnostics: Iterable[Diagnostic],
    tool_name: str = "repro-lint",
    rule_catalog: Optional[Dict[str, Tuple[Severity, str]]] = None,
) -> Dict[str, object]:
    """One SARIF log dict (caller ``json.dumps``-es it).

    ``rule_catalog`` optionally maps rule ids to ``(severity,
    description)`` pairs for the tool's rule metadata; rules that only
    appear in results are synthesized with empty descriptions.
    """
    ordered = sort_diagnostics(diagnostics)
    rule_ids: List[str] = []
    for diag in ordered:
        if diag.rule not in rule_ids:
            rule_ids.append(diag.rule)

    rules: List[Dict[str, object]] = []
    for rule_id in rule_ids:
        entry: Dict[str, object] = {"id": rule_id}
        if rule_catalog and rule_id in rule_catalog:
            _, description = rule_catalog[rule_id]
            entry["shortDescription"] = {"text": description}
        rules.append(entry)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": [_result(diag) for diag in ordered],
            }
        ],
    }
