"""Bomb-stealth lint framework.

Layer 2 of the static-analysis subsystem: paper-grounded rules that
check a protected app does not leak the artifacts the defense depends
on hiding (trigger constants, detection APIs, salt reuse, placement
violations), layered on top of the bytecode verifier (layer 1,
:mod:`repro.analysis.verifier`).

Public API::

    from repro.lint import run_lint, Severity, errors
    diagnostics = run_lint(apk.dex(), report=report)
    if errors(diagnostics):
        ...refuse to ship...
"""

from repro.lint.diagnostics import (
    Diagnostic,
    Severity,
    errors,
    format_report,
    max_severity,
    sort_diagnostics,
)
from repro.lint.engine import DEFAULT_MIN_QC_ENTROPY, LintContext, run_lint, selected_rules
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif
from repro.lint.rules import (
    PLAINTEXT_DETECTION_APIS,
    RULES,
    BombSite,
    Rule,
    bomb_sites,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "errors",
    "format_report",
    "max_severity",
    "sort_diagnostics",
    "DEFAULT_MIN_QC_ENTROPY",
    "LintContext",
    "run_lint",
    "selected_rules",
    "PLAINTEXT_DETECTION_APIS",
    "RULES",
    "BombSite",
    "Rule",
    "bomb_sites",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "to_sarif",
]
