"""The lint engine: verifier pass + stealth rules over one protected app.

``run_lint(dex)`` is the whole entry point::

    from repro.lint import run_lint, errors
    diagnostics = run_lint(apk.dex(), report=report)
    assert not errors(diagnostics)

The engine always runs the bytecode verifier
(:mod:`repro.analysis.verifier`) first -- a structurally broken method
makes every stealth question moot -- then each registered rule from
:mod:`repro.lint.rules`.  The report and entropy arguments are
optional: with them the rules cross-check the bytecode against the
instrumentation ground truth; without them (e.g. ``repro lint`` over an
APK from disk) the rules fall back to what the bytecode alone reveals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dex.model import DexFile, DexMethod
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import RULES, BombSite, Rule, bomb_sites

#: Figure 3 threshold: an artificial QC field should have at least this
#: many profiled unique values, or its outer trigger fires predictably.
DEFAULT_MIN_QC_ENTROPY = 4


@dataclass
class LintContext:
    """Shared state handed to every rule."""

    dex: DexFile
    #: Instrumentation ground truth (``InstrumentationReport``), if the
    #: caller has one; duck-typed to keep lint import-free of repro.core.
    report: Optional[Any] = None
    #: Profiled unique-value count per static field, for ``low-entropy-qc``.
    field_entropy: Optional[Dict[str, int]] = None
    min_qc_entropy: int = DEFAULT_MIN_QC_ENTROPY
    #: ``alias -> canonical`` invoke-symbol table for meshed apps, so
    #: site recovery sees through per-app alias symbols.
    aliases: Optional[Dict[str, str]] = None
    _sites: Optional[List[BombSite]] = field(default=None, repr=False)

    def sites(self) -> List[BombSite]:
        """Recovered bomb sites, computed once per run."""
        if self._sites is None:
            self._sites = bomb_sites(self.dex, aliases=self.aliases)
        return self._sites

    def sites_by_method(self) -> List[Tuple[DexMethod, List[BombSite]]]:
        grouped: Dict[str, Tuple[DexMethod, List[BombSite]]] = {}
        for site in self.sites():
            entry = grouped.setdefault(site.method.qualified_name, (site.method, []))
            entry[1].append(site)
        return [grouped[name] for name in sorted(grouped)]


def run_lint(
    dex: DexFile,
    report: Optional[Any] = None,
    field_entropy: Optional[Dict[str, int]] = None,
    rules: Optional[Sequence[str]] = None,
    include_verifier: bool = True,
    min_qc_entropy: int = DEFAULT_MIN_QC_ENTROPY,
    aliases: Optional[Dict[str, str]] = None,
) -> List[Diagnostic]:
    """Run the verifier and the (selected) lint rules over ``dex``.

    ``rules`` restricts the stealth pass to the given rule ids;
    ``include_verifier=False`` skips the bytecode verifier (useful when
    the caller already ran it).  ``aliases`` maps per-app alias invoke
    symbols back to canonical ``bomb.*`` names for meshed apps.
    """
    # Imported at call time: the verifier itself emits Diagnostics, so a
    # module-level import would cycle through this package's __init__.
    from repro.analysis.verifier import verify_dex

    diagnostics: List[Diagnostic] = []
    if include_verifier:
        diagnostics.extend(verify_dex(dex))
    context = LintContext(
        dex=dex,
        report=report,
        field_entropy=field_entropy,
        min_qc_entropy=min_qc_entropy,
        aliases=aliases,
    )
    for rule in selected_rules(rules):
        diagnostics.extend(rule.check(context))
    return diagnostics


def selected_rules(rules: Optional[Sequence[str]] = None) -> Iterable[Rule]:
    """The registered rules to run, validating unknown ids early."""
    if rules is None:
        return list(RULES.values())
    unknown = [rule_id for rule_id in rules if rule_id not in RULES]
    if unknown:
        raise KeyError(f"unknown lint rule(s): {', '.join(sorted(unknown))}")
    return [RULES[rule_id] for rule_id in rules]
