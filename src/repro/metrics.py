"""Repo-wide metrics surface: counters, gauges, fixed-bucket histograms.

Grew up inside ``repro.reporting`` (the ingestion service and the fleet
driver need cheap observable state -- reports ingested, duplicates
dropped, queue depth, takedown latency -- without holding per-report
objects) and was promoted here once the batch-protection pipeline
needed the same primitives.  Counters and gauges are single numbers;
histograms bucket observations into a fixed set of upper bounds
(Prometheus-style cumulative buckets), so memory stays O(buckets) no
matter how many values are observed.

Everything hangs off a :class:`MetricsRegistry`; ``snapshot()`` returns
plain dicts (JSON-friendly) and ``render()`` a human-readable text
block for the CLI.

``repro.reporting.metrics`` remains as a deprecated re-export shim.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "INGEST_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (seconds / counts -- callers
#: pick bounds that fit the quantity being observed).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)

#: Sub-millisecond buckets for loopback ingest latency
#: (``reporting.net.ingest_seconds``).  DEFAULT_BUCKETS bottom out at
#: 5ms -- far above a localhost round trip -- and a histogram that
#: lumps everything into its first bucket cannot answer p50/p99.
INGEST_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, tracked state)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.high_water = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: int) -> None:
        self.set(self.value + delta)


class Histogram:
    """Fixed-bucket histogram with O(buckets) memory.

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest.  ``quantile`` answers from bucket boundaries (the usual
    Prometheus approximation), which is plenty for latency floors in
    tests and dashboards.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "max_seen")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max_seen = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return float("nan")
        target = math.ceil(q * self.count) or 1
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_seen
        return self.max_seen  # pragma: no cover - defensive


class MetricsRegistry:
    """Name -> metric, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return metric

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of every metric (JSON-friendly)."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = {"value": gauge.value, "high_water": gauge.high_water}
        for name, hist in sorted(self._histograms.items()):
            out[name] = {
                "count": hist.count,
                "mean": hist.mean if hist.count else None,
                "p50": hist.quantile(0.5) if hist.count else None,
                "p99": hist.quantile(0.99) if hist.count else None,
            }
        return out

    def render(self) -> str:
        """Human-readable metrics block for the CLI."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:40} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(
                f"{name:40} {gauge.value} (high water {gauge.high_water})"
            )
        for name, hist in sorted(self._histograms.items()):
            if hist.count:
                lines.append(
                    f"{name:40} count={hist.count} mean={hist.mean:.3f} "
                    f"p50={hist.quantile(0.5):.3f} p99={hist.quantile(0.99):.3f}"
                )
            else:
                lines.append(f"{name:40} count=0")
        return "\n".join(lines)
