"""The adversary's repackaging workflow."""

from repro.repack.repackager import (
    RepackOptions,
    repackage,
    resign_only,
    inject_adware_class,
)

__all__ = ["RepackOptions", "repackage", "resign_only", "inject_adware_class"]
