"""Repackaging: what the dishonest developer does to a victim app.

Models the paper's threat (Section 1): unpack the APK, swap the icon
and author, optionally inject malicious code (adware that phones home,
premium-SMS senders...), re-sign with the attacker's own key, and
republish.  Because the attacker does not own the original private key,
the repackaged APK necessarily carries a different public key -- the
invariant detection exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apk.package import Apk, build_apk
from repro.apk.resources import Resources
from repro.crypto import RSAKeyPair
from repro.dex.builder import MethodBuilder
from repro.dex.model import DexClass, DexField, DexFile

#: Name of the injected malicious class.
ADWARE_CLASS = "AdService"


@dataclass
class RepackOptions:
    """What the repackager changes."""

    new_author: str = "totally-legit-apps"
    new_icon: bytes = b"\x89ICON\x00pirate"
    rename_app: str = ""          # empty = keep the original name
    inject_malware: bool = True


def inject_adware_class(dex: DexFile) -> None:
    """Add a malicious background service to the app's code.

    The adware hooks the timer tick, counts invocations, and
    periodically "exfiltrates" device identity over the network -- the
    classic repackaged-app payload.
    """
    cls = DexClass(name=ADWARE_CLASS)
    cls.add_field(DexField(name="ticks", static=True, initial=0))

    builder = MethodBuilder(ADWARE_CLASS, "on_tick", params=1)
    ticks = builder.reg()
    builder.sget(ticks, f"{ADWARE_CLASS}.ticks")
    builder.add_lit(ticks, ticks, 1)
    builder.sput(ticks, f"{ADWARE_CLASS}.ticks")
    limit = builder.reg()
    builder.rem_lit(limit, ticks, 50)
    quiet = builder.fresh_label("quiet")
    builder.if_nez(limit, quiet)
    serial_key = builder.const_new("build.serial_low")
    serial = builder.reg()
    builder.invoke(serial, "android.env.get", (serial_key,))
    serial_str = builder.reg()
    builder.invoke(serial_str, "java.str.from_int", (serial,))
    prefix = builder.const_new("adware-exfil:")
    message = builder.reg()
    builder.invoke(message, "java.str.concat", (prefix, serial_str))
    builder.invoke(None, "android.net.report", (message,))
    builder.label(quiet)
    builder.ret_void()
    cls.add_method(builder.build())
    dex.add_class(cls)


def repackage(apk: Apk, attacker_key: RSAKeyPair, options: RepackOptions = None) -> Apk:
    """Unpack, tamper, re-sign: the full repackaging pipeline."""
    options = options or RepackOptions()
    dex = apk.dex()
    resources = apk.resources().copy()

    resources.author = options.new_author
    resources.icon = options.new_icon
    if options.rename_app:
        resources.app_name = options.rename_app
    if options.inject_malware and ADWARE_CLASS not in dex.classes:
        inject_adware_class(dex)

    return build_apk(dex, resources, attacker_key)


def resign_only(apk: Apk, attacker_key: RSAKeyPair) -> Apk:
    """Minimal repackaging: identical content, different signer.

    Even this is detectable -- the certificate changes.
    """
    return build_apk(apk.dex(), apk.resources(), attacker_key)
