"""Deterministic, seed-driven fault injection.

The wild is hostile: flash sectors rot, ciphertexts truncate, networks
vanish, clocks jump.  This module gives every layer that can fail a
*named fault point* and lets a :class:`FaultPlan` arm those points with
injectors -- bit flips, truncation, raised exceptions, latency/clock
skew, budget clamps -- each decided by a per-``(seed, site)`` RNG so an
entire chaotic run is replayable from its seed.

Usage::

    plan = FaultPlan(seed=7)
    plan.arm("crypto.aes.decrypt", "flip", probability=0.5)
    with active_plan(plan):
        ...  # run the app; armed sites now misbehave deterministically
    print(plan.log)   # every fired fault, in order

Design constraints:

* **Zero cost when idle.**  ``fault_point`` is a dict lookup away from a
  no-op when no plan is installed, so production paths stay clean.
* **No upward imports.**  Only ``repro.errors`` is imported here; the
  VM, crypto and reporting layers can call ``fault_point`` without
  creating an import cycle (the heavyweight harness lives in
  :mod:`repro.chaos.harness` and is loaded lazily).
* **Deterministic.**  Site RNGs are seeded from ``f"{seed}:{site}"``
  (string seeding is stable across processes); the fired-fault log is a
  pure function of (plan, execution path).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjected, ReproError

#: Injector modes understood by :func:`fault_point`.
MODES = ("raise", "flip", "truncate", "latency", "clamp")

#: The registry of known fault sites: name -> (layer, what the injector
#: corrupts).  Arming an unknown site is an error -- chaos scripts that
#: typo a site name should fail loudly, not silently inject nothing.
FAULT_SITES: Dict[str, Tuple[str, str]] = {
    "crypto.kdf.derive": ("vm.framework", "derived AES key bytes"),
    "crypto.aes.decrypt": ("vm.framework", "payload ciphertext bytes"),
    "dex.deserialize": ("vm.runtime", "decrypted payload blob bytes"),
    "vm.classload": ("vm.runtime", "dynamic class registration"),
    "vm.budget": ("vm.interpreter", "payload instruction budget"),
    "vm.framework": ("vm.framework", "any framework syscall"),
    "vm.clock": ("vm.runtime", "device clock (skew before dispatch)"),
    "report.transport": ("reporting.client", "report delivery"),
    "client.spool": ("reporting.client", "spooled report signature bytes"),
    "wal.append": ("reporting.durability", "WAL record bytes as written"),
    "wal.fsync": ("reporting.durability", "WAL fsync barrier"),
    "snapshot.write": ("reporting.durability", "snapshot payload bytes"),
    "net.partition": ("reporting.net", "client TCP connection to the ingest service"),
    "net.slow_link": ("reporting.net", "client link latency (virtual clock skew)"),
    "net.failover": ("reporting.net", "leader ingest service death mid-stream"),
    "net.heartbeat_loss": ("reporting.net", "supervisor health probe eaten in transit"),
    "net.stale_leader": ("reporting.net", "fence request dropped at the demoted leader"),
    "net.supervisor_crash": ("reporting.net", "supervisor process dies mid-tick and restarts"),
}


@dataclass
class ArmedFault:
    """One armed injector: what fires at a site, how often."""

    site: str
    mode: str
    probability: float = 1.0
    #: Stop firing after this many hits (None = unlimited).
    max_fires: Optional[int] = None
    #: Mode-specific intensity: seconds of skew for ``latency``, the
    #: budget cap for ``clamp``, bits flipped for ``flip``.
    magnitude: int = 1
    #: Exception type raised in ``raise`` mode (and as the fallback when
    #: a data mode fires at a site that carried no data).
    exc: type = FaultInjected
    fires: int = 0
    checks: int = 0


@dataclass(frozen=True)
class FaultRecord:
    """One fired fault, as recorded in the replay log."""

    sequence: int
    site: str
    mode: str
    detail: str


class FaultPlan:
    """A seeded set of armed fault points.

    The plan owns one RNG per site (seeded from ``f"{seed}:{site}"``) so
    arming an extra site never perturbs the firing pattern of the
    others, and re-running the same workload under the same plan
    reproduces the same :attr:`log` byte for byte.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._armed: Dict[str, ArmedFault] = {}
        self._rngs: Dict[str, random.Random] = {}
        self.log: List[FaultRecord] = []

    def arm(
        self,
        site: str,
        mode: str,
        probability: float = 1.0,
        max_fires: Optional[int] = None,
        magnitude: int = 1,
        exc: type = FaultInjected,
    ) -> "FaultPlan":
        """Arm ``site`` with one injector; returns self for chaining."""
        if site not in FAULT_SITES:
            raise ReproError(f"unknown fault site {site!r}")
        if mode not in MODES:
            raise ReproError(f"unknown fault mode {mode!r}")
        if not 0.0 <= probability <= 1.0:
            raise ReproError("fault probability must be in [0, 1]")
        self._armed[site] = ArmedFault(
            site=site,
            mode=mode,
            probability=probability,
            max_fires=max_fires,
            magnitude=magnitude,
            exc=exc,
        )
        self._rngs[site] = random.Random(f"{self.seed}:{site}")
        return self

    def armed_sites(self) -> Tuple[str, ...]:
        return tuple(sorted(self._armed))

    def fires(self, site: Optional[str] = None) -> int:
        """Fired-fault count, for one site or in total."""
        if site is not None:
            armed = self._armed.get(site)
            return armed.fires if armed else 0
        return sum(armed.fires for armed in self._armed.values())

    def decide(self, site: str) -> Optional[ArmedFault]:
        """Roll the site's RNG; returns the armed fault when it fires."""
        armed = self._armed.get(site)
        if armed is None:
            return None
        armed.checks += 1
        if armed.max_fires is not None and armed.fires >= armed.max_fires:
            return None
        if armed.probability < 1.0 and self._rngs[site].random() >= armed.probability:
            return None
        armed.fires += 1
        return armed

    def record(self, armed: ArmedFault, detail: str) -> None:
        self.log.append(
            FaultRecord(len(self.log), armed.site, armed.mode, detail)
        )

    def rng_for(self, site: str) -> random.Random:
        return self._rngs[site]

    def log_signature(self) -> Tuple[Tuple[int, str, str, str], ...]:
        """Hashable view of the fired-fault log (replay comparisons)."""
        return tuple((r.sequence, r.site, r.mode, r.detail) for r in self.log)


# ---------------------------------------------------------------------------
# The active plan and the fault point itself
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Make ``plan`` the process-wide active plan (None to disarm)."""
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    install_plan(None)


def current_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def active_plan(plan: FaultPlan):
    """Scope a plan to a ``with`` block; always disarms on exit."""
    previous = _ACTIVE
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def fault_point(site: str, data=None, device=None):
    """The hook woven into fallible layers.

    Returns ``data`` (possibly corrupted), raises the armed exception,
    or skews ``device``'s clock, depending on the armed mode:

    ``raise``     raise ``armed.exc`` (default :class:`FaultInjected`)
    ``flip``      flip ``magnitude`` random bits of a bytes/int ``data``
                  (ints cover RSA signatures, which travel as integers)
    ``truncate``  drop the trailing half of a bytes ``data``
    ``latency``   ``device.advance(magnitude)`` -- clock skew
    ``clamp``     cap an int ``data`` at ``magnitude`` (budget squeeze)

    A data-mode fault at a site that carried no compatible data degrades
    to ``raise`` so armed chaos is never silently inert.
    """
    plan = _ACTIVE
    if plan is None:
        return data
    armed = plan.decide(site)
    if armed is None:
        return data
    mode = armed.mode
    if mode == "latency":
        if device is not None:
            device.advance(float(armed.magnitude))
        plan.record(armed, f"skew+{armed.magnitude}s")
        return data
    if mode == "flip" and isinstance(data, (bytes, bytearray)) and data:
        corrupted = bytearray(data)
        rng = plan.rng_for(site)
        positions = []
        for _ in range(max(1, armed.magnitude)):
            bit = rng.randrange(len(corrupted) * 8)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            positions.append(bit)
        plan.record(armed, "flip@" + ",".join(map(str, positions)))
        return bytes(corrupted)
    if mode == "flip" and isinstance(data, int) and not isinstance(data, bool):
        rng = plan.rng_for(site)
        width = max(data.bit_length(), 8)
        positions = []
        for _ in range(max(1, armed.magnitude)):
            bit = rng.randrange(width)
            data ^= 1 << bit
            positions.append(bit)
        plan.record(armed, "flip@" + ",".join(map(str, positions)))
        return data
    if mode == "truncate" and isinstance(data, (bytes, bytearray)):
        keep = len(data) // 2
        plan.record(armed, f"truncate:{len(data)}->{keep}")
        return bytes(data[:keep])
    if mode == "clamp" and isinstance(data, int) and not isinstance(data, bool):
        clamped = min(data, armed.magnitude)
        plan.record(armed, f"clamp:{data}->{clamped}")
        return clamped
    # "raise" proper, or a data mode with nothing to corrupt.
    plan.record(armed, "raise")
    exc = armed.exc
    if exc is FaultInjected:
        raise FaultInjected(f"injected fault at {site}", site=site)
    raise exc(f"injected fault at {site}")
