"""Kill-the-leader chaos: automatic failover under seeded failures.

The ``repro chaos --failover`` driver.  Where :mod:`.crash` kills a
*single* durable server and recovers it in place, this matrix kills (or
partitions) the **leader of a replicated cluster** mid-stream and lets
the :class:`~repro.reporting.net.supervisor.ClusterSupervisor` heal it
-- zero manual ``--promote`` anywhere.  Every trial runs real sockets:
an ingest :class:`ServiceHandle`, a WAL-shipping
:class:`ReplicaFollower`, a tick-driven supervisor, and
:class:`TcpTransport` clients that must re-route themselves.

Scenarios (all over the same pirated report stream):

``sigkill``           the leader dies outright (``kill()`` + ``crash()``)
``partition``         the leader *survives* but the supervisor's probes
                      are chaos-eaten (``net.heartbeat_loss``) -- the
                      promoted epoch must fence the live stale leader
``slow_link``         leader dies; clients drain through ``net.slow_link``
                      latency skew on the way to the new leader
``stale_leader``      partition, plus the first fence is dropped at the
                      old leader (``net.stale_leader``) -- the
                      supervisor must re-fence until it sticks
``supervisor_crash``  leader dies and the supervisor itself crashes
                      twice mid-tick (``net.supervisor_crash``),
                      resetting its suspicion -- failover still happens

Invariants, asserted per trial:

* exactly one **automatic** promotion (the trial never calls promote);
* the promoted epoch strictly exceeds the old leader's;
* every report acked before the kill answers ``DUPLICATE`` on the new
  leader (the dedup window survived the failover);
* the union of accepted ``(device, nonce)`` pairs across the failover
  equals an uninterrupted baseline -- nothing lost, nothing doubled;
* a fenced stale leader accepts **zero** post-promotion writes, and
  every client that reaches it is redirected (and lands) on the new
  leader within the same delivery attempt;
* the post-failover verdict (and offender key) is bit-equal to the
  uninterrupted baseline's, with exactly one takedown.

Timings are real (sockets, threads) and excluded from the replay
digest; every *count* in the digest is a pure function of the seed.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.chaos.faults import FaultPlan, active_plan
from repro.crypto import RSAKeyPair, sha1_hex
from repro.reporting.net.replication import ReplicaFollower
from repro.reporting.net.service import ServiceHandle
from repro.reporting.net.supervisor import ClusterSupervisor
from repro.reporting.net.transport import TcpTransport
from repro.reporting.server import ReportServer, SubmitStatus, TakedownPolicy
from repro.reporting.wire import DetectionReport, SignedReport, sign_report

FAILOVER_SCENARIOS = (
    "sigkill",
    "partition",
    "slow_link",
    "stale_leader",
    "supervisor_crash",
)

#: Scenarios whose old leader survives the failure (and must be fenced).
_LIVE_LEADER = ("partition", "stale_leader")

_APP = "FailoverApp"
_ORIGINAL_KEY = "aa" * 20
_PIRATE_KEY = "bb" * 20


@dataclass
class FailoverChaosConfig:
    """Shape of one kill-the-leader run."""

    seed: int = 17
    reports: int = 30
    #: Stream offsets to kill at; empty derives an early and a late one.
    kill_offsets: Tuple[int, ...] = ()
    scenarios: Tuple[str, ...] = FAILOVER_SCENARIOS
    shards: int = 4
    miss_threshold: int = 3
    duplicate_every: int = 5     # deliberate client double-sends
    snapshot_every: int = 4096   # keep compaction out of the counts
    #: Hard cap on supervisor ticks per phase (a hung trial is a bug).
    max_ticks: int = 64
    #: Parent directory for per-trial data dirs (None = a temp dir that
    #: is removed afterwards).
    data_dir: Optional[str] = None

    def offsets(self) -> Tuple[int, ...]:
        if self.kill_offsets:
            return tuple(self.kill_offsets)
        n = self.reports
        return tuple(sorted({max(1, n // 3), max(2, n - 5)}))


@dataclass
class FailoverTrialRecord:
    """What one kill-the-leader trial did and found."""

    scenario: str
    kill_offset: int
    accepted_before: int
    accepted_after: int
    duplicates_after: int
    ticks_to_failover: int
    supervisor_crashes: int
    fences_sent: int
    fences_acked: int
    stale_not_leader: int
    redirects: int
    epoch: int
    takedowns: int
    verdict: str
    offender: str
    violations: Tuple[str, ...]

    def key(self) -> tuple:
        return (
            self.scenario, self.kill_offset, self.accepted_before,
            self.accepted_after, self.duplicates_after,
            self.ticks_to_failover, self.supervisor_crashes,
            self.fences_sent, self.fences_acked, self.stale_not_leader,
            self.redirects, self.epoch, self.takedowns, self.verdict,
            self.offender, self.violations,
        )


@dataclass
class FailoverChaosReport:
    """Everything a kill-the-leader run observed."""

    seed: int
    trials: List[FailoverTrialRecord] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """Replay fingerprint: same seed, same digest, bit for bit."""
        state = (
            self.seed,
            tuple(record.key() for record in self.trials),
            tuple(self.violations),
        )
        return sha1_hex(repr(state).encode("utf-8"))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest(),
            "violations": list(self.violations),
            "trials": [
                {
                    "scenario": r.scenario,
                    "kill_offset": r.kill_offset,
                    "accepted_before": r.accepted_before,
                    "accepted_after": r.accepted_after,
                    "duplicates_after": r.duplicates_after,
                    "ticks_to_failover": r.ticks_to_failover,
                    "supervisor_crashes": r.supervisor_crashes,
                    "fences_sent": r.fences_sent,
                    "fences_acked": r.fences_acked,
                    "stale_not_leader": r.stale_not_leader,
                    "redirects": r.redirects,
                    "epoch": r.epoch,
                    "takedowns": r.takedowns,
                    "verdict": r.verdict,
                    "violations": list(r.violations),
                }
                for r in self.trials
            ],
        }

    def summary(self) -> str:
        by_scenario: Dict[str, int] = {}
        for record in self.trials:
            by_scenario[record.scenario] = by_scenario.get(record.scenario, 0) + 1
        lines = [
            f"failover: seed {self.seed}, {len(self.trials)} trials ("
            + ", ".join(f"{k}={v}" for k, v in sorted(by_scenario.items()))
            + ")",
            f"promotions: {len(self.trials)} automatic, 0 manual; epochs "
            f"reached: {sorted({r.epoch for r in self.trials})}",
            f"fences: {sum(r.fences_sent for r in self.trials)} sent, "
            f"{sum(r.fences_acked for r in self.trials)} acked; stale "
            f"leaders answered NOT_LEADER "
            f"{sum(r.stale_not_leader for r in self.trials)} time(s), "
            f"accepted 0 post-promotion writes",
            f"replay digest: {self.digest()}",
        ]
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("invariants: all held")
        return "\n".join(lines)


class FailoverChaosRunner:
    """Owns the deterministic stream; runs one cluster trial at a time."""

    def __init__(self, config: FailoverChaosConfig) -> None:
        self.config = config
        self.policy = TakedownPolicy(distinct_devices=3, window_seconds=3600.0)
        self._stream: Optional[List[SignedReport]] = None
        self._baseline: Optional[tuple] = None

    # -- deterministic inputs ----------------------------------------------

    def stream(self) -> List[SignedReport]:
        """The fixed, pre-signed pirated report stream."""
        if self._stream is None:
            config = self.config
            rng = random.Random(f"{config.seed}:failover")
            key = RSAKeyPair.generate(seed=config.seed * 91 + 3)
            devices = max(3, config.reports // 3)
            self._stream = [
                sign_report(
                    DetectionReport(
                        app_name=_APP,
                        bomb_id=f"b{i % 4:02d}",
                        device_id=f"dev-{i % devices:04d}",
                        observed_key_hex=_PIRATE_KEY,
                        timestamp=float(i),
                        nonce=rng.getrandbits(32),
                    ),
                    key,
                )
                for i in range(config.reports)
            ]
        return self._stream

    def server_kwargs(self) -> dict:
        return dict(
            shards=self.config.shards,
            policy=self.policy,
            snapshot_every=self.config.snapshot_every,
        )

    def baseline(self) -> tuple:
        """Uninterrupted in-memory run: (verdict, offender, accepted)."""
        if self._baseline is None:
            server = ReportServer(**self.server_kwargs())
            server.register_app(_APP, _ORIGINAL_KEY)
            accepted: Set[Tuple[str, int]] = set()
            for signed in self.stream():
                if server.submit(signed) is SubmitStatus.ACCEPTED:
                    accepted.add(
                        (signed.report.device_id, signed.report.nonce)
                    )
            server.process()
            verdict, offender = server.verdict(_APP)
            takedowns = int(
                server.metrics.counter("reporting.takedowns").value
            )
            self._baseline = (verdict, offender, frozenset(accepted), takedowns)
        return self._baseline

    # -- one trial ----------------------------------------------------------

    def _plan_for(self, scenario: str) -> FaultPlan:
        plan = FaultPlan(seed=self.config.seed)
        if scenario in _LIVE_LEADER:
            plan.arm("net.heartbeat_loss", "raise")
        if scenario == "stale_leader":
            plan.arm("net.stale_leader", "raise", max_fires=1)
        if scenario == "supervisor_crash":
            plan.arm("net.supervisor_crash", "raise", max_fires=2)
        if scenario == "slow_link":
            plan.arm("net.slow_link", "latency", magnitude=1)
        return plan

    def run_trial(
        self, scenario: str, kill_offset: int, trial_dir: str
    ) -> FailoverTrialRecord:
        config = self.config
        prefix = (
            f"[replay: --seed {config.seed}, {scenario}, kill@{kill_offset}]"
        )
        violations: List[str] = []
        stream = self.stream()
        expected_verdict, expected_offender, expected_accepted, _ = (
            self.baseline()
        )

        # -- the cluster: leader + warm-standby follower -------------------
        leader = ReportServer(
            data_dir=os.path.join(trial_dir, "leader"), **self.server_kwargs()
        )
        leader.register_app(_APP, _ORIGINAL_KEY)
        handle = ServiceHandle.start(
            leader, replication_port=0, heartbeat_interval=0.05
        )
        follower = ReplicaFollower(
            os.path.join(trial_dir, "replica"),
            handle.replication_address,
            expect_shards=config.shards,
        ).start()
        if not follower.wait_applied(1, timeout=10):
            violations.append(f"{prefix} follower never bootstrapped")

        # -- pre-kill traffic ----------------------------------------------
        leader_endpoint = handle.address  # survives the kill below
        transport = TcpTransport([leader_endpoint])
        accepted_before: Set[Tuple[str, int]] = set()
        for i in range(kill_offset):
            signed = stream[i]
            status = transport(signed)
            pair = (signed.report.device_id, signed.report.nonce)
            if status is SubmitStatus.ACCEPTED:
                if pair in accepted_before:
                    violations.append(
                        f"{prefix} (device, nonce) {pair} accepted twice"
                    )
                accepted_before.add(pair)
            if i % config.duplicate_every == 2:
                dup = transport(stream[i - 1])
                if dup is SubmitStatus.ACCEPTED:
                    violations.append(
                        f"{prefix} double-send of report {i - 1} accepted"
                    )
        transport.close()
        # Catch-up barrier: the matrix asserts *lossless* failover, so
        # the follower must hold every acked record before the kill
        # (bootstrap snapshot counts as the first apply).
        if not follower.wait_applied(1 + len(accepted_before), timeout=10):
            violations.append(
                f"{prefix} follower never caught up to "
                f"{len(accepted_before)} acked records"
            )

        # -- the failure + the supervised recovery -------------------------
        leader_alive = scenario in _LIVE_LEADER
        if not leader_alive:
            handle.kill()
            leader.crash()
        supervisor = ClusterSupervisor(
            leader_endpoint,
            [follower],
            server_kwargs=self.server_kwargs(),
            miss_threshold=config.miss_threshold,
            probe_timeout=0.5,
        )
        plan = self._plan_for(scenario)
        ticks = 0
        with active_plan(plan):
            while supervisor.failovers == 0 and ticks < config.max_ticks:
                supervisor.tick()
                ticks += 1
            refence = 0
            while (
                leader_alive
                and not supervisor.fenced
                and refence < config.max_ticks
            ):
                supervisor.tick()
                refence += 1
        if supervisor.failovers != 1:
            violations.append(
                f"{prefix} no automatic promotion after {ticks} ticks"
            )
            record = FailoverTrialRecord(
                scenario=scenario, kill_offset=kill_offset,
                accepted_before=len(accepted_before), accepted_after=0,
                duplicates_after=0, ticks_to_failover=ticks,
                supervisor_crashes=supervisor.crashes,
                fences_sent=supervisor.fences_sent,
                fences_acked=supervisor.fences_acked,
                stale_not_leader=0, redirects=0, epoch=0, takedowns=0,
                verdict="none", offender="", violations=tuple(violations),
            )
            if leader_alive:
                handle.stop()
            return record
        promoted = supervisor.promoted_server
        promoted_handle = supervisor.promoted_handle
        if promoted.epoch <= leader.epoch:
            violations.append(
                f"{prefix} promoted epoch {promoted.epoch} does not exceed "
                f"the old leader's {leader.epoch}"
            )
        if leader_alive and not supervisor.fenced:
            violations.append(f"{prefix} live stale leader was never fenced")

        # -- exactly-once across the failover ------------------------------
        resend = TcpTransport([promoted_handle.address])
        duplicates_after = 0
        for i in range(kill_offset):
            signed = stream[i]
            pair = (signed.report.device_id, signed.report.nonce)
            if pair not in accepted_before:
                continue
            status = resend(signed)
            if status is SubmitStatus.DUPLICATE:
                duplicates_after += 1
            else:
                violations.append(
                    f"{prefix} pre-kill accepted report "
                    f"(device={signed.report.device_id}) came back "
                    f"{status.value} on the new leader, expected duplicate"
                )
        resend.close()

        # -- drain the rest; stale-leader scenarios drain *through* the
        # old endpoint so the NOT_LEADER redirect path carries real load.
        stale_accepted_floor = 0
        if leader_alive:
            stale_accepted_floor = handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            )
            drain = TcpTransport([leader_endpoint])
        else:
            drain = TcpTransport([promoted_handle.address])
        accepted_after: Set[Tuple[str, int]] = set()
        for i in range(kill_offset, config.reports):
            signed = stream[i]
            status = drain(signed)
            pair = (signed.report.device_id, signed.report.nonce)
            if status is SubmitStatus.ACCEPTED:
                if pair in accepted_before or pair in accepted_after:
                    violations.append(
                        f"{prefix} (device, nonce) {pair} accepted twice "
                        f"across the failover"
                    )
                accepted_after.add(pair)
            else:
                violations.append(
                    f"{prefix} post-failover report {i} answered "
                    f"{status.value}, expected accepted"
                )
        redirects = drain.redirects
        drain.close()

        stale_not_leader = 0
        if leader_alive:
            stale_accepted = handle.call(
                lambda s: int(s.metrics.counter("reporting.accepted").value)
            )
            if stale_accepted != stale_accepted_floor:
                violations.append(
                    f"{prefix} fenced stale leader accepted "
                    f"{stale_accepted - stale_accepted_floor} "
                    f"post-promotion write(s)"
                )
            stale_not_leader = handle.call(
                lambda s: int(
                    s.metrics.counter("reporting.net.not_leader").value
                )
            )
            if redirects < 1 or stale_not_leader < 1:
                violations.append(
                    f"{prefix} drain through the stale leader never hit "
                    f"the NOT_LEADER redirect path"
                )
            handle.stop()

        # -- convergence ----------------------------------------------------
        total_accepted = accepted_before | accepted_after
        if total_accepted != expected_accepted:
            lost = len(expected_accepted - total_accepted)
            extra = len(total_accepted - expected_accepted)
            violations.append(
                f"{prefix} accepted set diverged from uninterrupted run "
                f"({lost} lost, {extra} extra)"
            )
        verdict, offender = promoted_handle.call(
            lambda s: (s.process(), s.verdict(_APP))[1]
        )
        if (verdict, offender) != (expected_verdict, expected_offender):
            violations.append(
                f"{prefix} verdict {verdict.value}/{offender[:16]} differs "
                f"from uninterrupted run "
                f"{expected_verdict.value}/{expected_offender[:16]}"
            )
        takedowns = promoted_handle.call(
            lambda s: int(s.metrics.counter("reporting.takedowns").value)
        )
        if takedowns != 1:
            violations.append(
                f"{prefix} {takedowns} takedowns across the failover, "
                f"expected exactly 1"
            )
        epoch = promoted.epoch
        supervisor.shutdown()
        promoted.close()

        return FailoverTrialRecord(
            scenario=scenario,
            kill_offset=kill_offset,
            accepted_before=len(accepted_before),
            accepted_after=len(accepted_after),
            duplicates_after=duplicates_after,
            ticks_to_failover=ticks,
            supervisor_crashes=supervisor.crashes,
            fences_sent=supervisor.fences_sent,
            fences_acked=supervisor.fences_acked,
            stale_not_leader=stale_not_leader,
            redirects=redirects,
            epoch=epoch,
            takedowns=takedowns,
            verdict=verdict.value,
            offender=offender,
            violations=tuple(violations),
        )

    # -- the whole matrix ---------------------------------------------------

    def run(self) -> FailoverChaosReport:
        config = self.config
        report = FailoverChaosReport(seed=config.seed)
        root = config.data_dir
        owns_root = root is None
        if owns_root:
            root = tempfile.mkdtemp(prefix="repro-failover-")
        try:
            for scenario in config.scenarios:
                for offset in config.offsets():
                    trial_dir = os.path.join(root, f"{scenario}-{offset:04d}")
                    shutil.rmtree(trial_dir, ignore_errors=True)
                    os.makedirs(trial_dir)
                    record = self.run_trial(scenario, offset, trial_dir)
                    report.trials.append(record)
                    report.violations.extend(record.violations)
        finally:
            if owns_root:
                shutil.rmtree(root, ignore_errors=True)
        return report


def run_failover_chaos(config: FailoverChaosConfig) -> FailoverChaosReport:
    """Run the kill-the-leader matrix, return the report."""
    return FailoverChaosRunner(config).run()
