"""Kill-and-recover chaos: crash the durable report server mid-ingest.

The ``repro chaos --crash-restart`` driver.  Where :mod:`.harness`
stresses the *device* side (bomb containment, spool recovery), this
module stresses the *backend's* durability story: a
:class:`~repro.reporting.server.ReportServer` journaling to a WAL is
killed at a seeded offset into a deterministic report stream, recovered
from disk, and driven to completion.  The invariants are exactly-once
semantics across the crash:

* the recovered run's final verdicts equal an uninterrupted in-memory
  run over the same stream -- byte-identical offender key included;
* every report acked ``ACCEPTED`` before the crash answers
  ``DUPLICATE`` when resubmitted after recovery (dedup state survived);
* the union of accepted ``(device, nonce)`` pairs across the crash
  equals the uninterrupted run's set -- nothing lost, nothing doubled;
* a takedown happens exactly once per pirated stream even when the
  crash lands after the transition (the journal replays it, the counter
  does not re-fire);
* a torn final WAL record (a partial append from the dying process) is
  detected, counted in ``recovery.torn_records``, and discarded without
  touching any acked report.

Every trial is a pure function of ``(seed, scenario, crash_offset)``,
so :meth:`CrashRestartReport.digest` replays bit for bit.
"""

from __future__ import annotations

import os
import random
import shutil
import struct
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import RSAKeyPair, sha1_hex
from repro.reporting.server import ReportServer, SubmitStatus, TakedownPolicy
from repro.reporting.wire import DetectionReport, SignedReport, sign_report

#: The two stream flavours: genuine devices cite the developer's own
#: key (no takedown may ever fire); pirated devices cite a foreign key
#: (exactly one takedown must fire, crash or no crash).
CRASH_SCENARIOS = ("genuine", "pirated")

_APP = "CrashApp"
_ORIGINAL_KEY = "aa" * 20
_PIRATE_KEY = "bb" * 20


@dataclass
class CrashRestartConfig:
    """Shape of one kill-and-recover run."""

    seed: int = 11
    reports: int = 48
    #: Stream offsets to crash at; empty derives three spread across the
    #: stream (early / middle / late) from ``reports``.
    crash_offsets: Tuple[int, ...] = ()
    scenarios: Tuple[str, ...] = CRASH_SCENARIOS
    shards: int = 4
    duplicate_every: int = 5     # deliberate client double-sends
    process_every: int = 7       # drain + verdict cadence during ingest
    torn_tail: bool = True       # simulate a partial append at the kill
    snapshot_every: int = 16     # appends between snapshot compactions
    #: Parent directory for per-trial data dirs (None = a temp dir that
    #: is removed afterwards).
    data_dir: Optional[str] = None

    def offsets(self) -> Tuple[int, ...]:
        if self.crash_offsets:
            return tuple(self.crash_offsets)
        n = self.reports
        return tuple(sorted({max(1, n // 5), n // 2, max(1, n - 3)}))


@dataclass
class CrashTrialRecord:
    """What one kill-and-recover trial did and found."""

    scenario: str
    crash_offset: int
    accepted_before: int
    accepted_after: int
    wal_replayed: int
    torn_records: int
    snapshot_loaded: bool
    takedowns: int
    verdict: str
    offender: str
    violations: Tuple[str, ...]

    def key(self) -> tuple:
        return (
            self.scenario, self.crash_offset, self.accepted_before,
            self.accepted_after, self.wal_replayed, self.torn_records,
            self.snapshot_loaded, self.takedowns, self.verdict,
            self.offender, self.violations,
        )


@dataclass
class CrashRestartReport:
    """Everything a kill-and-recover run observed."""

    seed: int
    trials: List[CrashTrialRecord] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """Replay fingerprint: same seed, same digest, bit for bit."""
        state = (
            self.seed,
            tuple(record.key() for record in self.trials),
            tuple(self.violations),
        )
        return sha1_hex(repr(state).encode("utf-8"))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest(),
            "violations": list(self.violations),
            "trials": [
                {
                    "scenario": r.scenario,
                    "crash_offset": r.crash_offset,
                    "accepted_before": r.accepted_before,
                    "accepted_after": r.accepted_after,
                    "wal_replayed": r.wal_replayed,
                    "torn_records": r.torn_records,
                    "snapshot_loaded": r.snapshot_loaded,
                    "takedowns": r.takedowns,
                    "verdict": r.verdict,
                    "violations": list(r.violations),
                }
                for r in self.trials
            ],
        }

    def summary(self) -> str:
        by_scenario: Dict[str, int] = {}
        for record in self.trials:
            by_scenario[record.scenario] = by_scenario.get(record.scenario, 0) + 1
        lines = [
            f"crash-restart: seed {self.seed}, {len(self.trials)} trials ("
            + ", ".join(f"{k}={v}" for k, v in sorted(by_scenario.items()))
            + ")",
            f"WAL records replayed: "
            f"{sum(r.wal_replayed for r in self.trials)}; torn tails "
            f"recovered: {sum(r.torn_records for r in self.trials)}; "
            f"snapshot restores: "
            f"{sum(1 for r in self.trials if r.snapshot_loaded)}",
            f"replay digest: {self.digest()}",
        ]
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("invariants: all held")
        return "\n".join(lines)


class CrashRestartRunner:
    """Owns the deterministic streams; runs one trial at a time."""

    def __init__(self, config: CrashRestartConfig) -> None:
        self.config = config
        self.policy = TakedownPolicy(distinct_devices=3, window_seconds=3600.0)
        self._streams: Dict[str, List[SignedReport]] = {}
        self._baselines: Dict[str, tuple] = {}

    # -- deterministic inputs ----------------------------------------------

    def stream(self, scenario: str) -> List[SignedReport]:
        """The fixed, pre-signed report stream for one scenario."""
        if scenario not in self._streams:
            config = self.config
            rng = random.Random(f"{config.seed}:{scenario}")
            key = RSAKeyPair.generate(seed=config.seed * 77 + 1)
            observed = _PIRATE_KEY if scenario == "pirated" else _ORIGINAL_KEY
            devices = max(3, config.reports // 3)
            signed = []
            for i in range(config.reports):
                report = DetectionReport(
                    app_name=_APP,
                    bomb_id=f"b{i % 4:02d}",
                    device_id=f"dev-{i % devices:04d}",
                    observed_key_hex=observed,
                    timestamp=float(i),
                    nonce=rng.getrandbits(32),
                )
                signed.append(sign_report(report, key))
            self._streams[scenario] = signed
        return self._streams[scenario]

    def _make_server(self, data_dir: Optional[str] = None) -> ReportServer:
        server = ReportServer(
            shards=self.config.shards, policy=self.policy,
            data_dir=data_dir, snapshot_every=self.config.snapshot_every,
        )
        if _APP not in server.apps:
            server.register_app(_APP, _ORIGINAL_KEY)
        return server

    def _ingest(
        self,
        server: ReportServer,
        stream: Sequence[SignedReport],
        start: int,
        end: int,
        accepted: Set[Tuple[str, int]],
        violations: List[str],
        prefix: str,
    ) -> None:
        """Drive ``stream[start:end]`` with the fixed duplicate/process
        cadence, recording accepted ``(device, nonce)`` pairs."""
        config = self.config
        for i in range(start, end):
            signed = stream[i]
            status = server.submit(signed)
            pair = (signed.report.device_id, signed.report.nonce)
            if status is SubmitStatus.ACCEPTED:
                if pair in accepted:
                    violations.append(
                        f"{prefix} (device, nonce) {pair} accepted twice"
                    )
                accepted.add(pair)
            if i % config.duplicate_every == 2:
                # A retrying client double-sends the previous report; it
                # must never be counted again.
                dup = server.submit(stream[i - 1])
                if dup is SubmitStatus.ACCEPTED:
                    violations.append(
                        f"{prefix} double-send of report {i - 1} accepted"
                    )
            if i % config.process_every == config.process_every - 1:
                server.process()
                server.verdict(_APP)
        server.process()

    def baseline(self, scenario: str) -> tuple:
        """Uninterrupted in-memory run: (verdict, offender, accepted)."""
        if scenario not in self._baselines:
            server = self._make_server()
            accepted: Set[Tuple[str, int]] = set()
            scratch: List[str] = []
            self._ingest(
                server, self.stream(scenario), 0, self.config.reports,
                accepted, scratch, "[baseline]",
            )
            verdict, offender = server.verdict(_APP)
            self._baselines[scenario] = (
                verdict, offender, frozenset(accepted), tuple(scratch),
            )
        return self._baselines[scenario]

    # -- one trial ----------------------------------------------------------

    def run_trial(
        self, scenario: str, crash_offset: int, data_dir: str
    ) -> CrashTrialRecord:
        config = self.config
        prefix = (
            f"[replay: --seed {config.seed}, {scenario}, "
            f"crash@{crash_offset}]"
        )
        violations: List[str] = []
        stream = self.stream(scenario)
        expected_verdict, expected_offender, expected_accepted, base_errs = (
            self.baseline(scenario)
        )
        violations.extend(base_errs)

        server = self._make_server(data_dir)
        accepted_before: Set[Tuple[str, int]] = set()
        self._ingest(
            server, stream, 0, crash_offset,
            accepted_before, violations, prefix,
        )
        takedowns_before = int(
            server.metrics.counter("reporting.takedowns").value
        )
        pre_crash = [
            s for s in stream[:crash_offset]
            if (s.report.device_id, s.report.nonce) in accepted_before
        ]

        # -- kill: no compaction, no flush; WAL appends were unbuffered.
        server.crash()
        torn_expected = 0
        if config.torn_tail:
            # The dying process got partway through an (unacked) append:
            # a plausible length, a bogus crc, a fraction of the payload.
            with open(os.path.join(data_dir, "wal-000.log"), "ab") as fh:
                fh.write(struct.pack(">II", 64, 0xDEADBEEF) + b"\x00" * 10)
            torn_expected = 1

        recovered = ReportServer.recover(
            data_dir, shards=config.shards, policy=self.policy,
            snapshot_every=config.snapshot_every,
        )
        torn = int(recovered.metrics.counter("recovery.torn_records").value)
        if torn != torn_expected:
            violations.append(
                f"{prefix} recovery counted {torn} torn records, "
                f"expected {torn_expected}"
            )
        wal_replayed = int(recovered.metrics.counter("wal.replayed").value)
        snapshot_loaded = (
            recovered.metrics.counter("snapshot.loads").value > 0
        )

        # Exactly-once across the crash: every pre-crash accepted report
        # must be a DUPLICATE now -- the dedup window survived the kill.
        recovered.process()
        for signed in pre_crash:
            status = recovered.submit(signed)
            if status is not SubmitStatus.DUPLICATE:
                violations.append(
                    f"{prefix} pre-crash accepted report "
                    f"(device={signed.report.device_id}) came back "
                    f"{status.value} after recovery, expected duplicate"
                )

        accepted_after: Set[Tuple[str, int]] = set()
        self._ingest(
            recovered, stream, crash_offset, config.reports,
            accepted_after, violations, prefix,
        )
        doubled = accepted_before & accepted_after
        if doubled:
            violations.append(
                f"{prefix} {len(doubled)} reports accepted on both sides "
                f"of the crash"
            )
        total_accepted = accepted_before | accepted_after
        if total_accepted != expected_accepted:
            lost = len(expected_accepted - total_accepted)
            extra = len(total_accepted - expected_accepted)
            violations.append(
                f"{prefix} accepted set diverged from uninterrupted run "
                f"({lost} lost, {extra} extra)"
            )

        verdict, offender = recovered.verdict(_APP)
        if (verdict, offender) != (expected_verdict, expected_offender):
            violations.append(
                f"{prefix} verdict {verdict.value}/{offender[:16]} differs "
                f"from uninterrupted run "
                f"{expected_verdict.value}/{expected_offender[:16]}"
            )
        takedowns = takedowns_before + int(
            recovered.metrics.counter("reporting.takedowns").value
        )
        expected_takedowns = 1 if scenario == "pirated" else 0
        if takedowns != expected_takedowns:
            violations.append(
                f"{prefix} {takedowns} takedowns across the crash, "
                f"expected exactly {expected_takedowns}"
            )
        recovered.close()

        return CrashTrialRecord(
            scenario=scenario,
            crash_offset=crash_offset,
            accepted_before=len(accepted_before),
            accepted_after=len(accepted_after),
            wal_replayed=wal_replayed,
            torn_records=torn,
            snapshot_loaded=snapshot_loaded,
            takedowns=takedowns,
            verdict=verdict.value,
            offender=offender,
            violations=tuple(violations),
        )

    # -- the whole matrix ---------------------------------------------------

    def run(self) -> CrashRestartReport:
        config = self.config
        report = CrashRestartReport(seed=config.seed)
        root = config.data_dir
        owns_root = root is None
        if owns_root:
            root = tempfile.mkdtemp(prefix="repro-crash-")
        try:
            for scenario in config.scenarios:
                for offset in config.offsets():
                    trial_dir = os.path.join(
                        root, f"{scenario}-{offset:04d}"
                    )
                    # A leftover dir from an earlier run would replay
                    # into the fresh trial and break determinism.
                    shutil.rmtree(trial_dir, ignore_errors=True)
                    os.makedirs(trial_dir)
                    record = self.run_trial(scenario, offset, trial_dir)
                    report.trials.append(record)
                    report.violations.extend(record.violations)
        finally:
            if owns_root:
                shutil.rmtree(root, ignore_errors=True)
        return report


def run_crash_restart(config: CrashRestartConfig) -> CrashRestartReport:
    """Run the kill-and-recover matrix, return the report."""
    return CrashRestartRunner(config).run()
