"""The ``repro chaos`` driver: a seeded fault matrix over the pipeline.

One :func:`run_chaos` call builds an app, protects it, repackages it,
and then plays both builds under a rotating fault matrix, checking the
containment invariants after every trial:

``genuine``   the *transparency* scenario: the genuine protected app
              plays with faults armed on the bomb path (KDF, AES,
              deserialize, classload, payload budget).  The host's
              observable output must equal the unprotected run -- or
              differ only because a *woven* bomb's body was lost to a
              contained failure (``payload_error``/``payload_skipped``
              recorded); and a genuine app must never detect.
``pirated``   the *detection* scenario: the repackaged app plays with
              faults on report transport and the client spool.  Intact
              bombs must still detect (matching the fault-free
              baseline), the server must never double-count a
              (device, nonce), a resubmitted accepted report must come
              back DUPLICATE, and the spool must drain once the faults
              clear.
``hostile``   the *hostile framework* scenario: random framework
              syscall failures and clock skew.  Whatever breaks, only
              the library's own error taxonomy may escape the VM.

Every trial runs under one :class:`~repro.chaos.faults.FaultPlan`
derived from ``(seed, trial)``; the report's :meth:`ChaosReport.digest`
is a pure function of the seed, so re-running the same seed must
reproduce it bit for bit (``verify_replay``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.faults import FaultPlan, active_plan
from repro.core import BombDroid, BombDroidConfig
from repro.corpus import build_app
from repro.crypto import RSAKeyPair, sha1_hex
from repro.errors import ReproError, TransportError
from repro.fuzzing.generators import DynodroidGenerator
from repro.repack import repackage
from repro.reporting.client import ReportClient
from repro.reporting.server import ReportServer, SubmitStatus
from repro.vm.containment import ContainmentPolicy
from repro.vm.device import DevicePopulation
from repro.vm.events import Event
from repro.vm.runtime import Runtime

SCENARIOS = ("genuine", "pirated", "hostile")

#: Fault sites on the bomb-firing path (transparency scenario), with the
#: injector mode each one gets.
_BOMB_PATH_FAULTS: Tuple[Tuple[str, str, int], ...] = (
    ("crypto.kdf.derive", "raise", 1),
    ("crypto.aes.decrypt", "flip", 3),
    ("crypto.aes.decrypt", "truncate", 1),
    ("dex.deserialize", "flip", 2),
    ("dex.deserialize", "truncate", 1),
    ("vm.classload", "raise", 1),
    ("vm.budget", "clamp", 40),
)


@dataclass
class ChaosConfig:
    """Shape of one chaos run."""

    seed: int = 7
    trials: int = 25
    app_name: str = "ChaosApp"
    category: str = "Game"
    scale: float = 0.4
    events: int = 600
    devices: int = 2            # distinct pirate devices rotated across trials
    strict: bool = False        # ContainmentPolicy.strict (debugging)
    breaker_k: int = 3
    profiling_events: int = 300
    alpha: float = 0.3
    mesh: bool = False          # protect with the bomb mesh armed


@dataclass
class TrialRecord:
    """What one trial did and found."""

    trial: int
    scenario: str
    armed: Tuple[str, ...]
    fault_fires: int
    fault_log: Tuple
    crashes: int
    errors: Tuple[str, ...]
    payload_errors: int
    quarantines: int
    detected: bool
    accepted: int
    degraded: bool
    violations: Tuple[str, ...]

    def key(self) -> tuple:
        return (
            self.trial, self.scenario, self.armed, self.fault_fires,
            self.fault_log, self.crashes, self.errors, self.payload_errors,
            self.quarantines, self.detected, self.accepted, self.degraded,
            self.violations,
        )


@dataclass
class ChaosReport:
    """Everything a chaos run observed."""

    seed: int
    trials: List[TrialRecord] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    baseline_transparent: bool = True
    bombs_injected: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def digest(self) -> str:
        """Replay fingerprint: identical seeds must produce identical
        digests (fault logs, event counts, verdicts -- everything)."""
        state = (
            self.seed,
            self.baseline_transparent,
            self.bombs_injected,
            tuple(record.key() for record in self.trials),
            tuple(self.violations),
        )
        return sha1_hex(repr(state).encode("utf-8"))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "digest": self.digest(),
            "baseline_transparent": self.baseline_transparent,
            "bombs_injected": self.bombs_injected,
            "violations": list(self.violations),
            "trials": [
                {
                    "trial": r.trial,
                    "scenario": r.scenario,
                    "armed": list(r.armed),
                    "fault_fires": r.fault_fires,
                    "crashes": r.crashes,
                    "payload_errors": r.payload_errors,
                    "quarantines": r.quarantines,
                    "detected": r.detected,
                    "accepted": r.accepted,
                    "degraded": r.degraded,
                    "violations": list(r.violations),
                }
                for r in self.trials
            ],
        }

    def summary(self) -> str:
        by_scenario: Dict[str, int] = {}
        fires = 0
        for record in self.trials:
            by_scenario[record.scenario] = by_scenario.get(record.scenario, 0) + 1
            fires += record.fault_fires
        lines = [
            f"chaos: seed {self.seed}, {len(self.trials)} trials ("
            + ", ".join(f"{k}={v}" for k, v in sorted(by_scenario.items()))
            + f"), {fires} faults fired",
            f"bombs injected: {self.bombs_injected}; baseline transparency: "
            + ("OK" if self.baseline_transparent else "VIOLATED"),
            f"contained payload errors: "
            f"{sum(r.payload_errors for r in self.trials)}; quarantines: "
            f"{sum(r.quarantines for r in self.trials)}; degraded trials: "
            f"{sum(1 for r in self.trials if r.degraded)}",
            f"replay digest: {self.digest()}",
        ]
        if self.violations:
            lines.append(f"INVARIANT VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {v}" for v in self.violations)
        else:
            lines.append("invariants: all held")
        return "\n".join(lines)


class _SessionResult:
    """Accumulated observables of one play session (across restarts)."""

    def __init__(self) -> None:
        self.logs: List[str] = []
        self.ui_effects: List[tuple] = []
        self.reports: List[str] = []
        self.errors: List[str] = []
        self.runtime: Optional[Runtime] = None

    def absorb(self, runtime: Runtime) -> None:
        self.logs.extend(runtime.logs)
        self.ui_effects.extend(runtime.ui_effects)
        self.reports.extend(runtime.reports)

    def snapshot(self) -> tuple:
        return (tuple(self.logs), tuple(self.ui_effects), tuple(self.reports))

    @property
    def bombs(self):
        return self.runtime.bombs


class ChaosRunner:
    """Owns the app corpus and baselines; runs one trial at a time."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        bundle = build_app(
            config.app_name, category=config.category,
            seed=config.seed, scale=config.scale,
        )
        self.bundle = bundle
        protect_config = BombDroidConfig(
            seed=config.seed,
            profiling_events=config.profiling_events,
            alpha=config.alpha,
            mesh=config.mesh,
        )
        self.protected, self.instrumentation = BombDroid(protect_config).protect(
            bundle.apk, bundle.developer_key
        )
        self.pirated = repackage(
            self.protected, RSAKeyPair.generate(seed=config.seed * 100 + 666)
        )
        self.original_key_hex = self.protected.cert.fingerprint_hex()
        self.woven_bombs = {
            bomb.bomb_id for bomb in self.instrumentation.bombs if bomb.woven
        }
        #: One fixed event script, generated from the original app (the
        #: handlers survive protection/repackaging), reused by every run
        #: so outputs are comparable.
        self.events = list(
            DynodroidGenerator(bundle.dex, seed=config.seed).stream(config.events)
        )
        self._unprotected_snapshot: Optional[tuple] = None
        self._pirated_baseline: Dict[int, bool] = {}

    # -- building blocks ----------------------------------------------------

    def _device(self, index: int):
        """A fresh device with the deterministic profile for ``index``."""
        return DevicePopulation(seed=self.config.seed * 31 + index).sample()

    def _policy(self) -> ContainmentPolicy:
        return ContainmentPolicy(
            max_consecutive_failures=self.config.breaker_k,
            strict=self.config.strict,
        )

    def _play(self, apk, device, containment=None, client=None) -> _SessionResult:
        """Boot and drive the fixed event script; crashes restart the
        app (state resets, the bomb history and clock carry over)."""
        dex = apk.dex()
        package = apk.install_view()
        result = _SessionResult()

        def fresh(previous: Optional[Runtime]) -> Runtime:
            runtime = Runtime(
                dex, device=device, package=package, seed=self.config.seed,
                report_client=client, containment=containment,
            )
            if previous is not None:
                runtime.bombs.merge_from(previous.bombs)
            try:
                runtime.boot()
            except ReproError as exc:
                result.errors.append(type(exc).__name__)
            except Exception as exc:  # non-taxonomy: invariant material
                result.errors.append(f"NON_TAXONOMY:{type(exc).__name__}")
            return runtime

        runtime = fresh(None)
        for event in self.events:
            try:
                runtime.dispatch(event)
            except ReproError as exc:
                result.errors.append(type(exc).__name__)
                result.absorb(runtime)
                runtime = fresh(runtime)
            except Exception as exc:
                result.errors.append(f"NON_TAXONOMY:{type(exc).__name__}")
                result.absorb(runtime)
                runtime = fresh(runtime)
        result.absorb(runtime)
        result.runtime = runtime
        return result

    def unprotected_snapshot(self) -> tuple:
        if self._unprotected_snapshot is None:
            session = self._play(self.bundle.apk, self._device(0))
            self._unprotected_snapshot = session.snapshot()
        return self._unprotected_snapshot

    def baseline_transparent(self) -> bool:
        """Fault-free transparency: protected == unprotected output."""
        session = self._play(
            self.protected, self._device(0), containment=self._policy()
        )
        return (
            session.snapshot() == self.unprotected_snapshot()
            and not session.errors
            and not session.runtime.detections
        )

    def pirated_detects_baseline(self, device_index: int) -> bool:
        if device_index not in self._pirated_baseline:
            session, *_ = self._pirated_run(device_index, plan=None)
            self._pirated_baseline[device_index] = (
                session.bombs.count("detected") > 0
            )
        return self._pirated_baseline[device_index]

    # -- scenarios ----------------------------------------------------------

    def run_trial(self, trial: int) -> TrialRecord:
        scenario = SCENARIOS[trial % len(SCENARIOS)]
        plan = self._plan_for(trial, scenario)
        if scenario == "genuine":
            return self._trial_genuine(trial, plan)
        if scenario == "pirated":
            return self._trial_pirated(trial, plan)
        return self._trial_hostile(trial, plan)

    def _plan_for(self, trial: int, scenario: str) -> FaultPlan:
        rng = random.Random(f"{self.config.seed}:plan:{trial}")
        plan = FaultPlan(seed=self.config.seed * 1000 + trial)
        if scenario == "genuine":
            for site, mode, magnitude in rng.sample(
                list(_BOMB_PATH_FAULTS), k=rng.randint(1, 3)
            ):
                plan.arm(
                    site, mode,
                    probability=rng.choice((0.5, 0.8, 1.0)),
                    magnitude=magnitude,
                )
        elif scenario == "pirated":
            plan.arm(
                "report.transport", "raise",
                probability=rng.choice((0.5, 0.8, 1.0)),
                exc=TransportError,
            )
            plan.arm("client.spool", "flip", probability=0.5, magnitude=2)
        else:  # hostile framework
            plan.arm("vm.framework", "raise", probability=0.02)
            plan.arm("vm.clock", "latency", probability=0.3, magnitude=5)
        return plan

    def _trial_genuine(self, trial: int, plan: FaultPlan) -> TrialRecord:
        violations: List[str] = []
        with active_plan(plan):
            session = self._play(
                self.protected, self._device(0), containment=self._policy()
            )
        bombs = session.bombs
        payload_errors = bombs.count("payload_error")
        skipped = bombs.count("payload_skipped")
        quarantines = bombs.count("quarantined")
        degraded = session.snapshot() != self.unprotected_snapshot()

        prefix = self._prefix(trial, "genuine")
        non_taxonomy = [e for e in session.errors if e.startswith("NON_TAXONOMY")]
        if non_taxonomy:
            violations.append(
                f"{prefix} non-taxonomy error escaped the VM: {non_taxonomy}"
            )
        if self.config.strict:
            # Strict containment re-raises; crashes are the point.  Only
            # the taxonomy invariant applies.
            pass
        else:
            if session.errors:
                violations.append(
                    f"{prefix} host crashed under contained faults: "
                    f"{session.errors}"
                )
            if degraded:
                woven_failed = any(
                    bomb_id in self.woven_bombs
                    and (
                        kinds.get("payload_error") or kinds.get("payload_skipped")
                    )
                    for bomb_id, kinds in bombs.counts.items()
                )
                if not woven_failed:
                    violations.append(
                        f"{prefix} host output changed without a woven "
                        "bomb failure (transparency broken)"
                    )
        if session.runtime.detections:
            violations.append(f"{prefix} genuine app detected repackaging")
        if bombs.count("mesh_tripped"):
            violations.append(
                f"{prefix} mesh guard tripped on a genuine app (peers and "
                "pins are all intact; contained faults must not look like "
                "tampering)"
            )
        for bomb_id, kinds in bombs.counts.items():
            q = kinds.get("quarantined", 0)
            if q and kinds.get("payload_error", 0) < self.config.breaker_k * q:
                violations.append(
                    f"{prefix} bomb {bomb_id} quarantined after fewer than "
                    f"{self.config.breaker_k} consecutive failures"
                )
        return TrialRecord(
            trial=trial, scenario="genuine", armed=plan.armed_sites(),
            fault_fires=plan.fires(), fault_log=plan.log_signature(),
            crashes=len(session.errors), errors=tuple(session.errors),
            payload_errors=payload_errors + skipped, quarantines=quarantines,
            detected=bool(session.runtime.detections), accepted=0,
            degraded=degraded, violations=tuple(violations),
        )

    def _pirated_run(self, device_index: int, plan: Optional[FaultPlan]):
        """One pirated play session with a live report pipeline."""
        server = ReportServer(shards=2)
        server.register_app(self.bundle.name, self.original_key_hex)
        submissions: List[tuple] = []
        accepted_signed: List = []

        def transport(signed):
            status = server.submit(signed)
            submissions.append(
                (signed.report.device_id, signed.report.nonce, status)
            )
            if status is SubmitStatus.ACCEPTED:
                accepted_signed.append(signed)
            return status

        client = ReportClient(
            transport,
            RSAKeyPair.generate(seed=self.config.seed * 100 + device_index),
            device_id=f"chaos-dev-{device_index}",
            seed=self.config.seed * 100 + device_index,
        )
        device = self._device(1 + device_index)
        if plan is None:
            session = self._play(
                self.pirated, device, containment=self._policy(), client=client
            )
        else:
            with active_plan(plan):
                session = self._play(
                    self.pirated, device,
                    containment=self._policy(), client=client,
                )
                client.flush()  # exercise spool reads under fault
        return session, server, client, submissions, accepted_signed

    def _trial_pirated(self, trial: int, plan: FaultPlan) -> TrialRecord:
        violations: List[str] = []
        device_index = trial % self.config.devices
        session, server, client, submissions, accepted_signed = (
            self._pirated_run(device_index, plan)
        )
        prefix = self._prefix(trial, "pirated")

        detected = session.bombs.count("detected") > 0
        if self.pirated_detects_baseline(device_index) and not detected:
            violations.append(
                f"{prefix} intact bombs failed to detect under "
                "reporting-layer faults"
            )
        # The faults are gone now; the spool must drain completely.
        client.flush()
        if client.spooled:
            violations.append(
                f"{prefix} spool failed to recover: {client.spooled} stuck"
            )
        # No double counting: each (device, nonce) accepted at most once.
        accepted_pairs: Dict[tuple, int] = {}
        for device_id, nonce, status in submissions:
            if status is SubmitStatus.ACCEPTED:
                key = (device_id, nonce)
                accepted_pairs[key] = accepted_pairs.get(key, 0) + 1
        double = {k: n for k, n in accepted_pairs.items() if n > 1}
        if double:
            violations.append(f"{prefix} server double-counted: {double}")
        if accepted_signed:
            status = server.submit(accepted_signed[0])
            if status is not SubmitStatus.DUPLICATE:
                violations.append(
                    f"{prefix} resubmitted report came back {status.value}, "
                    "expected duplicate"
                )
        non_taxonomy = [e for e in session.errors if e.startswith("NON_TAXONOMY")]
        if non_taxonomy:
            violations.append(
                f"{prefix} non-taxonomy error escaped the VM: {non_taxonomy}"
            )
        return TrialRecord(
            trial=trial, scenario="pirated", armed=plan.armed_sites(),
            fault_fires=plan.fires(), fault_log=plan.log_signature(),
            crashes=len(session.errors), errors=tuple(session.errors),
            payload_errors=session.bombs.count("payload_error"),
            quarantines=session.bombs.count("quarantined"),
            detected=detected, accepted=len(accepted_pairs),
            degraded=False, violations=tuple(violations),
        )

    def _trial_hostile(self, trial: int, plan: FaultPlan) -> TrialRecord:
        violations: List[str] = []
        with active_plan(plan):
            session = self._play(
                self.protected, self._device(0), containment=self._policy()
            )
        prefix = self._prefix(trial, "hostile")
        non_taxonomy = [e for e in session.errors if e.startswith("NON_TAXONOMY")]
        if non_taxonomy:
            violations.append(
                f"{prefix} non-taxonomy error escaped the VM: {non_taxonomy}"
            )
        if session.runtime.detections:
            violations.append(f"{prefix} genuine app detected repackaging")
        if session.bombs.count("mesh_tripped"):
            violations.append(
                f"{prefix} mesh guard tripped on a genuine app under a "
                "hostile framework"
            )
        return TrialRecord(
            trial=trial, scenario="hostile", armed=plan.armed_sites(),
            fault_fires=plan.fires(), fault_log=plan.log_signature(),
            crashes=len(session.errors), errors=tuple(session.errors),
            payload_errors=session.bombs.count("payload_error"),
            quarantines=session.bombs.count("quarantined"),
            detected=bool(session.runtime.detections), accepted=0,
            degraded=False, violations=tuple(violations),
        )

    def _prefix(self, trial: int, scenario: str) -> str:
        return f"[replay: --seed {self.config.seed}, trial {trial}, {scenario}]"

    # -- the whole matrix ---------------------------------------------------

    def run(self) -> ChaosReport:
        report = ChaosReport(
            seed=self.config.seed,
            bombs_injected=len(self.instrumentation.bombs),
        )
        report.baseline_transparent = self.baseline_transparent()
        if not report.baseline_transparent:
            report.violations.append(
                f"[replay: --seed {self.config.seed}, baseline] protected "
                "app output differs from unprotected with no faults armed"
            )
        for trial in range(self.config.trials):
            record = self.run_trial(trial)
            report.trials.append(record)
            report.violations.extend(record.violations)
        return report


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Build the corpus, run the matrix, return the report."""
    return ChaosRunner(config).run()
