"""Chaos engineering for the reproduction: faults in, invariants out.

The paper's core promise is *transparency*: instrumentation must never
change a host app's behaviour except when tampering is detected.  This
package stress-tests that promise the way ARMAND-style anti-tampering
work demands -- under a hostile, partially broken environment:

``faults``   the deterministic fault-injection substrate: named fault
             points woven into the AES/KDF, dex deserialization,
             dynamic class loading, framework syscalls, the interpreter
             budget, report transport and the client spool, armed by a
             seeded :class:`FaultPlan`
``harness``  the ``repro chaos`` driver: runs protect -> install ->
             play -> repackage -> report under a seeded fault matrix
             and checks the containment invariants (host output
             unchanged when bombs are dormant or contained, intact
             bombs still detect, the server never double-counts, the
             spool recovers from corruption)
``crash``    the ``repro chaos --crash-restart`` driver: kills the
             durable report server at seeded offsets mid-ingest (torn
             WAL tail included), recovers it from disk, and checks
             exactly-once invariants against an uninterrupted run

``failover`` the ``repro chaos --failover`` driver: kills (or
             partitions) the *leader of a replicated cluster* at seeded
             offsets and lets the heartbeat supervisor heal it --
             automatic promotion, epoch fencing of stale leaders,
             client re-routing -- then checks the verdict math against
             an uninterrupted run

``faults`` is import-light on purpose (the VM and reporting layers call
its ``fault_point`` hook); the harness pulls in the whole pipeline and
is therefore loaded lazily via module ``__getattr__``.
"""

from repro.chaos.faults import (
    FAULT_SITES,
    ArmedFault,
    FaultPlan,
    FaultRecord,
    active_plan,
    clear_plan,
    current_plan,
    fault_point,
    install_plan,
)

__all__ = [
    "FAULT_SITES",
    "ArmedFault",
    "FaultPlan",
    "FaultRecord",
    "active_plan",
    "clear_plan",
    "current_plan",
    "fault_point",
    "install_plan",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRunner",
    "TrialRecord",
    "run_chaos",
    "CrashRestartConfig",
    "CrashRestartReport",
    "CrashRestartRunner",
    "CrashTrialRecord",
    "run_crash_restart",
    "FAILOVER_SCENARIOS",
    "FailoverChaosConfig",
    "FailoverChaosReport",
    "FailoverChaosRunner",
    "FailoverTrialRecord",
    "run_failover_chaos",
]

_HARNESS_NAMES = {
    "ChaosConfig", "ChaosReport", "ChaosRunner", "TrialRecord", "run_chaos",
}

_CRASH_NAMES = {
    "CrashRestartConfig", "CrashRestartReport", "CrashRestartRunner",
    "CrashTrialRecord", "run_crash_restart",
}

_FAILOVER_NAMES = {
    "FAILOVER_SCENARIOS", "FailoverChaosConfig", "FailoverChaosReport",
    "FailoverChaosRunner", "FailoverTrialRecord", "run_failover_chaos",
}


def __getattr__(name: str):
    # Lazy: harness imports the VM, which imports repro.chaos.faults --
    # resolving it here at first use keeps that edge acyclic.  The
    # crash-restart and failover drivers pull in the reporting stack
    # (and its socket layer) the same way.
    if name in _HARNESS_NAMES:
        from repro.chaos import harness

        return getattr(harness, name)
    if name in _CRASH_NAMES:
        from repro.chaos import crash

        return getattr(crash, name)
    if name in _FAILOVER_NAMES:
        from repro.chaos import failover

        return getattr(failover, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
