"""Pure-Python SHA-1.

The paper calls its hash "SHA-128"; SHA-1 (160-bit) is the function that
existed under that informal name and matches the 40-hex-digit example
digest shown in Section 3.2 (``da4b9237...``, which is ``sha1(b"2")``).

The implementation is the straightforward FIPS 180-1 algorithm.  It is
intentionally self-contained (no ``hashlib``) so the symbolic executor
can mark calls into this module as uninterpreted functions and so tests
can cross-check against ``hashlib`` as an independent oracle.
"""

from __future__ import annotations

import struct
from typing import Iterable

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF


def _rol(value: int, count: int) -> int:
    """Rotate a 32-bit integer left by ``count`` bits."""
    return ((value << count) | (value >> (32 - count))) & _MASK


class Sha1:
    """Incremental SHA-1 with the familiar ``update``/``digest`` API."""

    block_size = 64
    digest_size = 20

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha1":
        """Absorb ``data``; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes, got {type(data).__name__}")
        self._length += len(data)
        self._buffer += bytes(data)
        while len(self._buffer) >= 64:
            self._process_block(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        """Return the 20-byte digest without disturbing internal state."""
        # Work on copies so callers may keep updating afterwards.
        h = list(self._h)
        buffer = self._buffer
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = buffer + padding + struct.pack(">Q", bit_length)
        for start in range(0, len(tail), 64):
            h = self._compress(h, tail[start : start + 64])
        return struct.pack(">5I", *h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Sha1":
        clone = Sha1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def _process_block(self, block: bytes) -> None:
        self._h = self._compress(self._h, block)

    @staticmethod
    def _compress(h: Iterable[int], block: bytes) -> list:
        """One 512-bit compression round (FIPS 180-1 section 7)."""
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rol(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))

        a, b, c, d, e = h
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            a, b, c, d, e = (
                (_rol(a, 5) + f + e + k + w[i]) & _MASK,
                a,
                _rol(b, 30),
                c,
                d,
            )

        h0, h1, h2, h3, h4 = h
        return [
            (h0 + a) & _MASK,
            (h1 + b) & _MASK,
            (h2 + c) & _MASK,
            (h3 + d) & _MASK,
            (h4 + e) & _MASK,
        ]


# The one-shot helpers delegate to hashlib: manifest digests cover
# megabytes of asset bytes and the pure-Python compression function is
# ~3 orders of magnitude slower.  The pure implementation above is the
# reference (the test suite asserts both agree on random inputs) and
# the incremental/copy API some callers need.
try:  # pragma: no cover - import guard
    import hashlib as _hashlib

    def sha1(data: bytes) -> bytes:
        """One-shot SHA-1 digest of ``data``."""
        return _hashlib.sha1(bytes(data)).digest()

    def sha1_hex(data: bytes) -> str:
        """One-shot SHA-1 digest of ``data`` as a hex string."""
        return _hashlib.sha1(bytes(data)).hexdigest()

except ImportError:  # pragma: no cover - hashlib is stdlib

    def sha1(data: bytes) -> bytes:
        """One-shot SHA-1 digest of ``data``."""
        return Sha1(data).digest()

    def sha1_hex(data: bytes) -> str:
        """One-shot SHA-1 digest of ``data`` as a hex string."""
        return Sha1(data).hexdigest()
