"""Key derivation and trigger-constant hashing.

Section 7.4 of the paper: ``key = Hash(c | S)`` where ``c`` is the
trigger constant (of any type/size) and ``S`` a per-bomb salt, producing
a uniform 128-bit AES key.  The same construction, without truncation,
yields the stored comparison digest ``Hc = Hash(c | S)`` used in the
obfuscated condition ``Hash(X | S) == Hc``.

Salting defeats rainbow-table attacks (Section 5.1): the same constant
in two bombs hashes to unrelated digests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto.sha1 import sha1


@dataclass(frozen=True)
class Salt:
    """A per-bomb salt mixed into every hash computation."""

    value: bytes = field(default_factory=lambda: os.urandom(12))

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes):
            raise TypeError("salt must be bytes")

    @classmethod
    def from_seed(cls, seed: int) -> "Salt":
        """Deterministic salt for reproducible experiments."""
        return cls(sha1(seed.to_bytes(8, "big", signed=True))[:12])


def encode_value(value) -> bytes:
    """Canonical byte encoding of a trigger operand.

    The encoding is *type-tagged* so that e.g. int ``1`` and string
    ``"1"`` hash differently -- the instrumented check must be exactly
    as discriminating as the original ``==``.  Booleans encode as ints
    (``True`` as 1) because the VM's equality treats them
    interchangeably, and ``Hash(X|S) == Hash(c|S)`` must hold exactly
    when ``X == c`` held.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return b"I" + value.to_bytes(9, "big", signed=True)
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"R" + value
    raise TypeError(f"cannot encode trigger operand of type {type(value).__name__}")


def hash_constant(value, salt: Salt) -> bytes:
    """``Hc = Hash(c | S)`` -- the digest stored in the obfuscated condition."""
    return sha1(encode_value(value) + salt.value)


def derive_key(value, salt: Salt) -> bytes:
    """``key = Hash(c | S)`` truncated to 128 bits for AES-128."""
    return hash_constant(value, salt)[:16]
