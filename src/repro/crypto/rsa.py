"""Textbook RSA signing for the APK model.

Android app signing only matters here through key *identity*: a
repackaged app is re-signed with a different key pair, so the public key
embedded in CERT.RSA changes and public-key comparison detects it.  We
implement real (small) RSA rather than a stub so signature verification
genuinely fails on tampered content, which the repackager and the
attack suite exercise.

Keys default to 512 bits -- fast to generate in pure Python, and the
security of the reproduction does not rest on factoring hardness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.sha1 import sha1
from repro.errors import CryptoError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
)


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random = None) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError("prime size too small")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def _modinv(a: int, m: int) -> int:
    """Modular inverse via extended Euclid."""
    g, x = _egcd(a % m, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _egcd(a: int, b: int) -> tuple:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key -- the identity compared by repackaging detection."""

    n: int
    e: int

    def verify(self, message: bytes, signature: int) -> bool:
        """Check ``signature^e mod n`` against the padded message digest."""
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == _encode_digest(message, self.n)

    def fingerprint(self) -> bytes:
        """Stable 20-byte identifier of this key (what detection compares)."""
        blob = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        return sha1(blob + self.e.to_bytes(4, "big"))

    def to_bytes(self) -> bytes:
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        return len(n_bytes).to_bytes(2, "big") + n_bytes + self.e.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RSAPublicKey":
        if len(blob) < 6:
            raise CryptoError("truncated public key blob")
        n_len = int.from_bytes(blob[:2], "big")
        if len(blob) != 2 + n_len + 4:
            raise CryptoError("malformed public key blob")
        n = int.from_bytes(blob[2 : 2 + n_len], "big")
        e = int.from_bytes(blob[2 + n_len :], "big")
        return cls(n=n, e=e)


def _encode_digest(message: bytes, n: int) -> int:
    """Deterministic full-domain-style encoding of sha1(message) below n."""
    digest = sha1(message)
    # Expand the digest with counter blocks until it covers the modulus size,
    # then reduce mod n; deterministic so sign and verify agree.
    size = (n.bit_length() + 7) // 8
    stream = b""
    counter = 0
    while len(stream) < size:
        stream += sha1(digest + counter.to_bytes(4, "big"))
        counter += 1
    return int.from_bytes(stream[:size], "big") % n


@dataclass(frozen=True)
class RSAKeyPair:
    """Developer (or attacker) signing key pair."""

    public: RSAPublicKey
    d: int

    @classmethod
    def generate(cls, bits: int = 512, seed: int = None) -> "RSAKeyPair":
        """Generate a fresh key pair; pass ``seed`` for reproducibility."""
        rng = random.Random(seed)
        e = 65537
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits // 2, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            n = p * q
            d = _modinv(e, phi)
            return cls(public=RSAPublicKey(n=n, e=e), d=d)

    def sign(self, message: bytes) -> int:
        """Sign sha1(message) -- used over the APK content digest."""
        return pow(_encode_digest(message, self.public.n), self.d, self.public.n)
