"""Pure-Python AES-128 (FIPS 197) with CBC and CTR modes.

BombDroid encrypts bomb payloads with AES-128 under a key derived from
the trigger constant (:mod:`repro.crypto.kdf`).  Decrypting with the
wrong key yields garbage that fails PKCS#7 unpadding with overwhelming
probability, which is exactly the behaviour forced-execution attacks
observe when they skip the trigger check.
"""

from __future__ import annotations

from repro.errors import BadPaddingError, CryptoError

# --------------------------------------------------------------------------
# Tables.  The S-box is generated from the AES definition (multiplicative
# inverse in GF(2^8) followed by the affine transform) rather than pasted,
# so a typo cannot silently corrupt it.
# --------------------------------------------------------------------------


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple:
    # Multiplicative inverses via exponentiation: a^254 == a^-1 in GF(2^8).
    def inverse(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        exponent = 254
        base = a
        while exponent:
            if exponent & 1:
                result = _gf_mul(result, base)
            base = _gf_mul(base, base)
            exponent >>= 1
        return result

    sbox = []
    for value in range(256):
        inv = inverse(value)
        # Affine transform: b ^= rotl(b,1)^rotl(b,2)^rotl(b,3)^rotl(b,4)^0x63
        b = inv
        result = 0x63
        for shift in range(5):
            result ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox.append(result & 0xFF)
    return tuple(sbox)


_SBOX = _build_sbox()
_INV_SBOX = tuple(_SBOX.index(i) for i in range(256))
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

# MixColumns multiplies by fixed coefficients; 256-entry lookup tables
# keep the hot loop out of bit-twiddling (payload encryption runs once
# per bomb, payload decryption once per triggered bomb per process).
_MUL = {
    factor: tuple(_gf_mul(value, factor) for value in range(256))
    for factor in (2, 3, 9, 11, 13, 14)
}


class AES128:
    """AES with a 128-bit key; 10 rounds, 16-byte blocks."""

    block_size = 16
    key_size = 16
    rounds = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise CryptoError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    # -- key schedule ------------------------------------------------------

    @classmethod
    def _expand_key(cls, key: bytes) -> list:
        """Expand the cipher key into 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (cls.rounds + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(cls.rounds + 1):
            flat = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # -- block primitives ----------------------------------------------------

    @staticmethod
    def _add_round_key(state: list, round_key: list) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list, box: tuple) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list) -> list:
        # State is column-major: byte (row r, col c) lives at 4*c + r.
        out = [0] * 16
        for c in range(4):
            for r in range(4):
                out[4 * c + r] = state[4 * ((c + r) % 4) + r]
        return out

    @staticmethod
    def _inv_shift_rows(state: list) -> list:
        out = [0] * 16
        for c in range(4):
            for r in range(4):
                out[4 * ((c + r) % 4) + r] = state[4 * c + r]
        return out

    @staticmethod
    def _mix_columns(state: list) -> list:
        mul2, mul3 = _MUL[2], _MUL[3]
        out = [0] * 16
        for c in range(0, 16, 4):
            a, b, d, e = state[c], state[c + 1], state[c + 2], state[c + 3]
            out[c] = mul2[a] ^ mul3[b] ^ d ^ e
            out[c + 1] = a ^ mul2[b] ^ mul3[d] ^ e
            out[c + 2] = a ^ b ^ mul2[d] ^ mul3[e]
            out[c + 3] = mul3[a] ^ b ^ d ^ mul2[e]
        return out

    @staticmethod
    def _inv_mix_columns(state: list) -> list:
        mul9, mul11, mul13, mul14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        out = [0] * 16
        for c in range(0, 16, 4):
            a, b, d, e = state[c], state[c + 1], state[c + 2], state[c + 3]
            out[c] = mul14[a] ^ mul11[b] ^ mul13[d] ^ mul9[e]
            out[c + 1] = mul9[a] ^ mul14[b] ^ mul11[d] ^ mul13[e]
            out[c + 2] = mul13[a] ^ mul9[b] ^ mul14[d] ^ mul11[e]
            out[c + 3] = mul11[a] ^ mul13[b] ^ mul9[d] ^ mul14[e]
        return out

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for r in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[r])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- modes ----------------------------------------------------------------

    def encrypt_cbc(self, plaintext: bytes, iv: bytes) -> bytes:
        """CBC-encrypt with PKCS#7 padding; returns ciphertext (no IV prefix)."""
        if len(iv) != 16:
            raise CryptoError("IV must be 16 bytes")
        data = pkcs7_pad(plaintext, 16)
        previous = iv
        out = bytearray()
        for start in range(0, len(data), 16):
            block = bytes(a ^ b for a, b in zip(data[start : start + 16], previous))
            previous = self.encrypt_block(block)
            out.extend(previous)
        return bytes(out)

    def decrypt_cbc(self, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt and strip PKCS#7 padding.

        Raises :class:`BadPaddingError` when the key was wrong -- this is
        the observable failure of forced-execution attacks on bombs.
        """
        if len(iv) != 16:
            raise CryptoError("IV must be 16 bytes")
        if len(ciphertext) % 16 != 0 or not ciphertext:
            raise CryptoError("ciphertext length must be a positive multiple of 16")
        previous = iv
        out = bytearray()
        for start in range(0, len(ciphertext), 16):
            block = ciphertext[start : start + 16]
            plain = self.decrypt_block(block)
            out.extend(a ^ b for a, b in zip(plain, previous))
            previous = block
        return pkcs7_unpad(bytes(out), 16)

    def encrypt_ctr(self, data: bytes, nonce: bytes) -> bytes:
        """CTR mode keystream XOR (encryption == decryption)."""
        if len(nonce) != 8:
            raise CryptoError("CTR nonce must be 8 bytes")
        out = bytearray()
        counter = 0
        for start in range(0, len(data), 16):
            keystream = self.encrypt_block(nonce + counter.to_bytes(8, "big"))
            chunk = data[start : start + 16]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
            counter += 1
        return bytes(out)


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Append PKCS#7 padding so ``len(result)`` is a multiple of block_size."""
    if not 1 <= block_size <= 255:
        raise CryptoError("block size out of range")
    pad = block_size - (len(data) % block_size)
    return data + bytes([pad] * pad)


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise BadPaddingError("data length is not a padded multiple of the block size")
    pad = data[-1]
    if pad < 1 or pad > block_size:
        raise BadPaddingError(f"invalid padding byte {pad:#x}")
    if data[-pad:] != bytes([pad] * pad):
        raise BadPaddingError("padding bytes are inconsistent")
    return data[:-pad]
