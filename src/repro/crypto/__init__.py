"""Cryptographic primitives used by BombDroid bombs and APK signing.

The paper uses "SHA-128" (SHA-1) for trigger-condition obfuscation and
AES-128 for payload encryption, plus RSA for app signing.  Everything
here is implemented from scratch in pure Python:

* the bomb path must be *modelable* by the symbolic executor in
  :mod:`repro.attacks.symbolic` (hash calls become uninterpreted
  functions, which is what defeats constraint solving), and
* the reproduction should not silently depend on platform OpenSSL
  behaviour.

Public API
----------

``sha1(data) -> bytes``
    20-byte SHA-1 digest.

``AES128(key)``
    Block cipher object with ``encrypt_block``/``decrypt_block`` and
    CBC/CTR helpers ``encrypt_cbc``/``decrypt_cbc``.

``derive_key(constant, salt) -> bytes``
    The paper's ``key = Hash(c | S)`` KDF producing a 128-bit AES key.

``RSAKeyPair.generate(bits)``
    App-signing key pair with ``sign``/``verify``.
"""

from repro.crypto.sha1 import sha1, sha1_hex, Sha1
from repro.crypto.aes import AES128, pkcs7_pad, pkcs7_unpad
from repro.crypto.kdf import derive_key, hash_constant, encode_value, Salt
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, generate_prime, is_probable_prime

__all__ = [
    "sha1",
    "sha1_hex",
    "Sha1",
    "AES128",
    "pkcs7_pad",
    "pkcs7_unpad",
    "derive_key",
    "hash_constant",
    "encode_value",
    "Salt",
    "RSAKeyPair",
    "RSAPublicKey",
    "generate_prime",
    "is_probable_prime",
]
