"""A register-based bytecode substrate standing in for Dalvik.

The BombDroid transformation rewrites *branches on constants*; what it
needs from the bytecode layer is:

* register-machine instructions with Dalvik's branch shapes
  (``IF_EQ``/``IF_NE``/``IF_EQZ``/``SWITCH``), constant loads, field and
  array access, and method invocation;
* a class/method/field container format that can be serialized to a
  binary blob (our ``classes.dex``) for hashing, signing, encryption and
  dynamic loading; and
* an instrumentation-friendly representation -- branch targets are
  symbolic labels, so code can be spliced without relocating offsets.

Layout:

``opcodes``       the instruction set
``instructions``  the :class:`Instr` record and factory helpers
``model``         :class:`DexField` / :class:`DexMethod` / :class:`DexClass`
                  / :class:`DexFile`
``builder``       fluent :class:`MethodBuilder` used by templates and the
                  instrumenter
``assembler``     text assembly (``.class`` / ``.method`` / ``@label:``)
``disassembler``  inverse of the assembler, used by attacks that read code
``serializer``    binary blob <-> :class:`DexFile`
"""

from repro.dex.opcodes import Op
from repro.dex.instructions import Instr, Label
from repro.dex.model import DexField, DexMethod, DexClass, DexFile
from repro.dex.builder import MethodBuilder
from repro.dex.assembler import assemble, assemble_method
from repro.dex.disassembler import disassemble, disassemble_method
from repro.dex.serializer import serialize_dex, deserialize_dex

__all__ = [
    "Op",
    "Instr",
    "Label",
    "DexField",
    "DexMethod",
    "DexClass",
    "DexFile",
    "MethodBuilder",
    "assemble",
    "assemble_method",
    "disassemble",
    "disassemble_method",
    "serialize_dex",
    "deserialize_dex",
]
