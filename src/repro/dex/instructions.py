"""Instruction records and factory helpers.

An :class:`Instr` is a small immutable record.  Fields are used by
opcode convention (documented on :class:`repro.dex.opcodes.Op`):

``dst``     destination register
``a``/``b`` source registers
``value``   literal constant, class/method/field name, or switch table
``target``  branch label name (a string)

Branch targets are *labels*, not offsets, so the instrumenter can splice
instruction sequences without any relocation pass.  ``Label`` is a
pseudo-instruction marking a target; the interpreter skips it and the
serializer keeps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dex.opcodes import (
    BINOPS,
    CONDITIONAL_BRANCHES,
    LIT_BINOPS,
    Op,
)
from repro.errors import DexError


@dataclass(frozen=True)
class Instr:
    """One bytecode instruction."""

    op: Op
    dst: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None
    value: object = None
    target: Optional[str] = None
    args: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in ("dst", "a", "b"):
            reg = getattr(self, name)
            if reg is not None and (not isinstance(reg, int) or reg < 0):
                raise DexError(f"{self.op.value}: register {name}={reg!r} invalid")
        if self.op in CONDITIONAL_BRANCHES or self.op is Op.GOTO:
            if not isinstance(self.target, str):
                raise DexError(f"{self.op.value}: branch needs a label target")

    @property
    def is_branch(self) -> bool:
        return self.op in CONDITIONAL_BRANCHES

    @property
    def is_label(self) -> bool:
        return self.op is Op.LABEL

    def reads(self) -> Tuple[int, ...]:
        """Registers this instruction reads (for def-use analysis)."""
        regs = []
        if self.op in (Op.APUT,):
            # APUT reads the stored value (a), the index (b) and the array (dst).
            regs = [self.a, self.b, self.dst]
        else:
            if self.a is not None:
                regs.append(self.a)
            if self.b is not None:
                regs.append(self.b)
        regs.extend(self.args)
        return tuple(r for r in regs if r is not None)

    def writes(self) -> Tuple[int, ...]:
        """Registers this instruction defines."""
        if self.op in (Op.APUT, Op.IPUT, Op.SPUT):
            return ()
        if self.dst is not None:
            return (self.dst,)
        return ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.dex.disassembler import format_instr

        return format_instr(self)


def Label(name: str) -> Instr:
    """A branch-target marker pseudo-instruction."""
    if not isinstance(name, str) or not name:
        raise DexError("label name must be a non-empty string")
    return Instr(Op.LABEL, value=name)


# ---------------------------------------------------------------------------
# Factory helpers.  These keep construction typo-safe and are the idiom used
# throughout the instrumenter, templates and tests.
# ---------------------------------------------------------------------------


def const(dst: int, value) -> Instr:
    """Load a literal (int, bool, str, bytes or None) into ``dst``."""
    if value is not None and not isinstance(value, (int, str, bytes)):
        raise DexError(f"unsupported constant type {type(value).__name__}")
    return Instr(Op.CONST, dst=dst, value=value)


def move(dst: int, src: int) -> Instr:
    return Instr(Op.MOVE, dst=dst, a=src)


def binop(op: Op, dst: int, a: int, b: int) -> Instr:
    if op not in BINOPS:
        raise DexError(f"{op.value} is not a register-register binop")
    return Instr(op, dst=dst, a=a, b=b)


def binop_lit(op: Op, dst: int, a: int, literal: int) -> Instr:
    if op not in LIT_BINOPS:
        raise DexError(f"{op.value} is not a register-literal binop")
    return Instr(op, dst=dst, a=a, value=literal)


def goto(target: str) -> Instr:
    return Instr(Op.GOTO, target=target)


def if_eq(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_EQ, a=a, b=b, target=target)


def if_ne(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_NE, a=a, b=b, target=target)


def if_lt(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_LT, a=a, b=b, target=target)


def if_ge(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_GE, a=a, b=b, target=target)


def if_gt(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_GT, a=a, b=b, target=target)


def if_le(a: int, b: int, target: str) -> Instr:
    return Instr(Op.IF_LE, a=a, b=b, target=target)


def if_eqz(a: int, target: str) -> Instr:
    return Instr(Op.IF_EQZ, a=a, target=target)


def if_nez(a: int, target: str) -> Instr:
    return Instr(Op.IF_NEZ, a=a, target=target)


def switch(a: int, table: dict) -> Instr:
    """Table switch: ``{constant: label}``; no match falls through."""
    if not isinstance(table, dict) or not table:
        raise DexError("switch table must be a non-empty dict")
    for key, label in table.items():
        if not isinstance(key, (int, str)):
            raise DexError(f"switch key {key!r} must be int or str")
        if not isinstance(label, str):
            raise DexError(f"switch target {label!r} must be a label name")
    return Instr(Op.SWITCH, a=a, value=dict(table))


def ret(a: int) -> Instr:
    return Instr(Op.RETURN, a=a)


def ret_void() -> Instr:
    return Instr(Op.RETURN_VOID)


def throw(a: int) -> Instr:
    return Instr(Op.THROW, a=a)


def new_instance(dst: int, class_name: str) -> Instr:
    return Instr(Op.NEW_INSTANCE, dst=dst, value=class_name)


def iget(dst: int, obj: int, field: str) -> Instr:
    return Instr(Op.IGET, dst=dst, a=obj, value=field)


def iput(src: int, obj: int, field: str) -> Instr:
    return Instr(Op.IPUT, a=src, b=obj, value=field)


def sget(dst: int, qualified_field: str) -> Instr:
    if "." not in qualified_field:
        raise DexError(f"static field {qualified_field!r} must be 'Class.field'")
    return Instr(Op.SGET, dst=dst, value=qualified_field)


def sput(src: int, qualified_field: str) -> Instr:
    if "." not in qualified_field:
        raise DexError(f"static field {qualified_field!r} must be 'Class.field'")
    return Instr(Op.SPUT, a=src, value=qualified_field)


def new_array(dst: int, length_reg: int) -> Instr:
    return Instr(Op.NEW_ARRAY, dst=dst, a=length_reg)


def aget(dst: int, arr: int, index: int) -> Instr:
    return Instr(Op.AGET, dst=dst, a=arr, b=index)


def aput(src: int, arr: int, index: int) -> Instr:
    return Instr(Op.APUT, a=src, dst=arr, b=index)


def array_len(dst: int, arr: int) -> Instr:
    return Instr(Op.ARRAY_LEN, dst=dst, a=arr)


def invoke(dst, qualified_method: str, args=()) -> Instr:
    """Call ``Class.method`` (or a framework API like ``android.env.get``).

    ``dst`` may be None for void calls.
    """
    if "." not in qualified_method:
        raise DexError(f"invoke target {qualified_method!r} must be qualified")
    return Instr(Op.INVOKE, dst=dst, value=qualified_method, args=tuple(args))
