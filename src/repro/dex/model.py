"""Class-file model: fields, methods, classes and the dex container.

A :class:`DexFile` is the unit that gets serialized into a binary blob
-- the app's ``classes.dex``, or a bomb payload.  Methods own a flat
instruction list with label pseudo-instructions; :meth:`DexMethod.label_map`
resolves labels to indices (cached, invalidated on mutation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.dex.instructions import Instr
from repro.dex.opcodes import Op
from repro.errors import DexError

#: Method-name prefix that marks UI event handlers (drivers invoke these).
EVENT_HANDLER_PREFIX = "on_"

#: Conventional entry point run once when the app starts.
ENTRY_METHOD = "main"


@dataclass
class DexField:
    """A static or instance field with an initial value."""

    name: str
    static: bool = False
    initial: object = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DexError("field name must be a non-empty string")


@dataclass
class DexMethod:
    """A method: ``registers`` total registers, the first ``params`` of
    which receive the arguments.

    ``instructions`` is mutable on purpose -- the instrumenter rewrites it
    in place.  Call :meth:`invalidate` after structural edits.
    """

    name: str
    class_name: str
    params: int
    registers: int
    instructions: List[Instr] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.params < 0 or self.registers < self.params:
            raise DexError(
                f"{self.qualified_name}: registers={self.registers} < params={self.params}"
            )
        self._labels: Optional[Dict[str, int]] = None
        self._compiled = None  # dispatch-table body (repro.vm.dispatch)

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    @property
    def is_event_handler(self) -> bool:
        return self.name.startswith(EVENT_HANDLER_PREFIX)

    def label_map(self) -> Dict[str, int]:
        """Map of label name -> instruction index (of the LABEL marker)."""
        if self._labels is None:
            labels: Dict[str, int] = {}
            for index, instr in enumerate(self.instructions):
                if instr.op is Op.LABEL:
                    if instr.value in labels:
                        raise DexError(
                            f"{self.qualified_name}: duplicate label {instr.value!r}"
                        )
                    labels[instr.value] = index
            self._labels = labels
        return self._labels

    def invalidate(self) -> None:
        """Drop caches (label map, compiled dispatch table) after
        mutating ``instructions``."""
        self._labels = None
        self._compiled = None

    def label_cache(self) -> Optional[Dict[str, int]]:
        """The cached label map as-is, or None when invalidated.

        Unlike :meth:`label_map` this never recomputes -- the verifier
        uses it to detect a cache that survived a structural edit.
        """
        return self._labels

    def resolve(self, label: str) -> int:
        """Index of the instruction labelled ``label``."""
        try:
            return self.label_map()[label]
        except KeyError:
            raise DexError(f"{self.qualified_name}: undefined label {label!r}") from None

    def validate(self) -> None:
        """Check structural invariants: targets exist, registers in range."""
        labels = self.label_map()
        for index, instr in enumerate(self.instructions):
            for reg in (instr.dst, instr.a, instr.b, *instr.args):
                if reg is not None and reg >= self.registers:
                    raise DexError(
                        f"{self.qualified_name}@{index}: register r{reg} out of "
                        f"range (method has {self.registers})"
                    )
            if instr.target is not None and instr.target not in labels:
                raise DexError(
                    f"{self.qualified_name}@{index}: undefined target {instr.target!r}"
                )
            if instr.op is Op.SWITCH:
                for target in instr.value.values():
                    if target not in labels:
                        raise DexError(
                            f"{self.qualified_name}@{index}: undefined switch "
                            f"target {target!r}"
                        )

    def fresh_label(self, hint: str = "L") -> str:
        """A label name not yet used in this method."""
        labels = self.label_map()
        counter = len(labels)
        while f"{hint}{counter}" in labels:
            counter += 1
        return f"{hint}{counter}"

    def grow_registers(self, extra: int) -> int:
        """Reserve ``extra`` fresh registers; returns index of the first."""
        if extra < 0:
            raise DexError("cannot shrink the register file")
        first = self.registers
        self.registers += extra
        return first

    def real_instruction_count(self) -> int:
        """Instruction count excluding label markers (code-size metric)."""
        return sum(1 for instr in self.instructions if instr.op is not Op.LABEL)


@dataclass
class DexClass:
    """A class: named fields plus named methods."""

    name: str
    fields: Dict[str, DexField] = field(default_factory=dict)
    methods: Dict[str, DexMethod] = field(default_factory=dict)

    def add_field(self, f: DexField) -> DexField:
        if f.name in self.fields:
            raise DexError(f"{self.name}: duplicate field {f.name!r}")
        self.fields[f.name] = f
        return f

    def add_method(self, m: DexMethod) -> DexMethod:
        if m.class_name != self.name:
            raise DexError(f"method {m.qualified_name} does not belong to {self.name}")
        if m.name in self.methods:
            raise DexError(f"{self.name}: duplicate method {m.name!r}")
        self.methods[m.name] = m
        return m

    def static_fields(self) -> Iterator[DexField]:
        return (f for f in self.fields.values() if f.static)


@dataclass
class DexFile:
    """The container serialized into ``classes.dex``."""

    classes: Dict[str, DexClass] = field(default_factory=dict)

    def add_class(self, cls: DexClass) -> DexClass:
        if cls.name in self.classes:
            raise DexError(f"duplicate class {cls.name!r}")
        self.classes[cls.name] = cls
        return cls

    def get_method(self, qualified_name: str) -> DexMethod:
        class_name, _, method_name = qualified_name.rpartition(".")
        try:
            return self.classes[class_name].methods[method_name]
        except KeyError:
            raise DexError(f"no such method {qualified_name!r}") from None

    def iter_methods(self) -> Iterator[DexMethod]:
        for cls in self.classes.values():
            yield from cls.methods.values()

    def event_handlers(self) -> List[DexMethod]:
        """All UI event handlers, in stable (class, name) order."""
        handlers = [m for m in self.iter_methods() if m.is_event_handler]
        handlers.sort(key=lambda m: m.qualified_name)
        return handlers

    def instruction_count(self) -> int:
        """Total real instructions -- the paper's code-size metric."""
        return sum(m.real_instruction_count() for m in self.iter_methods())

    def validate(self) -> None:
        for method in self.iter_methods():
            method.validate()
