"""Text assembler for the repro ISA.

The assembly dialect (used by app templates, tests and the examples)::

    .class AndroFish
    .field score static 0
    .field width 24
    .method on_touch 2
        const r2, 5
        if_eq r0, r2, @hit
        return_void
    @hit:
        sget r3, AndroFish.score
        add_lit r3, r3, 10
        sput r3, AndroFish.score
        return_void
    .end

Literals: integers (decimal or ``0x`` hex), ``true``/``false``,
``null``, double-quoted strings with ``\\"``/``\\\\``/``\\n`` escapes, and
byte strings as ``hex:DEADBEEF``.  Branch targets are written ``@name``
and declared as ``@name:`` on their own line.  Switch tables use
``switch r0, {1 -> @a, 2 -> @b}``.  ``#`` starts a comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.dex import instructions as ins
from repro.dex.instructions import Instr
from repro.dex.model import DexClass, DexField, DexFile, DexMethod
from repro.dex.opcodes import BINOPS, LIT_BINOPS, Op, from_mnemonic
from repro.errors import DexError

_REGISTER = re.compile(r"^r(\d+)$")
_LABEL_DEF = re.compile(r"^@([\w$]+):$")
_STRING = re.compile(r'^"(?:[^"\\]|\\.)*"$')


class _AsmError(DexError):
    """Assembly error with line information attached by the driver."""


def _parse_register(token: str) -> int:
    match = _REGISTER.match(token)
    if not match:
        raise _AsmError(f"expected register, got {token!r}")
    return int(match.group(1))


def _parse_label_ref(token: str) -> str:
    if not token.startswith("@") or len(token) < 2:
        raise _AsmError(f"expected @label, got {token!r}")
    return token[1:]


def _unescape(body: str) -> str:
    out = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\":
            index += 1
            if index >= len(body):
                raise _AsmError("dangling escape in string literal")
            escape = body[index]
            out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
        else:
            out.append(ch)
        index += 1
    return "".join(out)


def parse_literal(token: str):
    """Parse an assembly literal into its Python value."""
    if token == "null":
        return None
    if token == "true":
        return True
    if token == "false":
        return False
    if token.startswith("hex:"):
        try:
            return bytes.fromhex(token[4:])
        except ValueError:
            raise _AsmError(f"bad hex literal {token!r}") from None
    if _STRING.match(token):
        return _unescape(token[1:-1])
    try:
        return int(token, 0)
    except ValueError:
        raise _AsmError(f"cannot parse literal {token!r}") from None


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside quotes or braces."""
    parts: List[str] = []
    depth = 0
    in_string = False
    current = []
    index = 0
    while index < len(text):
        ch = text[index]
        if in_string:
            current.append(ch)
            if ch == "\\":
                index += 1
                if index < len(text):
                    current.append(text[index])
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
            current.append(ch)
        elif ch == "{":
            depth += 1
            current.append(ch)
        elif ch == "}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        index += 1
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_switch_table(token: str) -> dict:
    if not (token.startswith("{") and token.endswith("}")):
        raise _AsmError(f"switch table must be {{...}}, got {token!r}")
    table = {}
    body = token[1:-1].strip()
    if not body:
        raise _AsmError("empty switch table")
    for entry in _split_operands(body):
        if "->" not in entry:
            raise _AsmError(f"switch entry {entry!r} missing '->'")
        key_text, _, target_text = entry.partition("->")
        key = parse_literal(key_text.strip())
        if isinstance(key, bool) or not isinstance(key, (int, str)):
            raise _AsmError(f"switch key {key!r} must be int or str")
        table[key] = _parse_label_ref(target_text.strip())
    return table


def parse_instruction(line: str) -> Instr:
    """Parse one instruction line (no label definitions, no directives)."""
    mnemonic, _, rest = line.partition(" ")
    try:
        op = from_mnemonic(mnemonic)
    except KeyError:
        raise _AsmError(f"unknown mnemonic {mnemonic!r}") from None
    operands = _split_operands(rest) if rest.strip() else []

    if op is Op.NOP:
        _expect(operands, 0, op)
        return Instr(Op.NOP)
    if op is Op.CONST:
        _expect(operands, 2, op)
        return ins.const(_parse_register(operands[0]), parse_literal(operands[1]))
    if op is Op.MOVE:
        _expect(operands, 2, op)
        return ins.move(_parse_register(operands[0]), _parse_register(operands[1]))
    if op in BINOPS:
        _expect(operands, 3, op)
        return ins.binop(
            op,
            _parse_register(operands[0]),
            _parse_register(operands[1]),
            _parse_register(operands[2]),
        )
    if op in LIT_BINOPS:
        _expect(operands, 3, op)
        literal = parse_literal(operands[2])
        if isinstance(literal, bool) or not isinstance(literal, int):
            raise _AsmError(f"{op.value}: literal operand must be an int")
        return ins.binop_lit(op, _parse_register(operands[0]), _parse_register(operands[1]), literal)
    if op in (Op.NEG, Op.NOT):
        _expect(operands, 2, op)
        return Instr(op, dst=_parse_register(operands[0]), a=_parse_register(operands[1]))
    if op is Op.GOTO:
        _expect(operands, 1, op)
        return ins.goto(_parse_label_ref(operands[0]))
    if op in (Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_GE, Op.IF_GT, Op.IF_LE):
        _expect(operands, 3, op)
        return Instr(
            op,
            a=_parse_register(operands[0]),
            b=_parse_register(operands[1]),
            target=_parse_label_ref(operands[2]),
        )
    if op in (Op.IF_EQZ, Op.IF_NEZ, Op.IF_LTZ, Op.IF_GEZ):
        _expect(operands, 2, op)
        return Instr(op, a=_parse_register(operands[0]), target=_parse_label_ref(operands[1]))
    if op is Op.SWITCH:
        _expect(operands, 2, op)
        return ins.switch(_parse_register(operands[0]), _parse_switch_table(operands[1]))
    if op is Op.RETURN:
        _expect(operands, 1, op)
        return ins.ret(_parse_register(operands[0]))
    if op is Op.RETURN_VOID:
        _expect(operands, 0, op)
        return ins.ret_void()
    if op is Op.THROW:
        _expect(operands, 1, op)
        return ins.throw(_parse_register(operands[0]))
    if op is Op.NEW_INSTANCE:
        _expect(operands, 2, op)
        return ins.new_instance(_parse_register(operands[0]), operands[1])
    if op is Op.IGET:
        _expect(operands, 3, op)
        return ins.iget(_parse_register(operands[0]), _parse_register(operands[1]), operands[2])
    if op is Op.IPUT:
        _expect(operands, 3, op)
        return ins.iput(_parse_register(operands[0]), _parse_register(operands[1]), operands[2])
    if op is Op.SGET:
        _expect(operands, 2, op)
        return ins.sget(_parse_register(operands[0]), operands[1])
    if op is Op.SPUT:
        _expect(operands, 2, op)
        return ins.sput(_parse_register(operands[0]), operands[1])
    if op is Op.NEW_ARRAY:
        _expect(operands, 2, op)
        return ins.new_array(_parse_register(operands[0]), _parse_register(operands[1]))
    if op is Op.AGET:
        _expect(operands, 3, op)
        return ins.aget(
            _parse_register(operands[0]), _parse_register(operands[1]), _parse_register(operands[2])
        )
    if op is Op.APUT:
        _expect(operands, 3, op)
        return ins.aput(
            _parse_register(operands[0]), _parse_register(operands[1]), _parse_register(operands[2])
        )
    if op is Op.ARRAY_LEN:
        _expect(operands, 2, op)
        return ins.array_len(_parse_register(operands[0]), _parse_register(operands[1]))
    if op is Op.INVOKE:
        if len(operands) < 2:
            raise _AsmError("invoke needs a destination ('_' for void) and a target")
        dst = None if operands[0] == "_" else _parse_register(operands[0])
        args = tuple(_parse_register(tok) for tok in operands[2:])
        return ins.invoke(dst, operands[1], args)
    raise _AsmError(f"unhandled opcode {op.value!r}")


def _expect(operands: List[str], count: int, op: Op) -> None:
    if len(operands) != count:
        raise _AsmError(f"{op.value} expects {count} operands, got {len(operands)}")


def _strip(line: str) -> str:
    """Remove comments (``#`` outside string literals) and whitespace."""
    in_string = False
    for index, ch in enumerate(line):
        if ch == '"' and (index == 0 or line[index - 1] != "\\"):
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:index].strip()
    return line.strip()


def assemble_method(
    source: str,
    class_name: str = "Main",
    name: str = "main",
    params: int = 0,
    line_offset: int = 0,
) -> DexMethod:
    """Assemble a bare instruction listing into a single method.

    ``line_offset`` shifts reported line numbers so errors inside a
    ``.method`` block point at the enclosing file's lines.
    """
    instructions: List[Instr] = []
    max_register = params - 1
    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        try:
            label = _LABEL_DEF.match(line)
            if label:
                instructions.append(ins.Label(label.group(1)))
                continue
            instr = parse_instruction(line)
        except _AsmError as exc:
            raise DexError(f"line {line_offset + line_number}: {exc}") from None
        instructions.append(instr)
        for reg in (instr.dst, instr.a, instr.b, *instr.args):
            if reg is not None:
                max_register = max(max_register, reg)
    method = DexMethod(
        name=name,
        class_name=class_name,
        params=params,
        registers=max_register + 1 if max_register >= 0 else max(params, 1),
        instructions=instructions,
    )
    method.validate()
    return method


def assemble(source: str) -> DexFile:
    """Assemble a full ``.class``/``.method`` listing into a DexFile."""
    dex = DexFile()
    current_class: Optional[DexClass] = None
    method_header: Optional[Tuple[str, int, int]] = None
    method_lines: List[str] = []

    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if method_header is not None and line != ".end":
            # Keep blank placeholders so inner line numbers stay aligned
            # with the enclosing file.
            method_lines.append(line)
            continue
        if not line:
            continue
        try:
            if line.startswith(".class"):
                _, _, class_name = line.partition(" ")
                class_name = class_name.strip()
                if not class_name:
                    raise _AsmError(".class needs a name")
                current_class = dex.add_class(DexClass(name=class_name))
            elif line.startswith(".field"):
                if current_class is None:
                    raise _AsmError(".field outside .class")
                rest = line[len(".field") :].strip()
                field_name, _, rest = rest.partition(" ")
                rest = rest.strip()
                static = False
                if rest == "static" or rest.startswith("static "):
                    static = True
                    rest = rest[len("static") :].strip()
                initial = parse_literal(rest) if rest else None
                current_class.add_field(DexField(name=field_name, static=static, initial=initial))
            elif line.startswith(".method"):
                if current_class is None:
                    raise _AsmError(".method outside .class")
                words = line.split()
                if len(words) != 3:
                    raise _AsmError(".method needs a name and a parameter count")
                method_header = (words[1], int(words[2]), line_number)
                method_lines = []
            elif line == ".end":
                if method_header is None:
                    raise _AsmError("stray .end")
                name, params, header_line = method_header
                method = assemble_method(
                    "\n".join(method_lines),
                    class_name=current_class.name,
                    name=name,
                    params=params,
                    line_offset=header_line,
                )
                current_class.add_method(method)
                method_header = None
                method_lines = []
            else:
                raise _AsmError(f"unexpected directive {line!r}")
        except _AsmError as exc:
            raise DexError(f"line {line_number}: {exc}") from None

    if method_header is not None:
        raise DexError("unterminated .method (missing .end)")
    dex.validate()
    return dex
