"""Binary serialization of :class:`DexFile` blobs.

The blob plays the role of ``classes.dex``: it is what the APK carries,
what MANIFEST.MF digests cover, what BombDroid encrypts as a bomb
payload, and what the VM's class loader loads dynamically at runtime
(Section 7.5: "the string will be decrypted and stored in a separated
.dex file, which is then loaded and invoked").

Format (all integers big-endian)::

    magic "RDEX" | u16 version
    u16 class count
      class: str name | u16 #fields | fields | u16 #methods | methods
      field: str name | u8 static | value
      method: str name | u16 params | u16 registers | u32 #instrs | instrs
      instr: u8 opcode | u8 flags | [u16 dst] [u16 a] [u16 b]
             [value] [str target] [u8 #args, u16 each]
    u32 crc32 of everything before it      (version >= 2)

Strings are u32-length-prefixed UTF-8.  Values are type-tagged
(null/bool/int/str/bytes/switch-table).

Version 2 appends a crc32 footer so that storage rot (a bit flip in a
cached payload, say) is always detected as :class:`DexFormatError`
rather than parsing into a structurally valid but wrong program.
Version 1 blobs (no footer) are still accepted.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from repro.dex.instructions import Instr
from repro.dex.model import DexClass, DexField, DexFile, DexMethod
from repro.dex.opcodes import Op
from repro.errors import DexFormatError

def _unpack_from(fmt: str, blob: bytes, offset: int):
    """struct.unpack_from that fails with the library's own error."""
    try:
        return struct.unpack_from(fmt, blob, offset)
    except struct.error as exc:
        raise DexFormatError(f"truncated dex blob: {exc}") from None


MAGIC = b"RDEX"
VERSION = 2
_LEGACY_VERSION = 1
_CRC_SIZE = 4

# Stable opcode numbering derived from definition order of the Op enum.
_OP_TO_CODE = {op: index for index, op in enumerate(Op)}
_CODE_TO_OP = {index: op for op, index in _OP_TO_CODE.items()}

_FLAG_DST = 0x01
_FLAG_A = 0x02
_FLAG_B = 0x04
_FLAG_VALUE = 0x08
_FLAG_TARGET = 0x10
_FLAG_ARGS = 0x20

_TAG_NULL = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_BIGINT = b"G"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_TABLE = b"D"


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return struct.pack(">I", len(data)) + data


def _unpack_str(blob: bytes, offset: int) -> Tuple[str, int]:
    if offset + 4 > len(blob):
        raise DexFormatError("truncated string length")
    (length,) = _unpack_from(">I", blob, offset)
    offset += 4
    if offset + length > len(blob):
        raise DexFormatError("truncated string body")
    return blob[offset : offset + length].decode("utf-8"), offset + length


def _pack_value(value) -> bytes:
    if value is None:
        return _TAG_NULL
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        if -(2**63) <= value < 2**63:
            return _TAG_INT + struct.pack(">q", value)
        raw = value.to_bytes((value.bit_length() + 15) // 8, "big", signed=True)
        return _TAG_BIGINT + struct.pack(">I", len(raw)) + raw
    if isinstance(value, str):
        return _TAG_STR + _pack_str(value)
    if isinstance(value, bytes):
        return _TAG_BYTES + struct.pack(">I", len(value)) + value
    if isinstance(value, dict):
        out = [_TAG_TABLE, struct.pack(">H", len(value))]
        for key, label in value.items():
            out.append(_pack_value(key))
            out.append(_pack_str(label))
        return b"".join(out)
    raise DexFormatError(f"cannot serialize value of type {type(value).__name__}")


def _unpack_value(blob: bytes, offset: int):
    if offset >= len(blob):
        raise DexFormatError("truncated value tag")
    tag = blob[offset : offset + 1]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        if offset + 8 > len(blob):
            raise DexFormatError("truncated int")
        (value,) = _unpack_from(">q", blob, offset)
        return value, offset + 8
    if tag == _TAG_BIGINT:
        (length,) = _unpack_from(">I", blob, offset)
        offset += 4
        raw = blob[offset : offset + length]
        if len(raw) != length:
            raise DexFormatError("truncated bigint")
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _TAG_STR:
        return _unpack_str(blob, offset)
    if tag == _TAG_BYTES:
        (length,) = _unpack_from(">I", blob, offset)
        offset += 4
        raw = blob[offset : offset + length]
        if len(raw) != length:
            raise DexFormatError("truncated bytes")
        return raw, offset + length
    if tag == _TAG_TABLE:
        (count,) = _unpack_from(">H", blob, offset)
        offset += 2
        table = {}
        for _ in range(count):
            key, offset = _unpack_value(blob, offset)
            label, offset = _unpack_str(blob, offset)
            table[key] = label
        return table, offset
    raise DexFormatError(f"unknown value tag {tag!r}")


def _pack_instr(instr: Instr) -> bytes:
    flags = 0
    body = b""
    if instr.dst is not None:
        flags |= _FLAG_DST
        body += struct.pack(">H", instr.dst)
    if instr.a is not None:
        flags |= _FLAG_A
        body += struct.pack(">H", instr.a)
    if instr.b is not None:
        flags |= _FLAG_B
        body += struct.pack(">H", instr.b)
    value_blob = b""
    # Note: a CONST null still needs the value flag; use a sentinel check on
    # opcode semantics rather than value truthiness.
    has_value = instr.value is not None or instr.op in (Op.CONST,)
    if has_value:
        flags |= _FLAG_VALUE
        value_blob = _pack_value(instr.value)
    if instr.target is not None:
        flags |= _FLAG_TARGET
        value_blob += _pack_str(instr.target)
    args_blob = b""
    if instr.args:
        flags |= _FLAG_ARGS
        args_blob = struct.pack(">B", len(instr.args)) + b"".join(
            struct.pack(">H", reg) for reg in instr.args
        )
    return struct.pack(">BB", _OP_TO_CODE[instr.op], flags) + body + value_blob + args_blob


def _unpack_instr(blob: bytes, offset: int) -> Tuple[Instr, int]:
    if offset + 2 > len(blob):
        raise DexFormatError("truncated instruction header")
    code, flags = _unpack_from(">BB", blob, offset)
    offset += 2
    try:
        op = _CODE_TO_OP[code]
    except KeyError:
        raise DexFormatError(f"unknown opcode byte {code:#x}") from None
    dst = a = b = None
    if flags & _FLAG_DST:
        (dst,) = _unpack_from(">H", blob, offset)
        offset += 2
    if flags & _FLAG_A:
        (a,) = _unpack_from(">H", blob, offset)
        offset += 2
    if flags & _FLAG_B:
        (b,) = _unpack_from(">H", blob, offset)
        offset += 2
    value = None
    if flags & _FLAG_VALUE:
        value, offset = _unpack_value(blob, offset)
    target = None
    if flags & _FLAG_TARGET:
        target, offset = _unpack_str(blob, offset)
    args: Tuple[int, ...] = ()
    if flags & _FLAG_ARGS:
        (count,) = _unpack_from(">B", blob, offset)
        offset += 1
        regs: List[int] = []
        for _ in range(count):
            (reg,) = _unpack_from(">H", blob, offset)
            offset += 2
            regs.append(reg)
        args = tuple(regs)
    return Instr(op, dst=dst, a=a, b=b, value=value, target=target, args=args), offset


def serialize_dex(dex: DexFile) -> bytes:
    """Serialize a DexFile to its binary blob."""
    out: List[bytes] = [MAGIC, struct.pack(">H", VERSION), struct.pack(">H", len(dex.classes))]
    for class_name in sorted(dex.classes):
        cls = dex.classes[class_name]
        out.append(_pack_str(cls.name))
        out.append(struct.pack(">H", len(cls.fields)))
        for field in cls.fields.values():
            out.append(_pack_str(field.name))
            out.append(struct.pack(">B", 1 if field.static else 0))
            out.append(_pack_value(field.initial))
        out.append(struct.pack(">H", len(cls.methods)))
        for method_name in sorted(cls.methods):
            method = cls.methods[method_name]
            out.append(_pack_str(method.name))
            out.append(struct.pack(">HHI", method.params, method.registers, len(method.instructions)))
            for instr in method.instructions:
                out.append(_pack_instr(instr))
    body = b"".join(out)
    return body + struct.pack(">I", zlib.crc32(body))


def deserialize_dex(blob: bytes) -> DexFile:
    """Parse a binary blob back into a DexFile.

    Raises :class:`DexFormatError` on malformed input -- which is what an
    attacker gets when force-decrypting a payload under the wrong key, if
    the PKCS#7 padding happens to validate.
    """
    if blob[:4] != MAGIC:
        raise DexFormatError("bad magic (not an RDEX blob)")
    (version,) = _unpack_from(">H", blob, 4)
    if version not in (VERSION, _LEGACY_VERSION):
        raise DexFormatError(f"unsupported version {version}")
    if version >= 2:
        if len(blob) < 8 + _CRC_SIZE:
            raise DexFormatError("truncated dex blob: missing crc footer")
        (expected_crc,) = _unpack_from(">I", blob, len(blob) - _CRC_SIZE)
        blob = blob[: len(blob) - _CRC_SIZE]
        if zlib.crc32(blob) != expected_crc:
            raise DexFormatError("crc mismatch (corrupt dex blob)")
    (class_count,) = _unpack_from(">H", blob, 6)
    offset = 8
    dex = DexFile()
    for _ in range(class_count):
        name, offset = _unpack_str(blob, offset)
        cls = DexClass(name=name)
        (field_count,) = _unpack_from(">H", blob, offset)
        offset += 2
        for _ in range(field_count):
            field_name, offset = _unpack_str(blob, offset)
            static = blob[offset] == 1
            offset += 1
            initial, offset = _unpack_value(blob, offset)
            cls.add_field(DexField(name=field_name, static=static, initial=initial))
        (method_count,) = _unpack_from(">H", blob, offset)
        offset += 2
        for _ in range(method_count):
            method_name, offset = _unpack_str(blob, offset)
            params, registers, instr_count = _unpack_from(">HHI", blob, offset)
            offset += 8
            instructions: List[Instr] = []
            for _ in range(instr_count):
                instr, offset = _unpack_instr(blob, offset)
                instructions.append(instr)
            cls.add_method(
                DexMethod(
                    name=method_name,
                    class_name=name,
                    params=params,
                    registers=registers,
                    instructions=instructions,
                )
            )
        dex.add_class(cls)
    if offset != len(blob):
        raise DexFormatError(f"{len(blob) - offset} trailing bytes after dex payload")
    return dex
