"""Fluent method builder.

Templates, the corpus generator, and the bomb-payload synthesizer all
assemble instruction lists programmatically; the builder keeps that
readable and allocates registers/labels without manual bookkeeping.

Example::

    b = MethodBuilder("Game", "on_touch", params=2)
    x, y = 0, 1
    tmp = b.reg()
    b.const(tmp, 5)
    b.if_eq(x, tmp, "hit")
    b.ret_void()
    b.label("hit")
    b.sget(tmp, "Game.score")
    b.add_lit(tmp, tmp, 10)
    b.sput(tmp, "Game.score")
    b.ret_void()
    method = b.build()
"""

from __future__ import annotations

from typing import List, Optional

from repro.dex import instructions as ins
from repro.dex.instructions import Instr
from repro.dex.model import DexMethod
from repro.dex.opcodes import Op
from repro.errors import DexError


class MethodBuilder:
    """Accumulates instructions and produces a validated :class:`DexMethod`."""

    def __init__(self, class_name: str, name: str, params: int = 0) -> None:
        self.class_name = class_name
        self.name = name
        self.params = params
        self._next_register = params
        self._instructions: List[Instr] = []
        self._label_counter = 0

    # -- resources -----------------------------------------------------------

    def reg(self) -> int:
        """Allocate a fresh register."""
        register = self._next_register
        self._next_register += 1
        return register

    def regs(self, count: int) -> List[int]:
        """Allocate ``count`` fresh registers."""
        return [self.reg() for _ in range(count)]

    def fresh_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    # -- emission ------------------------------------------------------------

    def emit(self, instr: Instr) -> "MethodBuilder":
        self._instructions.append(instr)
        return self

    def label(self, name: str) -> "MethodBuilder":
        return self.emit(ins.Label(name))

    def const(self, dst: int, value) -> "MethodBuilder":
        return self.emit(ins.const(dst, value))

    def const_new(self, value) -> int:
        """Allocate a register, load ``value`` into it, return the register."""
        register = self.reg()
        self.const(register, value)
        return register

    def move(self, dst: int, src: int) -> "MethodBuilder":
        return self.emit(ins.move(dst, src))

    def add(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.ADD, dst, a, b))

    def sub(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.SUB, dst, a, b))

    def mul(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.MUL, dst, a, b))

    def div(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.DIV, dst, a, b))

    def rem(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.REM, dst, a, b))

    def and_(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.AND, dst, a, b))

    def or_(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.OR, dst, a, b))

    def xor(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.XOR, dst, a, b))

    def cmp(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.emit(ins.binop(Op.CMP, dst, a, b))

    def add_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.ADD_LIT, dst, a, literal))

    def sub_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.SUB_LIT, dst, a, literal))

    def mul_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.MUL_LIT, dst, a, literal))

    def div_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.DIV_LIT, dst, a, literal))

    def rem_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.REM_LIT, dst, a, literal))

    def and_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.AND_LIT, dst, a, literal))

    def xor_lit(self, dst: int, a: int, literal: int) -> "MethodBuilder":
        return self.emit(ins.binop_lit(Op.XOR_LIT, dst, a, literal))

    def goto(self, target: str) -> "MethodBuilder":
        return self.emit(ins.goto(target))

    def if_eq(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_eq(a, b, target))

    def if_ne(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_ne(a, b, target))

    def if_lt(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_lt(a, b, target))

    def if_ge(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_ge(a, b, target))

    def if_gt(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_gt(a, b, target))

    def if_le(self, a: int, b: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_le(a, b, target))

    def if_eqz(self, a: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_eqz(a, target))

    def if_nez(self, a: int, target: str) -> "MethodBuilder":
        return self.emit(ins.if_nez(a, target))

    def switch(self, a: int, table: dict) -> "MethodBuilder":
        return self.emit(ins.switch(a, table))

    def ret(self, a: int) -> "MethodBuilder":
        return self.emit(ins.ret(a))

    def ret_void(self) -> "MethodBuilder":
        return self.emit(ins.ret_void())

    def throw(self, a: int) -> "MethodBuilder":
        return self.emit(ins.throw(a))

    def new_instance(self, dst: int, class_name: str) -> "MethodBuilder":
        return self.emit(ins.new_instance(dst, class_name))

    def iget(self, dst: int, obj: int, field: str) -> "MethodBuilder":
        return self.emit(ins.iget(dst, obj, field))

    def iput(self, src: int, obj: int, field: str) -> "MethodBuilder":
        return self.emit(ins.iput(src, obj, field))

    def sget(self, dst: int, qualified_field: str) -> "MethodBuilder":
        return self.emit(ins.sget(dst, qualified_field))

    def sput(self, src: int, qualified_field: str) -> "MethodBuilder":
        return self.emit(ins.sput(src, qualified_field))

    def new_array(self, dst: int, length_reg: int) -> "MethodBuilder":
        return self.emit(ins.new_array(dst, length_reg))

    def aget(self, dst: int, arr: int, index: int) -> "MethodBuilder":
        return self.emit(ins.aget(dst, arr, index))

    def aput(self, src: int, arr: int, index: int) -> "MethodBuilder":
        return self.emit(ins.aput(src, arr, index))

    def array_len(self, dst: int, arr: int) -> "MethodBuilder":
        return self.emit(ins.array_len(dst, arr))

    def invoke(self, dst: Optional[int], qualified_method: str, args=()) -> "MethodBuilder":
        return self.emit(ins.invoke(dst, qualified_method, args))

    # -- finalization ----------------------------------------------------------

    def build(self) -> DexMethod:
        """Validate and return the finished method."""
        if not self._instructions:
            raise DexError(f"{self.class_name}.{self.name}: empty method body")
        method = DexMethod(
            name=self.name,
            class_name=self.class_name,
            params=self.params,
            registers=max(self._next_register, self.params, 1),
            instructions=list(self._instructions),
        )
        method.validate()
        return method
