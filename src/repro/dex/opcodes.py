"""The instruction set of the repro register machine.

Opcodes mirror the Dalvik shapes that matter to BombDroid's analysis:
the qualified-condition finder looks for ``IF_EQ``/``IF_NE``/
``IF_EQZ``/``IF_NEZ``/``SWITCH`` (the paper's ``IFEQ``, ``IFNE``,
``IF_ICMPEQ``, ``IF_ICMPNE``, ``TABLESWITCH``), and the instrumenter
splices around them.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Every opcode understood by the interpreter and serializer."""

    # -- data movement ----------------------------------------------------
    NOP = "nop"
    CONST = "const"          # dst <- literal (int / bool / str / bytes / null)
    MOVE = "move"            # dst <- src

    # -- arithmetic / logic (register, register) ---------------------------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"              # dst <- -a
    NOT = "not"              # dst <- ~a (ints) / logical not (bools)
    CMP = "cmp"              # dst <- -1/0/1 three-way compare

    # -- arithmetic with a literal operand ----------------------------------
    ADD_LIT = "add_lit"
    SUB_LIT = "sub_lit"
    MUL_LIT = "mul_lit"
    DIV_LIT = "div_lit"
    REM_LIT = "rem_lit"
    AND_LIT = "and_lit"
    OR_LIT = "or_lit"
    XOR_LIT = "xor_lit"

    # -- control flow -------------------------------------------------------
    GOTO = "goto"
    IF_EQ = "if_eq"          # if a == b goto target
    IF_NE = "if_ne"
    IF_LT = "if_lt"
    IF_GE = "if_ge"
    IF_GT = "if_gt"
    IF_LE = "if_le"
    IF_EQZ = "if_eqz"        # if a == 0/false/null goto target
    IF_NEZ = "if_nez"
    IF_LTZ = "if_ltz"
    IF_GEZ = "if_gez"
    SWITCH = "switch"        # jump via {constant: label} table, else fall through
    RETURN = "return"        # return register a
    RETURN_VOID = "return_void"
    THROW = "throw"          # raise with message in register a

    # -- objects and fields --------------------------------------------------
    NEW_INSTANCE = "new_instance"  # dst <- new <value: class name>
    IGET = "iget"            # dst <- obj.a [field <value>]
    IPUT = "iput"            # obj.b [field <value>] <- a
    SGET = "sget"            # dst <- static field <value: "Class.field">
    SPUT = "sput"            # static field <value> <- a

    # -- arrays ----------------------------------------------------------------
    NEW_ARRAY = "new_array"  # dst <- new array of length in a
    AGET = "aget"            # dst <- arr[a=arr reg][b=index reg]
    APUT = "aput"            # arr[b=index] <- a  (dst = array register)
    ARRAY_LEN = "array_len"  # dst <- len(a)

    # -- invocation ---------------------------------------------------------------
    INVOKE = "invoke"        # dst? <- call <value: "Class.method">(args...)

    # -- pseudo --------------------------------------------------------------------
    LABEL = "label"          # branch target marker; no runtime effect


#: Two-register equality-shaped branches -- candidate qualified conditions
#: when one side is a constant.
EQUALITY_BRANCHES = frozenset({Op.IF_EQ, Op.IF_NE})

#: One-register zero tests; qualified when the register holds the result
#: of an equality-style comparison or a boolean constant assignment.
ZERO_BRANCHES = frozenset({Op.IF_EQZ, Op.IF_NEZ, Op.IF_LTZ, Op.IF_GEZ})

#: All conditional branches.
CONDITIONAL_BRANCHES = frozenset(
    {
        Op.IF_EQ,
        Op.IF_NE,
        Op.IF_LT,
        Op.IF_GE,
        Op.IF_GT,
        Op.IF_LE,
        Op.IF_EQZ,
        Op.IF_NEZ,
        Op.IF_LTZ,
        Op.IF_GEZ,
    }
)

#: Instructions that terminate a basic block.
TERMINATORS = frozenset(
    CONDITIONAL_BRANCHES | {Op.GOTO, Op.SWITCH, Op.RETURN, Op.RETURN_VOID, Op.THROW}
)

#: Instructions that never fall through to the next instruction.
UNCONDITIONAL_EXITS = frozenset({Op.GOTO, Op.RETURN, Op.RETURN_VOID, Op.THROW})

#: Register-register arithmetic opcodes, keyed for the builder/assembler.
BINOPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.CMP}
)

#: Register-literal arithmetic opcodes.
LIT_BINOPS = frozenset(
    {Op.ADD_LIT, Op.SUB_LIT, Op.MUL_LIT, Op.DIV_LIT, Op.REM_LIT, Op.AND_LIT, Op.OR_LIT, Op.XOR_LIT}
)

_BY_MNEMONIC = {op.value: op for op in Op}


def from_mnemonic(name: str) -> Op:
    """Look up an opcode by its assembly mnemonic."""
    try:
        return _BY_MNEMONIC[name]
    except KeyError:
        raise KeyError(f"unknown mnemonic {name!r}") from None
