"""Content hashing of individual methods.

Used from both sides of the code-scanning detection: BombDroid computes
the expected hash of a pinned method at instrumentation time, and the
``android.pm.get_method_hash`` framework call computes the live hash of
the loaded method at runtime.  Both must agree bit-for-bit, so the
logic lives here once.
"""

from __future__ import annotations

from repro.crypto import sha1_hex
from repro.dex.model import DexClass, DexFile, DexMethod
from repro.dex.serializer import serialize_dex


def method_instruction_hash(method: DexMethod) -> str:
    """SHA-1 hex over a canonical serialization of the method body."""
    shell = DexFile()
    cls = DexClass(name="H")
    clone = DexMethod(
        name="m",
        class_name="H",
        params=method.params,
        registers=method.registers,
        instructions=list(method.instructions),
    )
    cls.add_method(clone)
    shell.add_class(cls)
    return sha1_hex(serialize_dex(shell))
