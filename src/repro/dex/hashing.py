"""Content hashing of individual methods.

Used from both sides of the code-scanning detection: BombDroid computes
the expected hash of a pinned method at instrumentation time, and the
``android.pm.get_method_hash`` framework call computes the live hash of
the loaded method at runtime.  Both must agree bit-for-bit, so the
logic lives here once.

:func:`method_shape_hash` is the mesh-guard variant: it masks the
*values* of bytes constants (bomb ciphertexts) so that two bombs can
pin each other's host methods without a circular dependency -- bomb A's
expected digest of B's method must not change when B's ciphertext is
rebuilt to embed a digest of A.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.crypto import sha1_hex
from repro.dex.model import DexClass, DexFile, DexMethod
from repro.dex.opcodes import Op
from repro.dex.serializer import serialize_dex

#: Stand-in value for masked bytes constants in :func:`method_shape_hash`.
_MASKED_BYTES = b"\x00bytes\x00"


def _method_hash(method: DexMethod, instructions) -> str:
    shell = DexFile()
    cls = DexClass(name="H")
    clone = DexMethod(
        name="m",
        class_name="H",
        params=method.params,
        registers=method.registers,
        instructions=list(instructions),
    )
    cls.add_method(clone)
    shell.add_class(cls)
    return sha1_hex(serialize_dex(shell))


def method_instruction_hash(method: DexMethod) -> str:
    """SHA-1 hex over a canonical serialization of the method body."""
    return _method_hash(method, method.instructions)


def method_shape_hash(method: DexMethod) -> str:
    """SHA-1 hex over the method body with bytes-CONST values masked.

    Every structural property -- opcode sequence, registers, branch
    targets, string/int constants -- is covered; only the *content* of
    bytes constants (payload ciphertexts) is replaced by a fixed
    placeholder.  Rewriting a ciphertext in place therefore preserves
    the shape hash, while stripping a branch, NOPing a prologue or
    removing the ciphertext constant entirely changes it.
    """
    masked = [
        dc_replace(instr, value=_MASKED_BYTES)
        if instr.op is Op.CONST and isinstance(instr.value, bytes)
        else instr
        for instr in method.instructions
    ]
    return _method_hash(method, masked)
