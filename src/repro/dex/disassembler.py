"""Disassembler: the inverse of :mod:`repro.dex.assembler`.

Attackers in :mod:`repro.attacks` "read" app code by disassembling it --
the text-search attack greps disassembly for suspicious API names, and
the round-trip property (``assemble(disassemble(dex)) == dex``) is a
test invariant.
"""

from __future__ import annotations

from typing import List

from repro.dex.instructions import Instr
from repro.dex.model import DexFile, DexMethod
from repro.dex.opcodes import BINOPS, LIT_BINOPS, Op


def format_literal(value) -> str:
    """Render a literal in assembler syntax."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, bytes):
        return f"hex:{value.hex().upper()}"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    raise TypeError(f"cannot format literal of type {type(value).__name__}")


def format_instr(instr: Instr) -> str:
    """One-line assembler text for an instruction."""
    op = instr.op
    if op is Op.LABEL:
        return f"@{instr.value}:"
    if op is Op.NOP:
        return "nop"
    if op is Op.CONST:
        return f"const r{instr.dst}, {format_literal(instr.value)}"
    if op is Op.MOVE:
        return f"move r{instr.dst}, r{instr.a}"
    if op in BINOPS:
        return f"{op.value} r{instr.dst}, r{instr.a}, r{instr.b}"
    if op in LIT_BINOPS:
        return f"{op.value} r{instr.dst}, r{instr.a}, {instr.value}"
    if op in (Op.NEG, Op.NOT):
        return f"{op.value} r{instr.dst}, r{instr.a}"
    if op is Op.GOTO:
        return f"goto @{instr.target}"
    if op in (Op.IF_EQ, Op.IF_NE, Op.IF_LT, Op.IF_GE, Op.IF_GT, Op.IF_LE):
        return f"{op.value} r{instr.a}, r{instr.b}, @{instr.target}"
    if op in (Op.IF_EQZ, Op.IF_NEZ, Op.IF_LTZ, Op.IF_GEZ):
        return f"{op.value} r{instr.a}, @{instr.target}"
    if op is Op.SWITCH:
        entries = ", ".join(
            f"{format_literal(key)} -> @{target}" for key, target in instr.value.items()
        )
        return f"switch r{instr.a}, {{{entries}}}"
    if op is Op.RETURN:
        return f"return r{instr.a}"
    if op is Op.RETURN_VOID:
        return "return_void"
    if op is Op.THROW:
        return f"throw r{instr.a}"
    if op is Op.NEW_INSTANCE:
        return f"new_instance r{instr.dst}, {instr.value}"
    if op is Op.IGET:
        return f"iget r{instr.dst}, r{instr.a}, {instr.value}"
    if op is Op.IPUT:
        return f"iput r{instr.a}, r{instr.b}, {instr.value}"
    if op is Op.SGET:
        return f"sget r{instr.dst}, {instr.value}"
    if op is Op.SPUT:
        return f"sput r{instr.a}, {instr.value}"
    if op is Op.NEW_ARRAY:
        return f"new_array r{instr.dst}, r{instr.a}"
    if op is Op.AGET:
        return f"aget r{instr.dst}, r{instr.a}, r{instr.b}"
    if op is Op.APUT:
        return f"aput r{instr.a}, r{instr.dst}, r{instr.b}"
    if op is Op.ARRAY_LEN:
        return f"array_len r{instr.dst}, r{instr.a}"
    if op is Op.INVOKE:
        dst = f"r{instr.dst}" if instr.dst is not None else "_"
        parts = [dst, str(instr.value)] + [f"r{r}" for r in instr.args]
        return "invoke " + ", ".join(parts)
    raise TypeError(f"cannot format opcode {op!r}")


def disassemble_method(method: DexMethod, indent: str = "    ") -> str:
    """Instruction listing for one method (labels unindented)."""
    lines: List[str] = []
    for instr in method.instructions:
        text = format_instr(instr)
        lines.append(text if instr.op is Op.LABEL else indent + text)
    return "\n".join(lines)


def disassemble(dex: DexFile) -> str:
    """Full ``.class``/``.method`` listing for a DexFile."""
    lines: List[str] = []
    for class_name in sorted(dex.classes):
        cls = dex.classes[class_name]
        lines.append(f".class {cls.name}")
        for field in cls.fields.values():
            static = " static" if field.static else ""
            initial = "" if field.initial is None else f" {format_literal(field.initial)}"
            lines.append(f".field {field.name}{static}{initial}")
        for method_name in sorted(cls.methods):
            method = cls.methods[method_name]
            lines.append(f".method {method.name} {method.params}")
            lines.append(disassemble_method(method))
            lines.append(".end")
        lines.append("")
    return "\n".join(lines)
