"""repro: a reproduction of BombDroid (CGO 2018).

"Resilient Decentralized Android Application Repackaging Detection
Using Logic Bombs" -- Zeng, Luo, Qian, Du, Li.

Quickstart::

    from repro import BombDroid, BombDroidConfig, build_named_app, repackage
    from repro.crypto import RSAKeyPair

    bundle = build_named_app("AndroFish")
    protected, report = BombDroid(BombDroidConfig(seed=1)).protect(
        bundle.apk, bundle.developer_key
    )
    pirated = repackage(protected, RSAKeyPair.generate(seed=666))
    # install `pirated` into a Runtime on a sampled user device and
    # watch runtime.detections fill up.

Package map (see DESIGN.md for the full inventory):

``repro.crypto``    SHA-1 / AES-128 / RSA / salted KDF
``repro.dex``       the register-based bytecode substrate
``repro.vm``        interpreter, devices, events, Android API surface
``repro.apk``       packaging, signing, manifest digests, steganography
``repro.analysis``  CFG/loops/QCs/entropy/slicing/profiling
``repro.core``      BombDroid itself (+ SSN and naive baselines)
``repro.fuzzing``   Monkey / PUMA / AndroidHooker / Dynodroid models
``repro.repack``    the adversary's repackaging pipeline
``repro.attacks``   the full adversary-analysis suite
``repro.corpus``    synthetic app generator + the eight named apps
``repro.userside``  user-population simulation, aggregation, app market
``repro.reporting`` signed detection reports: wire format, client,
                    sharded ingestion server, fleet driver, metrics
"""

from repro.core import BombDroid, BombDroidConfig
from repro.corpus import build_app, build_named_app, generate_corpus
from repro.repack import repackage, resign_only

__version__ = "1.0.0"

__all__ = [
    "BombDroid",
    "BombDroidConfig",
    "build_app",
    "build_named_app",
    "generate_corpus",
    "repackage",
    "resign_only",
    "__version__",
]
