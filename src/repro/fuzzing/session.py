"""Fuzzing sessions: play a generator against an installed app.

A session owns the app lifecycle the way a fuzzing harness does: boot
the app, inject events, restart the process after a crash (state is
reset, the clock is not), and keep aggregate bomb statistics across
restarts -- the attacker observes the union of everything any run
triggered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.dex.model import DexFile
from repro.errors import MethodNotFound, VMError
from repro.fuzzing.generators import EventGenerator
from repro.vm.device import DeviceProfile
from repro.vm.events import Event
from repro.vm.interpreter import CoverageTracer
from repro.vm.runtime import InstalledPackage, Runtime


@dataclass
class SessionResult:
    """Outcome of one fuzzing session."""

    events_played: int
    wasted_events: int
    crashes: int
    coverage: float
    #: union across restarts of bomb ids per lifecycle kind
    bombs_evaluated: Set[str] = field(default_factory=set)
    bombs_outer_satisfied: Set[str] = field(default_factory=set)
    bombs_inner_met: Set[str] = field(default_factory=set)
    bombs_detected: Set[str] = field(default_factory=set)
    bombs_responded: Set[str] = field(default_factory=set)
    bombs_mesh_tripped: Set[str] = field(default_factory=set)
    #: (clock_seconds, bomb_id) of first full trigger per bomb
    trigger_times: Dict[str, float] = field(default_factory=dict)
    #: sampled (elapsed_seconds, cumulative_fully_triggered) curve
    trigger_curve: List[tuple] = field(default_factory=list)


class FuzzSession:
    """Drives one app on one device with one generator."""

    def __init__(
        self,
        dex: DexFile,
        generator: EventGenerator,
        device: DeviceProfile,
        package: Optional[InstalledPackage] = None,
        seed: int = 0,
        event_budget: int = 200_000,
    ) -> None:
        self._dex = dex
        self._generator = generator
        self._device = device
        self._package = package
        self._seed = seed
        self._event_budget = event_budget
        self._runtime: Optional[Runtime] = None
        self._coverage = CoverageTracer()
        self._result = SessionResult(events_played=0, wasted_events=0, crashes=0, coverage=0.0)

    @property
    def runtime(self) -> Runtime:
        if self._runtime is None:
            self._runtime = self._fresh_runtime()
        return self._runtime

    def _fresh_runtime(self) -> Runtime:
        runtime = Runtime(
            self._dex,
            device=self._device,
            package=self._package,
            seed=self._seed,
            tracers=[self._coverage],
        )
        try:
            runtime.boot(budget=self._event_budget)
        except VMError:
            self._result.crashes += 1
        return runtime

    def run_for(
        self,
        duration_seconds: float,
        sample_every: float = 60.0,
        on_sample=None,
    ) -> SessionResult:
        """Inject events until ``duration_seconds`` of simulated time pass.

        ``on_sample(runtime, elapsed)`` is called every ``sample_every``
        simulated seconds -- the field-entropy profiler hooks in here.
        """
        runtime = self.runtime
        start_clock = runtime.device.clock
        next_sample = sample_every
        iterator = self._generator.events()

        while runtime.device.clock - start_clock < duration_seconds:
            event = next(iterator)
            before_cov = len(self._coverage.visited)
            try:
                runtime.dispatch(event, budget=self._event_budget)
                self._result.events_played += 1
            except MethodNotFound:
                # Blind injection (Monkey) on a class with no handler.
                runtime.device.advance(Event.DURATION)
                self._result.wasted_events += 1
            except VMError:
                self._result.events_played += 1
                self._result.crashes += 1
                self._harvest(runtime)
                clock = runtime.device.clock
                self._runtime = runtime = self._fresh_runtime()
                runtime.device.clock = clock
            self._generator.notify_coverage(event, len(self._coverage.visited) - before_cov)

            elapsed = runtime.device.clock - start_clock
            if elapsed >= next_sample:
                self._harvest(runtime)
                self._result.trigger_curve.append(
                    (elapsed, len(self._result.trigger_times))
                )
                if on_sample is not None:
                    on_sample(runtime, elapsed)
                next_sample += sample_every

        self._harvest(runtime)
        self._result.coverage = self._coverage.instruction_coverage_of(self._dex)
        return self._result

    def _harvest(self, runtime: Runtime) -> None:
        """Fold the runtime's bomb registry into the session result."""
        result = self._result
        registry = runtime.bombs
        result.bombs_evaluated |= registry.bombs_with("evaluated")
        result.bombs_outer_satisfied |= registry.bombs_with("outer_satisfied")
        result.bombs_inner_met |= registry.bombs_with("inner_met")
        result.bombs_detected |= registry.bombs_with("detected")
        result.bombs_responded |= registry.bombs_with("responded")
        result.bombs_mesh_tripped |= registry.bombs_with("mesh_tripped")
        for (bomb_id, kind), clock in registry.first_by_bomb.items():
            if kind == "inner_met" and bomb_id not in result.trigger_times:
                result.trigger_times[bomb_id] = clock
