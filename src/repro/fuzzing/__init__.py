"""Event-stream fuzzers: Monkey, PUMA, AndroidHooker, Dynodroid.

These serve two masters, exactly as in the paper:

* BombDroid itself uses a Dynodroid-style driver for hot-method and
  field-entropy profiling (Section 7.1);
* the attacker uses all four as blackbox-fuzzing attacks (Table 4,
  Figure 5).

Each generator produces :class:`repro.vm.events.Event` streams with a
distinct selection strategy; :class:`FuzzSession` plays a stream
against an installed app for a simulated duration, restarting on
crashes, and reports coverage plus bomb statistics.
"""

from repro.fuzzing.generators import (
    EventGenerator,
    MonkeyGenerator,
    PumaGenerator,
    AndroidHookerGenerator,
    DynodroidGenerator,
    GENERATORS,
)
from repro.fuzzing.session import FuzzSession, SessionResult

__all__ = [
    "EventGenerator",
    "MonkeyGenerator",
    "PumaGenerator",
    "AndroidHookerGenerator",
    "DynodroidGenerator",
    "GENERATORS",
    "FuzzSession",
    "SessionResult",
]
