"""The four fuzzer models.

Strategies (calibrated to reproduce the Table 4 ordering, where
Dynodroid > PUMA ≈ AndroidHooker > Monkey):

``Monkey``         fires uniformly random events at random coordinates
                   without consulting the UI model; many events land on
                   handlers that don't exist and are wasted.
``PUMA``           programmable UI automation: only fires events some
                   handler listens to, cycling through screens.
``AndroidHooker``  hook-assisted random exerciser: knows the declared
                   handlers and the menu/key alphabets, weights toward
                   interactive kinds.
``Dynodroid``      "observe-select-execute": tracks which (kind, class)
                   pairs produced new coverage recently and biases
                   selection toward under-exercised handlers; also
                   harvests string constants it has seen the app compare
                   against (a light taint feedback), making it the best
                   of the four.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dex.model import DexFile
from repro.dex.opcodes import Op
from repro.vm.events import ARITY, Event, EventKind, declared_events, random_args


class EventGenerator:
    """Base class: an infinite stream of events for one app."""

    name = "base"

    def __init__(self, dex: DexFile, seed: int = 0) -> None:
        self.dex = dex
        self.rng = random.Random(seed)
        self.declared: List[Tuple[EventKind, str]] = declared_events(dex)
        self.classes: List[str] = sorted(dex.classes)

    def events(self) -> Iterator[Event]:
        raise NotImplementedError

    def stream(self, count: int) -> List[Event]:
        """Materialize ``count`` events."""
        iterator = self.events()
        return [next(iterator) for _ in range(count)]

    def notify_coverage(self, event: Event, new_coverage: int) -> None:
        """Feedback hook; only Dynodroid uses it."""

    def notify_observed_strings(self, strings: Sequence[str]) -> None:
        """Feedback hook for harvested comparison constants."""


class MonkeyGenerator(EventGenerator):
    """UI/Application Exerciser Monkey: blind uniform random.

    Two modeled weaknesses: it does not know which class is on screen
    (blind taps land on handlers that do not exist and are wasted), and
    it does not understand input *structure* -- its text is keystroke
    gibberish rather than meaningful tokens, and its "menu selections"
    are raw coordinates that rarely map to a real item.
    """

    name = "monkey"

    _GIBBERISH = "abcdefghijklmnopqrstuvwxyz0123456789 "

    #: Pseudo-targets for taps that land on decorations, the status bar,
    #: dead whitespace...  Most of a screen is not a reactive widget.
    _DEAD_SURFACE = ("__decor__", "__statusbar__", "__background__")

    def events(self) -> Iterator[Event]:
        kinds = list(EventKind)
        while True:
            kind = self.rng.choice(kinds)
            target = self.rng.choice(self.classes + list(self._DEAD_SURFACE))
            yield Event(kind, target, self._blind_args(kind))

    def _blind_args(self, kind: EventKind):
        if kind is EventKind.TEXT:
            length = self.rng.randrange(1, 9)
            return ("".join(self.rng.choice(self._GIBBERISH) for _ in range(length)),)
        if kind is EventKind.MENU:
            # A random screen position seldom lands on a menu item.
            return (self.rng.randrange(0, 64),)
        return random_args(kind, self.rng)


class PumaGenerator(EventGenerator):
    """PUMA: drives only declared handlers, breadth-first over screens."""

    name = "puma"

    def events(self) -> Iterator[Event]:
        if not self.declared:
            raise ValueError("app declares no event handlers")
        while True:
            order = list(self.declared)
            self.rng.shuffle(order)
            for kind, target in order:
                yield Event(kind, target, random_args(kind, self.rng))


class AndroidHookerGenerator(EventGenerator):
    """AndroidHooker: declared handlers, weighted toward interaction."""

    name = "androidhooker"

    _WEIGHTS = {
        EventKind.TOUCH: 5,
        EventKind.TEXT: 3,
        EventKind.MENU: 3,
        EventKind.KEY: 3,
        EventKind.LONG_PRESS: 1,
        EventKind.SCROLL: 2,
        EventKind.BACK: 1,
        EventKind.TICK: 2,
        EventKind.SENSOR: 1,
    }

    def events(self) -> Iterator[Event]:
        if not self.declared:
            raise ValueError("app declares no event handlers")
        weights = [self._WEIGHTS[kind] for kind, _ in self.declared]
        while True:
            kind, target = self.rng.choices(self.declared, weights=weights, k=1)[0]
            yield Event(kind, target, random_args(kind, self.rng))


class DynodroidGenerator(EventGenerator):
    """Dynodroid: frequency-biased selection plus harvested strings."""

    name = "dynodroid"

    def __init__(self, dex: DexFile, seed: int = 0) -> None:
        super().__init__(dex, seed)
        self._fired: Dict[Tuple[EventKind, str], int] = {
            pair: 0 for pair in self.declared
        }
        self._rewarded: Dict[Tuple[EventKind, str], int] = {
            pair: 1 for pair in self.declared
        }
        self._harvested: List[str] = self._harvest_string_constants(dex)
        self._last: Optional[Tuple[EventKind, str]] = None
        self._last_event: Optional[Event] = None
        #: Events that produced new coverage; Dynodroid's
        #: observe-select-execute loop replays mutations of them.
        self._productive: List[Event] = []

    @staticmethod
    def _harvest_string_constants(dex: DexFile) -> List[str]:
        """String constants visible in code -- Dynodroid seeds text
        inputs from observed app data."""
        seen = []
        for method in dex.iter_methods():
            for instr in method.instructions:
                if instr.op is Op.CONST and isinstance(instr.value, str):
                    if 0 < len(instr.value) <= 24:
                        seen.append(instr.value)
        return sorted(set(seen))

    def events(self) -> Iterator[Event]:
        if not self.declared:
            raise ValueError("app declares no event handlers")
        while True:
            # Exploit: replay a mutation of an input that reached new
            # code -- this is what drives deep conditions.
            if self._productive and self.rng.random() < 0.25:
                event = self._mutate(self.rng.choice(self._productive))
                self._last = (event.kind, event.target_class)
                self._last_event = event
                self._fired[self._last] = self._fired.get(self._last, 0) + 1
                yield event
                continue
            # Explore: weight = reward / (1 + times fired), favoring
            # under-exercised and productive handlers.
            weights = [
                self._rewarded[pair] / (1.0 + self._fired[pair])
                for pair in self.declared
            ]
            pair = self.rng.choices(self.declared, weights=weights, k=1)[0]
            self._fired[pair] += 1
            self._last = pair
            kind, target = pair
            event = Event(kind, target, self._args_for(kind))
            self._last_event = event
            yield event

    def _mutate(self, event: Event) -> Event:
        """Replay with small integer perturbations (or verbatim)."""
        args = tuple(
            arg + self.rng.randrange(-2, 3) if isinstance(arg, int) and not isinstance(arg, bool)
            else arg
            for arg in event.args
        )
        try:
            return Event(event.kind, event.target_class, args)
        except ValueError:  # pragma: no cover - arity never changes
            return event

    def _args_for(self, kind: EventKind) -> Tuple:
        if kind is EventKind.TEXT and self._harvested and self.rng.random() < 0.5:
            return (self.rng.choice(self._harvested),)
        return random_args(kind, self.rng)

    def notify_coverage(self, event: Event, new_coverage: int) -> None:
        if self._last is not None and new_coverage > 0:
            self._rewarded[self._last] = (
                self._rewarded.get(self._last, 1) + new_coverage
            )
            if self._last_event is not None:
                self._productive.append(self._last_event)
                if len(self._productive) > 64:
                    self._productive.pop(0)

    def notify_observed_strings(self, strings: Sequence[str]) -> None:
        merged = set(self._harvested) | {s for s in strings if 0 < len(s) <= 64}
        self._harvested = sorted(merged)


#: Registry used by the Table 4 harness.
GENERATORS = {
    cls.name: cls
    for cls in (MonkeyGenerator, PumaGenerator, AndroidHookerGenerator, DynodroidGenerator)
}
