"""The runtime: class loading, static state, installation, bomb stats.

One :class:`Runtime` is one app process on one device.  It owns:

* the loaded code (the app's DexFile plus any dynamically loaded bomb
  payload blobs, cached by digest),
* static field storage,
* the installed-package context (certificate fingerprint, MANIFEST.MF
  digests, resources) that the Android system would manage,
* observable effects (logs, UI effects, developer reports),
* the :class:`BombRegistry` the evaluation reads, and
* the cost-unit counter used for the overhead experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.faults import fault_point
from repro.crypto import sha1
from repro.dex.model import DexFile, DexMethod
from repro.dex.serializer import deserialize_dex
from repro.errors import DexError, DexFormatError, MethodNotFound, VMCrash
from repro.vm.containment import CircuitBreaker, ContainmentPolicy
from repro.vm.device import DeviceProfile, DevicePopulation
from repro.vm.events import Event, handler_name_for
from repro.vm.framework import Framework
from repro.vm.interpreter import CompositeTracer, Interpreter
from repro.vm.sessions import ExecutionContext, _UNSET
from repro.vm.values import Instance


@dataclass
class InstalledPackage:
    """What the Android system retains about an installed app.

    Produced by :meth:`repro.apk.Apk.install_view`; app processes can
    read but never modify it (threat-model assumption for non-jailbroken
    user devices).
    """

    cert_fingerprint_hex: str
    manifest_digests: Dict[str, str]
    resources: Dict[str, str]
    code_blob: bytes


@dataclass
class BombEvent:
    """One recorded bomb lifecycle event."""

    clock: float
    bomb_id: str
    kind: str


class BombRegistry:
    """Collects bomb lifecycle events for the evaluation harness.

    Kinds: ``evaluated`` (outer condition hashed), ``outer_satisfied``
    (payload decrypted), ``payload_run``, ``inner_met``, ``detected``,
    ``responded``.  In a production build these markers would not exist;
    they are the measurement channel for Tables 3-5 and Figures 4-5.
    """

    def __init__(self, runtime: "Runtime") -> None:
        self._runtime = runtime
        self.events: List[BombEvent] = []
        self.counts: Dict[str, Dict[str, int]] = {}
        #: first clock per event kind, and per (bomb, kind) -- kept
        #: incrementally so hot measurement loops stay O(1).
        self.first_times: Dict[str, float] = {}
        self.first_by_bomb: Dict[tuple, float] = {}

    def record(self, bomb_id: str, kind: str) -> None:
        clock = self._runtime.device.clock
        self.events.append(BombEvent(clock, bomb_id, kind))
        per_bomb = self.counts.setdefault(bomb_id, {})
        per_bomb[kind] = per_bomb.get(kind, 0) + 1
        self.first_times.setdefault(kind, clock)
        self.first_by_bomb.setdefault((bomb_id, kind), clock)

    def bombs_with(self, kind: str) -> set:
        """Set of bomb ids that ever recorded ``kind``."""
        return {bomb_id for bomb_id, kinds in self.counts.items() if kind in kinds}

    def first_time_of(self, kind: str) -> Optional[float]:
        """Clock of the first event of ``kind``, or None."""
        return self.first_times.get(kind)

    def count(self, kind: str) -> int:
        return sum(kinds.get(kind, 0) for kinds in self.counts.values())

    def merge_from(self, other: "BombRegistry") -> None:
        """Fold another registry's history into this one (app restarts)."""
        self.events.extend(other.events)
        for bomb_id, kinds in other.counts.items():
            mine = self.counts.setdefault(bomb_id, {})
            for kind, count in kinds.items():
                mine[kind] = mine.get(kind, 0) + count
        for kind, clock in other.first_times.items():
            if kind not in self.first_times or clock < self.first_times[kind]:
                self.first_times[kind] = clock
        for key, clock in other.first_by_bomb.items():
            if key not in self.first_by_bomb or clock < self.first_by_bomb[key]:
                self.first_by_bomb[key] = clock


class Runtime:
    """One app process."""

    def __init__(
        self,
        dex: DexFile,
        device: DeviceProfile = None,
        package: InstalledPackage = None,
        seed: int = 0,
        default_budget: int = 2_000_000,
        tracer=None,
        report_client=None,
        containment: Optional[ContainmentPolicy] = None,
        tracers=(),
        engine: str = "table",
    ) -> None:
        self.device = device or DevicePopulation(seed=seed).sample()
        self.package = package
        self.rng = random.Random(seed)
        self.default_budget = default_budget
        #: Registered tracers, all observing through one effective hook
        #: (None / the single tracer / a CompositeTracer) so the
        #: interpreter keeps its single-attribute fast path.
        self._tracers: List = []
        self._effective_tracer = None
        if tracer is not None:
            self.add_tracer(tracer)
        for extra in tracers:
            self.add_tracer(extra)
        #: Optional repro.reporting.ReportClient; when set, REPORT
        #: responses flow through the signed wire channel as well as the
        #: local `reports` list the evaluation harness reads.
        self.report_client = report_client
        #: Optional ContainmentPolicy; when set, bomb-infrastructure
        #: failures are contained at the ``bomb.*`` boundary instead of
        #: crashing the host (see repro.vm.containment).
        self.containment = containment
        self.breaker = CircuitBreaker(
            containment.max_consecutive_failures if containment else 0
        )

        self.statics: Dict[str, object] = {}
        self._methods: Dict[str, DexMethod] = {}
        self._blob_cache: Dict[bytes, DexFile] = {}
        #: Bumped on every load_dex commit; guards framework-target
        #: inline caches (a later payload class may shadow a name that
        #: previously resolved to the framework).
        self._methods_gen = 0
        #: (post-fault blob bytes, qualified name) -> method, so warm
        #: bomb.load_run firings skip the pure-Python SHA-1 digest.
        #: Success-only: failing paths keep their original semantics.
        self._method_memo: Dict[tuple, DexMethod] = {}

        self.logs: List[str] = []
        self.ui_effects: List[tuple] = []
        self.reports: List[str] = []
        self.reflection_log: List[str] = []
        self.detections: List[str] = []
        self.cost_units = 0

        self.bombs = BombRegistry(self)
        self.framework = Framework(self)
        if engine == "table":
            self.interpreter = Interpreter(self)
        elif engine == "reference":
            from repro.vm.reference import ReferenceInterpreter

            self.interpreter = ReferenceInterpreter(self)
        else:
            raise ValueError(
                f"unknown engine {engine!r} (expected 'table' or 'reference')"
            )
        self.engine = engine

        self.load_dex(dex)
        self.app_dex = dex

    # -- tracers --------------------------------------------------------------

    @property
    def tracer(self):
        """The effective tracer the interpreter observes through:
        None, the single registered tracer, or a CompositeTracer."""
        return self._effective_tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # Compatibility with save/swap/restore call sites: assigning
        # replaces the whole registration set.
        self._tracers = [] if value is None else [value]
        self._rebuild_tracer()

    @property
    def tracers(self) -> tuple:
        return tuple(self._tracers)

    def add_tracer(self, tracer) -> None:
        self._tracers.append(tracer)
        self._rebuild_tracer()

    def remove_tracer(self, tracer) -> None:
        self._tracers.remove(tracer)
        self._rebuild_tracer()

    def _rebuild_tracer(self) -> None:
        ts = self._tracers
        if not ts:
            self._effective_tracer = None
        elif len(ts) == 1:
            self._effective_tracer = ts[0]
        else:
            self._effective_tracer = CompositeTracer(ts)

    # -- class loading --------------------------------------------------------

    def load_dex(self, dex: DexFile, origin: str = "app") -> None:
        """Register a DexFile's classes: methods and static fields.

        Registration is two-phase: every qualified name is checked for
        collisions against the already-loaded set *before* anything is
        committed, so a hostile payload can neither shadow an app method
        nor leave the method table half-polluted on failure.
        """
        incoming = []
        for cls in dex.classes.values():
            for method in cls.methods.values():
                existing = self._methods.get(method.qualified_name)
                if existing is not None and existing is not method:
                    raise VMCrash(
                        f"{origin} redefines {method.qualified_name!r} "
                        "(dynamic code may not shadow loaded methods)",
                        site="vm.classload",
                    )
                incoming.append(method)
        for method in incoming:
            self._methods[method.qualified_name] = method
        self._methods_gen += 1
        for cls in dex.classes.values():
            for f in cls.static_fields():
                key = f"{cls.name}.{f.name}"
                self.statics.setdefault(key, f.initial)

    def load_blob_method(
        self, blob: bytes, qualified_name: str, bomb_id: str = None
    ) -> DexMethod:
        """Dynamically load a serialized dex blob (decrypted payload) and
        return the requested method.  Cached by content digest.

        Validation happens *before* the blob is cached or its classes
        registered: a payload that parses but lacks the entry method (or
        collides with a loaded name) leaves ``_methods``/``statics``
        untouched.
        """
        blob = fault_point("dex.deserialize", blob, device=self.device)
        memoized = self._method_memo.get((blob, qualified_name))
        if memoized is not None:
            # Warm path: this exact (post-fault) blob already loaded and
            # served this method, so the digest/lookup dance is pure
            # overhead -- bytes-key hashing is far cheaper than the
            # pure-Python SHA-1 the cold path pays.
            return memoized
        digest = sha1(blob)
        dex = self._blob_cache.get(digest)
        if dex is not None:
            try:
                method = dex.get_method(qualified_name)
            except DexError:
                raise VMCrash(
                    f"payload has no method {qualified_name!r}",
                    bomb_id=bomb_id, site="vm.classload",
                ) from None
            self._method_memo[(blob, qualified_name)] = method
            return method
        try:
            dex = deserialize_dex(blob)
        except DexFormatError as exc:
            raise VMCrash(
                f"corrupt payload blob: {exc}",
                bomb_id=bomb_id, site="dex.deserialize",
            ) from None
        try:
            method = dex.get_method(qualified_name)
        except DexError:
            raise VMCrash(
                f"payload has no method {qualified_name!r}",
                bomb_id=bomb_id, site="vm.classload",
            ) from None
        fault_point("vm.classload", device=self.device)
        self.load_dex(dex, origin=f"payload {qualified_name.rsplit('.', 1)[0]}")
        self._blob_cache[digest] = dex
        self._method_memo[(blob, qualified_name)] = method
        return method

    def find_method(self, qualified_name: str) -> Optional[DexMethod]:
        return self._methods.get(qualified_name)

    # -- state ------------------------------------------------------------------

    def sget(self, qualified_field: str):
        try:
            return self.statics[qualified_field]
        except KeyError:
            raise VMCrash(f"no static field {qualified_field!r}") from None

    def sput(self, qualified_field: str, value) -> None:
        if qualified_field not in self.statics:
            raise VMCrash(f"no static field {qualified_field!r}")
        self.statics[qualified_field] = value

    def new_instance(self, class_name: str) -> Instance:
        """Instantiate with instance-field defaults from any loaded dex."""
        for dex in self._all_dexfiles():
            cls = dex.classes.get(class_name)
            if cls is not None:
                fields = {f.name: f.initial for f in cls.fields.values() if not f.static}
                return Instance(class_name, fields)
        raise VMCrash(f"unknown class {class_name!r}")

    def _all_dexfiles(self):
        yield self.app_dex
        yield from self._blob_cache.values()

    def require_package(self, api: str) -> InstalledPackage:
        if self.package is None:
            raise VMCrash(f"{api}: app is not installed (no package context)")
        return self.package

    # -- execution ----------------------------------------------------------------

    def session(
        self, budget: Optional[int] = None, tracers=(), policy=_UNSET
    ) -> ExecutionContext:
        """Open an execution session: one budget, optional extra tracers,
        optional containment-policy override.  The session-API entry
        point -- use ``ctx.invoke(...)`` / ``ctx.dispatch(...)`` /
        ``ctx.run(...)`` for measured calls returning
        :class:`~repro.vm.sessions.SessionResult`."""
        return ExecutionContext(self, budget=budget, tracers=tracers, policy=policy)

    def framework_call(self, name: str, args: List, ctx):
        """Call a framework API; ``ctx`` may be an ExecutionContext or a
        legacy mutable budget list (adopted in place)."""
        return self.framework.call(name, args, ctx)

    def invoke(self, qualified_name: str, args: List = (), budget: int = None):
        """Invoke a method by name (test/fuzzer entry point)."""
        method = self.find_method(qualified_name)
        if method is None:
            raise MethodNotFound(qualified_name)
        tracer = self.tracer
        if tracer is not None:
            tracer.on_invoke(qualified_name, list(args))
        ctx = ExecutionContext(self, budget=budget)
        return self.interpreter.execute(method, list(args), ctx)

    def boot(self, budget: int = None) -> None:
        """Run every class's ``main`` entry (app start), if present."""
        for name in sorted(self._methods):
            if name.endswith(".main") and self._methods[name].params == 0:
                self.invoke(name, (), budget=budget)

    def dispatch(self, event: Event, budget: int = None):
        """Deliver one UI event to its handler and advance the clock.

        Crashes propagate to the caller (the fuzzer harness decides
        whether to restart the app), but time advances either way.
        """
        handler = f"{event.target_class}.{handler_name_for(event.kind)}"
        method = self.find_method(handler)
        if method is None:
            raise MethodNotFound(handler)
        fault_point("vm.clock", device=self.device)
        self.device.advance(Event.DURATION)
        return self.invoke(handler, list(event.args), budget=budget)
