"""Device and environment model.

Inner trigger conditions (paper Section 6) test *environment variables*:
hardware identity (manufacturer, board, MAC, serial...), software
environment (SDK/API level, OS version, IP address) and time/sensor
readings (GPS, light, temperature).  The defense works because these are
wildly diverse across the user population but nearly constant in the
attacker's lab.

This module defines:

* :data:`ENV_DOMAINS` -- every environment variable with its value
  domain; the inner-trigger generator in :mod:`repro.core.inner_triggers`
  reads these to construct conditions with a target satisfaction
  probability, mirroring the paper's use of the Android Dashboards and
  AppBrain statistics;
* :class:`DeviceProfile` -- one concrete device;
* :class:`DevicePopulation` -- a seeded sampler of diverse user devices;
* :func:`attacker_lab_profiles` -- the handful of near-identical
  emulator configurations an attacker actually tests on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import VMCrash

# ---------------------------------------------------------------------------
# Domains.  "choice" domains carry (value, weight) pairs loosely following
# the public manufacturer / platform-version statistics the paper cites
# (AppBrain top-manufacturers, Android Dashboards circa 2017).
# ---------------------------------------------------------------------------

MANUFACTURER_SHARES: Tuple[Tuple[str, float], ...] = (
    ("samsung", 0.315),
    ("huawei", 0.105),
    ("xiaomi", 0.079),
    ("oppo", 0.069),
    ("vivo", 0.053),
    ("lge", 0.043),
    ("motorola", 0.042),
    ("sony", 0.024),
    ("htc", 0.018),
    ("google", 0.015),
    ("oneplus", 0.013),
    ("asus", 0.012),
    ("lenovo", 0.012),
    ("zte", 0.010),
    ("nokia", 0.008),
    ("other", 0.182),
)

SDK_SHARES: Tuple[Tuple[int, float], ...] = (
    (16, 0.017), (17, 0.023), (18, 0.007), (19, 0.120),
    (21, 0.054), (22, 0.168), (23, 0.284), (24, 0.175),
    (25, 0.089), (26, 0.045), (27, 0.018),
)

OS_VERSION_BY_SDK: Dict[int, str] = {
    16: "4.1", 17: "4.2", 18: "4.3", 19: "4.4",
    21: "5.0", 22: "5.1", 23: "6.0", 24: "7.0",
    25: "7.1", 26: "8.0", 27: "8.1",
}

CPU_ABIS: Tuple[Tuple[str, float], ...] = (
    ("arm64-v8a", 0.62),
    ("armeabi-v7a", 0.31),
    ("x86", 0.05),
    ("x86_64", 0.02),
)

DISPLAY_WIDTHS: Tuple[Tuple[int, float], ...] = (
    (480, 0.09), (720, 0.38), (1080, 0.43), (1440, 0.10),
)

FLASH_GB: Tuple[Tuple[int, float], ...] = (
    (8, 0.11), (16, 0.32), (32, 0.34), (64, 0.17), (128, 0.06),
)

COUNTRIES: Tuple[Tuple[str, float], ...] = (
    ("us", 0.16), ("in", 0.14), ("br", 0.08), ("id", 0.07), ("cn", 0.07),
    ("ru", 0.06), ("mx", 0.05), ("de", 0.04), ("jp", 0.04), ("gb", 0.03),
    ("fr", 0.03), ("tr", 0.03), ("kr", 0.02), ("it", 0.02), ("other", 0.16),
)


@dataclass(frozen=True)
class IntDomain:
    """A contiguous integer domain [lo, hi]."""

    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


@dataclass(frozen=True)
class ChoiceDomain:
    """A finite weighted domain."""

    choices: Tuple[Tuple[object, float], ...]

    @property
    def size(self) -> int:
        return len(self.choices)

    def sample(self, rng: random.Random):
        values = [value for value, _ in self.choices]
        weights = [weight for _, weight in self.choices]
        return rng.choices(values, weights=weights, k=1)[0]

    def probability_of(self, predicate) -> float:
        """Total weight of choices matching ``predicate`` (normalized)."""
        total = sum(weight for _, weight in self.choices)
        hit = sum(weight for value, weight in self.choices if predicate(value))
        return hit / total if total else 0.0


#: Every environment variable an inner trigger may test, with its domain.
#: ``time.*`` variables are derived from the simulated clock rather than
#: the device profile; their domains are still listed for the generator.
ENV_DOMAINS: Dict[str, object] = {
    "build.manufacturer": ChoiceDomain(MANUFACTURER_SHARES),
    "build.sdk": ChoiceDomain(SDK_SHARES),
    "build.cpu_abi": ChoiceDomain(CPU_ABIS),
    "build.display_width": ChoiceDomain(DISPLAY_WIDTHS),
    "build.flash_gb": ChoiceDomain(FLASH_GB),
    "build.serial_low": IntDomain(0, 9999),
    "build.mac_octet": IntDomain(0, 255),
    "build.board_rev": IntDomain(1, 40),
    "build.bootloader_rev": IntDomain(1, 60),
    "net.ip_b": IntDomain(0, 255),
    "net.ip_c": IntDomain(0, 255),
    "net.ip_d": IntDomain(1, 254),
    "gps.lat": IntDomain(-90, 90),
    "gps.lon": IntDomain(-180, 180),
    "sensor.light": IntDomain(0, 10000),
    "sensor.temp": IntDomain(-30, 50),
    "locale.country": ChoiceDomain(COUNTRIES),
    "time.hour": IntDomain(0, 23),
    "time.dow": IntDomain(0, 6),
    "time.minute": IntDomain(0, 59),
}

_TIME_VARS = ("time.hour", "time.dow", "time.minute")


@dataclass
class DeviceProfile:
    """One concrete device: a snapshot of every environment variable.

    ``clock`` is the simulated wall-clock in seconds since an epoch;
    handlers advance it as events are played, so time-based inner
    triggers see a moving value.
    """

    env: Dict[str, object]
    clock: float = 0.0
    label: str = "device"

    def get(self, name: str):
        """Read an environment variable (``android.env.get`` backend).

        ``time.*`` derives from the clock; sensor readings drift over
        time (light and temperature change while the user plays --
        that within-session variation is part of why time/sensor inner
        triggers eventually fire on user devices).
        """
        if name == "time.hour":
            return int(self.clock // 3600) % 24
        if name == "time.minute":
            return int(self.clock // 60) % 60
        if name == "time.dow":
            return int(self.clock // 86400) % 7
        if name in ("sensor.light", "sensor.temp"):
            return self._sensor_reading(name)
        try:
            return self.env[name]
        except KeyError:
            raise VMCrash(f"unknown environment variable {name!r}") from None

    def _sensor_reading(self, name: str) -> int:
        """Deterministic per-device sensor value, re-drawn each minute.

        A multiplicative mix (not Python's salted ``hash``) so readings
        are reproducible across processes.
        """
        domain: IntDomain = ENV_DOMAINS[name]
        anchor = self.env.get(name, domain.lo)
        minute = int(self.clock // 60)
        kind = 12345 if name.endswith("temp") else 0
        mix = (
            anchor * 2654435761
            + minute * 40503
            + self.env.get("build.serial_low", 0) * 69069
            + kind
        ) & 0xFFFFFFFF
        return domain.lo + (mix % domain.size)

    def advance(self, seconds: float) -> None:
        self.clock += seconds

    def mutate(self, name: str, value) -> None:
        """Override one variable -- what a human analyst does (§8.3.2)."""
        if name in _TIME_VARS:
            raise VMCrash("mutate the clock, not derived time variables")
        self.env[name] = value

    def copy(self) -> "DeviceProfile":
        return DeviceProfile(env=dict(self.env), clock=self.clock, label=self.label)


class DevicePopulation:
    """Sampler of diverse user devices (difference D1 in the paper)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def sample(self, label: str = None) -> DeviceProfile:
        """Draw one device from the population distributions."""
        rng = self._rng
        env: Dict[str, object] = {}
        for name, domain in ENV_DOMAINS.items():
            if name in _TIME_VARS:
                continue
            env[name] = domain.sample(rng)
        # Start each user's session at a random wall-clock time of week.
        clock = rng.uniform(0, 7 * 86400)
        return DeviceProfile(
            env=env,
            clock=clock,
            label=label or f"user-{rng.randrange(10**6):06d}",
        )

    def sample_many(self, count: int) -> List[DeviceProfile]:
        return [self.sample() for _ in range(count)]


def attacker_lab_profiles(count: int = 4, seed: int = 7) -> List[DeviceProfile]:
    """The attacker's emulator farm: few, near-identical configurations.

    Emulators share the classic ``10.0.2.15`` NAT address, a ``generic``
    manufacturer, x86 ABIs and a couple of SDK levels -- the paper's
    observation D1 is precisely that this set is tiny compared to the
    user population.
    """
    rng = random.Random(seed)
    sdk_options = (23, 24, 25)
    profiles = []
    for index in range(count):
        sdk = sdk_options[index % len(sdk_options)]
        env = {
            "build.manufacturer": "generic",
            "build.sdk": sdk,
            "build.cpu_abi": "x86" if index % 2 == 0 else "x86_64",
            "build.display_width": 1080,
            "build.flash_gb": 16,
            "build.serial_low": 1234,
            "build.mac_octet": 0,
            "build.board_rev": 1,
            "build.bootloader_rev": 1,
            "net.ip_b": 0,
            "net.ip_c": 2,
            "net.ip_d": 15,
            "gps.lat": 37,
            "gps.lon": -122,
            "sensor.light": 300,
            "sensor.temp": 22,
            "locale.country": "us",
        }
        profiles.append(
            DeviceProfile(env=env, clock=rng.uniform(0, 86400), label=f"emulator-{index}")
        )
    return profiles


def iter_env_names() -> Iterator[str]:
    """Environment variable names in stable order."""
    return iter(sorted(ENV_DOMAINS))


def domain_of(name: str):
    try:
        return ENV_DOMAINS[name]
    except KeyError:
        raise KeyError(f"unknown environment variable {name!r}") from None
