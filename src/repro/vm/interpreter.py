"""The bytecode interpreter.

A register machine executing dispatch-table-compiled method bodies
(see :mod:`repro.vm.dispatch`), with:

* 32-bit wrapped integer arithmetic;
* label-based branching (resolved to table indices at compile time);
* an instruction budget so endless-loop responses and runaway code
  surface as :class:`BudgetExhausted` instead of hanging the host;
* pluggable tracers -- the profiler (Traceview stand-in), coverage
  measurement for fuzzers, and the debugging attack all observe
  execution through the same hook, registered via
  ``Runtime.add_tracer`` / the ``tracers=`` session parameter;
* a *cost model*: every instruction costs 1 unit and framework calls
  cost their published weight, giving a deterministic execution-time
  metric for the Table 5 overhead experiment.

Execution happens under an :class:`~repro.vm.sessions.ExecutionContext`
(:meth:`Interpreter.execute` / :meth:`execute_payload`); the historical
``run(method, args, budget=None)`` / ``run_payload(..., budget, policy)``
signatures survive one release as deprecated shims.

The pre-dispatch-table interpreter survives verbatim as
:class:`repro.vm.reference.ReferenceInterpreter` -- the semantic oracle
the differential tests (and the benchmark baseline) run against.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from repro.chaos.faults import fault_point
from repro.dex.model import DexMethod
from repro.errors import BudgetExhausted, VMCrash
from repro.vm.dispatch import _Frame, compile_method
from repro.vm.sessions import ExecutionContext

#: Recursion limit for nested INVOKE frames.
MAX_CALL_DEPTH = 128


class Tracer:
    """Execution observer; subclass and override what you need.

    ``on_instr`` fires before each real instruction, ``on_branch`` after a
    conditional branch decides, ``on_invoke`` when a method or framework
    call begins.
    """

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:  # pragma: no cover
        pass

    def on_branch(self, method: DexMethod, pc: int, instr, taken: bool) -> None:  # pragma: no cover
        pass

    def on_invoke(self, name: str, args: list) -> None:  # pragma: no cover
        pass


class CountingTracer(Tracer):
    """Counts instructions and per-method invocations (Traceview role)."""

    def __init__(self) -> None:
        self.instructions = 0
        self.invocations: Dict[str, int] = {}

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        self.instructions += 1

    def on_invoke(self, name: str, args: list) -> None:
        self.invocations[name] = self.invocations.get(name, 0) + 1


class CoverageTracer(Tracer):
    """Records executed (method, pc) pairs and branch outcomes."""

    def __init__(self) -> None:
        self.visited = set()
        self.branches: Dict[tuple, set] = {}

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        self.visited.add((method.qualified_name, pc))

    def on_branch(self, method: DexMethod, pc: int, instr, taken: bool) -> None:
        self.branches.setdefault((method.qualified_name, pc), set()).add(taken)

    def instruction_coverage_of(self, dex) -> float:
        """Fraction of real instructions of ``dex`` ever executed."""
        total = dex.instruction_count()
        if total == 0:
            return 0.0
        executed = len(self.visited)
        return min(1.0, executed / total)


class CompositeTracer(Tracer):
    """Fans every hook out to child tracers, in registration order.

    ``Runtime.tracer`` returns one of these when more than one tracer
    is registered, so the interpreter's single-tracer fast path is
    preserved no matter how many observers attach.
    """

    def __init__(self, children=()) -> None:
        self.children: List[Tracer] = list(children)

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        for child in self.children:
            child.on_instr(method, pc, instr)

    def on_branch(self, method: DexMethod, pc: int, instr, taken: bool) -> None:
        for child in self.children:
            child.on_branch(method, pc, instr, taken)

    def on_invoke(self, name: str, args: list) -> None:
        for child in self.children:
            child.on_invoke(name, args)


class _EngineBase:
    """Shared entry points of the table and reference interpreters."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime

    def execute(self, method: DexMethod, args: List, ctx: ExecutionContext, depth: int = 0):
        raise NotImplementedError

    def execute_payload(self, method: DexMethod, args: List, ctx: ExecutionContext, policy):
        """Run a bomb payload frame, under a sub-budget when contained.

        Without a containment ``policy`` this is exactly the shared-
        budget frame run the instrumented INVOKE would have made.  With
        one, the payload gets ``min(remaining, policy.payload_budget)``
        instructions of its own (the ``vm.budget`` fault site can clamp
        it further); whatever it consumes is still charged to the host
        budget, but a payload that spins can no longer drain the host.
        """
        if policy is None:
            return self.execute(method, args, ctx, depth=1)
        budget = ctx.budget
        cap = fault_point("vm.budget", min(budget[0], policy.payload_budget))
        sub = ExecutionContext.adopt(self._runtime, [cap])
        try:
            return self.execute(method, args, sub, depth=1)
        finally:
            budget[0] -= cap - sub.budget[0]

    # -- deprecated pre-session-API shims (one release) --------------------

    def run(self, method: DexMethod, args: List, budget: Optional[int] = None, depth: int = 0):
        """Deprecated: use ``Runtime.session(...)`` / :meth:`execute`."""
        warnings.warn(
            "Interpreter.run(method, args, budget=...) is deprecated; "
            "use Runtime.session(budget=...).run(method, args) or "
            "Interpreter.execute(method, args, ctx)",
            DeprecationWarning,
            stacklevel=2,
        )
        cell = [budget if budget is not None else self._runtime.default_budget]
        return self.execute(method, args, ExecutionContext.adopt(self._runtime, cell), depth)

    def run_payload(self, method: DexMethod, args: List, budget: List[int], policy):
        """Deprecated: use :meth:`execute_payload` with an ExecutionContext."""
        warnings.warn(
            "Interpreter.run_payload(method, args, budget, policy) is "
            "deprecated; use Interpreter.execute_payload(method, args, ctx, "
            "policy)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute_payload(
            method, args, ExecutionContext.adopt(self._runtime, budget), policy
        )


class Interpreter(_EngineBase):
    """Executes compiled methods against a :class:`repro.vm.runtime.Runtime`."""

    def __init__(self, runtime) -> None:
        super().__init__(runtime)
        # Inline-cache cell arrays, one list per compiled body.  Keyed
        # by the CompiledMethod object: method.invalidate() drops the
        # compiled body, so a recompile naturally starts with cold
        # cells and the stale array is never consulted again.
        self._cells: Dict[object, list] = {}

    def execute(self, method: DexMethod, args: List, ctx: ExecutionContext, depth: int = 0):
        """Execute ``method`` with ``args`` under ``ctx``; returns its
        return value.  The context's budget caps executed instructions
        across this call *including* callees (shared budget cell)."""
        if depth > MAX_CALL_DEPTH:
            raise VMCrash(f"call depth exceeded at {method.qualified_name}")
        if len(args) != method.params:
            raise VMCrash(
                f"{method.qualified_name} takes {method.params} args, got {len(args)}"
            )
        code = method._compiled
        if code is None:
            code = compile_method(method)
        registers: List = [None] * method.registers
        registers[: len(args)] = args
        runtime = self._runtime
        tracer = runtime.tracer
        cells = self._cells.get(code)
        if cells is None:
            cells = [None] * code.cell_count
            self._cells[code] = cells
        frame = _Frame(self, runtime, method, tracer, ctx, ctx.budget, depth, cells)
        budget = ctx.budget
        steps = code.steps
        count = code.count
        exhausted = code.exhausted
        cost = 0
        i = 0
        # The frame's instruction cost accrues in a local and flushes on
        # exit (fused steps and framework calls charge the runtime
        # directly; totals are identical either way, and nothing reads
        # cost_units mid-frame).
        try:
            if tracer is None:
                while 0 <= i < count:
                    budget[0] -= 1
                    if budget[0] < 0:
                        raise BudgetExhausted(exhausted)
                    cost += 1
                    i = steps[i](registers, frame)
            else:
                pcs = code.orig_pcs
                instrs = code.orig_instrs
                while 0 <= i < count:
                    budget[0] -= 1
                    if budget[0] < 0:
                        raise BudgetExhausted(exhausted)
                    cost += 1
                    tracer.on_instr(method, pcs[i], instrs[i])
                    i = steps[i](registers, frame)
        finally:
            runtime.cost_units += cost
        if i >= 0:
            raise VMCrash(
                f"{method.qualified_name}: control fell off the end of the method"
            )
        return frame.result
