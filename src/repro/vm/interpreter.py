"""The bytecode interpreter.

A straightforward register-machine loop with:

* 32-bit wrapped integer arithmetic;
* label-based branching (resolved through a per-method cache);
* an instruction budget so endless-loop responses and runaway code
  surface as :class:`BudgetExhausted` instead of hanging the host;
* pluggable tracers -- the profiler (Traceview stand-in), coverage
  measurement for fuzzers, and the debugging attack all observe
  execution through the same hook;
* a *cost model*: every instruction costs 1 unit and framework calls
  cost their published weight, giving a deterministic execution-time
  metric for the Table 5 overhead experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.chaos.faults import fault_point
from repro.dex.model import DexMethod
from repro.dex.opcodes import Op
from repro.errors import BudgetExhausted, VMCrash
from repro.vm.values import Instance, require_int, to_int32, truthy

#: Recursion limit for nested INVOKE frames.
MAX_CALL_DEPTH = 128


class Tracer:
    """Execution observer; subclass and override what you need.

    ``on_instr`` fires before each real instruction, ``on_branch`` after a
    conditional branch decides, ``on_invoke`` when a method or framework
    call begins.
    """

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:  # pragma: no cover
        pass

    def on_branch(self, method: DexMethod, pc: int, instr, taken: bool) -> None:  # pragma: no cover
        pass

    def on_invoke(self, name: str, args: list) -> None:  # pragma: no cover
        pass


class CountingTracer(Tracer):
    """Counts instructions and per-method invocations (Traceview role)."""

    def __init__(self) -> None:
        self.instructions = 0
        self.invocations: Dict[str, int] = {}

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        self.instructions += 1

    def on_invoke(self, name: str, args: list) -> None:
        self.invocations[name] = self.invocations.get(name, 0) + 1


class CoverageTracer(Tracer):
    """Records executed (method, pc) pairs and branch outcomes."""

    def __init__(self) -> None:
        self.visited = set()
        self.branches: Dict[tuple, set] = {}

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        self.visited.add((method.qualified_name, pc))

    def on_branch(self, method: DexMethod, pc: int, instr, taken: bool) -> None:
        self.branches.setdefault((method.qualified_name, pc), set()).add(taken)

    def instruction_coverage_of(self, dex) -> float:
        """Fraction of real instructions of ``dex`` ever executed."""
        total = dex.instruction_count()
        if total == 0:
            return 0.0
        executed = len(self.visited)
        return min(1.0, executed / total)


class Interpreter:
    """Executes methods against a :class:`repro.vm.runtime.Runtime`."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        # label caches keyed by id(method); invalidated naturally because
        # instrumentation always calls method.invalidate() which we honor
        # by re-reading label_map (itself cached on the method).

    def run(self, method: DexMethod, args: List, budget: Optional[int] = None, depth: int = 0):
        """Execute ``method`` with ``args``; returns its return value.

        ``budget`` caps the number of executed instructions across this
        call *including* callees (shared mutable budget).
        """
        state = [budget if budget is not None else self._runtime.default_budget]
        return self._run_frame(method, args, state, depth)

    def run_payload(self, method: DexMethod, args: List, budget: List[int], policy):
        """Run a bomb payload frame, under a sub-budget when contained.

        Without a containment ``policy`` this is exactly the shared-
        budget frame run the instrumented INVOKE would have made.  With
        one, the payload gets ``min(remaining, policy.payload_budget)``
        instructions of its own (the ``vm.budget`` fault site can clamp
        it further); whatever it consumes is still charged to the host
        budget, but a payload that spins can no longer drain the host.
        """
        if policy is None:
            return self._run_frame(method, args, budget, depth=1)
        cap = fault_point("vm.budget", min(budget[0], policy.payload_budget))
        sub = [cap]
        try:
            return self._run_frame(method, args, sub, depth=1)
        finally:
            budget[0] -= cap - sub[0]

    # -- core loop -------------------------------------------------------------

    def _run_frame(self, method: DexMethod, args: List, budget: List[int], depth: int):
        if depth > MAX_CALL_DEPTH:
            raise VMCrash(f"call depth exceeded at {method.qualified_name}")
        if len(args) != method.params:
            raise VMCrash(
                f"{method.qualified_name} takes {method.params} args, got {len(args)}"
            )
        registers: List = [None] * method.registers
        registers[: len(args)] = args
        instructions = method.instructions
        labels = method.label_map()
        runtime = self._runtime
        tracer = runtime.tracer
        pc = 0
        count = len(instructions)

        while pc < count:
            instr = instructions[pc]
            op = instr.op
            if op is Op.LABEL:
                pc += 1
                continue
            budget[0] -= 1
            if budget[0] < 0:
                raise BudgetExhausted(f"instruction budget exhausted in {method.qualified_name}")
            runtime.cost_units += 1
            if tracer is not None:
                tracer.on_instr(method, pc, instr)

            if op is Op.CONST:
                registers[instr.dst] = instr.value
            elif op is Op.MOVE:
                registers[instr.dst] = registers[instr.a]
            elif op is Op.ADD:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "add") + require_int(registers[instr.b], "add")
                )
            elif op is Op.SUB:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "sub") - require_int(registers[instr.b], "sub")
                )
            elif op is Op.MUL:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "mul") * require_int(registers[instr.b], "mul")
                )
            elif op is Op.DIV:
                divisor = require_int(registers[instr.b], "div")
                if divisor == 0:
                    raise VMCrash(f"division by zero in {method.qualified_name}@{pc}")
                registers[instr.dst] = to_int32(
                    int(require_int(registers[instr.a], "div") / divisor)
                )
            elif op is Op.REM:
                divisor = require_int(registers[instr.b], "rem")
                if divisor == 0:
                    raise VMCrash(f"remainder by zero in {method.qualified_name}@{pc}")
                dividend = require_int(registers[instr.a], "rem")
                registers[instr.dst] = to_int32(dividend - int(dividend / divisor) * divisor)
            elif op is Op.AND:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "and") & require_int(registers[instr.b], "and")
                )
            elif op is Op.OR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "or") | require_int(registers[instr.b], "or")
                )
            elif op is Op.XOR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "xor") ^ require_int(registers[instr.b], "xor")
                )
            elif op is Op.SHL:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "shl")
                    << (require_int(registers[instr.b], "shl") & 31)
                )
            elif op is Op.SHR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "shr")
                    >> (require_int(registers[instr.b], "shr") & 31)
                )
            elif op is Op.NEG:
                registers[instr.dst] = to_int32(-require_int(registers[instr.a], "neg"))
            elif op is Op.NOT:
                value = registers[instr.a]
                if isinstance(value, bool):
                    registers[instr.dst] = not value
                else:
                    registers[instr.dst] = to_int32(~require_int(value, "not"))
            elif op is Op.CMP:
                left = registers[instr.a]
                right = registers[instr.b]
                registers[instr.dst] = (left > right) - (left < right)
            elif op is Op.ADD_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "add_lit") + instr.value
                )
            elif op is Op.SUB_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "sub_lit") - instr.value
                )
            elif op is Op.MUL_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "mul_lit") * instr.value
                )
            elif op is Op.DIV_LIT:
                if instr.value == 0:
                    raise VMCrash(f"division by zero literal in {method.qualified_name}@{pc}")
                registers[instr.dst] = to_int32(
                    int(require_int(registers[instr.a], "div_lit") / instr.value)
                )
            elif op is Op.REM_LIT:
                if instr.value == 0:
                    raise VMCrash(f"remainder by zero literal in {method.qualified_name}@{pc}")
                dividend = require_int(registers[instr.a], "rem_lit")
                registers[instr.dst] = to_int32(
                    dividend - int(dividend / instr.value) * instr.value
                )
            elif op is Op.AND_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "and_lit") & instr.value
                )
            elif op is Op.OR_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "or_lit") | instr.value
                )
            elif op is Op.XOR_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "xor_lit") ^ instr.value
                )
            elif op is Op.GOTO:
                pc = labels[instr.target]
                continue
            elif op in _COMPARES:
                taken = _COMPARES[op](registers[instr.a], registers[instr.b])
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, taken)
                if taken:
                    pc = labels[instr.target]
                    continue
            elif op in _ZERO_TESTS:
                taken = _ZERO_TESTS[op](registers[instr.a])
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, taken)
                if taken:
                    pc = labels[instr.target]
                    continue
            elif op is Op.SWITCH:
                key = registers[instr.a]
                if isinstance(key, bool):
                    key = int(key)
                target = instr.value.get(key)
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, target is not None)
                if target is not None:
                    pc = labels[target]
                    continue
            elif op is Op.RETURN:
                return registers[instr.a]
            elif op is Op.RETURN_VOID:
                return None
            elif op is Op.THROW:
                raise VMCrash(str(registers[instr.a]))
            elif op is Op.NEW_INSTANCE:
                registers[instr.dst] = self._runtime.new_instance(instr.value)
            elif op is Op.IGET:
                obj = registers[instr.a]
                if not isinstance(obj, Instance):
                    raise VMCrash(f"iget on non-object in {method.qualified_name}@{pc}")
                registers[instr.dst] = obj.get(instr.value)
            elif op is Op.IPUT:
                obj = registers[instr.b]
                if not isinstance(obj, Instance):
                    raise VMCrash(f"iput on non-object in {method.qualified_name}@{pc}")
                obj.put(instr.value, registers[instr.a])
            elif op is Op.SGET:
                registers[instr.dst] = runtime.sget(instr.value)
            elif op is Op.SPUT:
                runtime.sput(instr.value, registers[instr.a])
            elif op is Op.NEW_ARRAY:
                length = require_int(registers[instr.a], "new_array")
                if length < 0 or length > 1 << 24:
                    raise VMCrash(f"bad array length {length}")
                registers[instr.dst] = [None] * length
            elif op is Op.AGET:
                array = registers[instr.a]
                index = require_int(registers[instr.b], "aget")
                if not isinstance(array, list):
                    raise VMCrash(f"aget on non-array in {method.qualified_name}@{pc}")
                if not 0 <= index < len(array):
                    raise VMCrash(f"array index {index} out of bounds ({len(array)})")
                registers[instr.dst] = array[index]
            elif op is Op.APUT:
                array = registers[instr.dst]
                index = require_int(registers[instr.b], "aput")
                if not isinstance(array, list):
                    raise VMCrash(f"aput on non-array in {method.qualified_name}@{pc}")
                if not 0 <= index < len(array):
                    raise VMCrash(f"array index {index} out of bounds ({len(array)})")
                array[index] = registers[instr.a]
            elif op is Op.ARRAY_LEN:
                array = registers[instr.a]
                if not isinstance(array, list):
                    raise VMCrash(f"array_len on non-array in {method.qualified_name}@{pc}")
                registers[instr.dst] = len(array)
            elif op is Op.INVOKE:
                call_args = [registers[r] for r in instr.args]
                if tracer is not None:
                    tracer.on_invoke(instr.value, call_args)
                result = self._dispatch(instr.value, call_args, budget, depth)
                if instr.dst is not None:
                    registers[instr.dst] = result
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - unreachable with a complete ISA
                raise VMCrash(f"unimplemented opcode {op!r}")
            pc += 1

        raise VMCrash(f"{method.qualified_name}: control fell off the end of the method")

    def _dispatch(self, name: str, call_args: List, budget: List[int], depth: int):
        runtime = self._runtime
        target = runtime.find_method(name)
        if target is not None:
            return self._run_frame(target, call_args, budget, depth + 1)
        return runtime.framework_call(name, call_args, budget)


def _eq(a, b) -> bool:
    # Cross-type equality never holds (but bool/int interoperate as in Java).
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    return type(a) is type(b) and a == b


_COMPARES: Dict[Op, Callable] = {
    Op.IF_EQ: _eq,
    Op.IF_NE: lambda a, b: not _eq(a, b),
    Op.IF_LT: lambda a, b: require_int(a, "if_lt") < require_int(b, "if_lt"),
    Op.IF_GE: lambda a, b: require_int(a, "if_ge") >= require_int(b, "if_ge"),
    Op.IF_GT: lambda a, b: require_int(a, "if_gt") > require_int(b, "if_gt"),
    Op.IF_LE: lambda a, b: require_int(a, "if_le") <= require_int(b, "if_le"),
}

_ZERO_TESTS: Dict[Op, Callable] = {
    Op.IF_EQZ: lambda a: not truthy(a),
    Op.IF_NEZ: truthy,
    Op.IF_LTZ: lambda a: require_int(a, "if_ltz") < 0,
    Op.IF_GEZ: lambda a: require_int(a, "if_gez") >= 0,
}
