"""A tracing debugger over the interpreter's observation hooks.

Models the attacker's dynamic tooling from Section 2.1's *Debugging*
attack: breakpoints, watchpoints on framework APIs ("hook critical
calls the repackaging detection code relies on ... for instance, hook
calls to getPublicKey") and on static fields, plus a bounded execution
trace to walk back from a symptom to the code that caused it.

Everything is implemented as a :class:`repro.vm.interpreter.Tracer`, so
it works on any runtime without modifying the app -- exactly the
position a debugger-wielding attacker is in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.dex.model import DexMethod
from repro.dex.opcodes import Op
from repro.vm.interpreter import Tracer


@dataclass
class WatchHit:
    """One watchpoint firing."""

    api: str
    args_preview: str
    #: Most recent (method, pc) entries before the hit -- the "back
    #: trace" an attacker follows to the responsible code.
    trace_back: Tuple[Tuple[str, int], ...]

    @property
    def source_method(self) -> Optional[str]:
        return self.trace_back[-1][0] if self.trace_back else None


@dataclass
class StaticWriteHit:
    field: str
    method: str
    pc: int


class Debugger(Tracer):
    """Breakpoints + watchpoints + a bounded trace ring."""

    def __init__(self, trace_depth: int = 64) -> None:
        self._trace: Deque[Tuple[str, int]] = deque(maxlen=trace_depth)
        self._api_watches: Set[str] = set()
        self._static_watches: Set[str] = set()
        self._breakpoints: Set[Tuple[str, int]] = set()
        self.watch_hits: List[WatchHit] = []
        self.static_hits: List[StaticWriteHit] = []
        self.breakpoint_hits: List[Tuple[str, int]] = []
        self.instructions_seen = 0

    # -- configuration -----------------------------------------------------

    def watch_api(self, *names: str) -> "Debugger":
        self._api_watches.update(names)
        return self

    def watch_static(self, *fields: str) -> "Debugger":
        self._static_watches.update(fields)
        return self

    def set_breakpoint(self, method: str, pc: int) -> "Debugger":
        self._breakpoints.add((method, pc))
        return self

    # -- tracer hooks ----------------------------------------------------------

    def on_instr(self, method: DexMethod, pc: int, instr) -> None:
        self.instructions_seen += 1
        self._trace.append((method.qualified_name, pc))
        if (method.qualified_name, pc) in self._breakpoints:
            self.breakpoint_hits.append((method.qualified_name, pc))
        if (
            self._static_watches
            and instr.op is Op.SPUT
            and instr.value in self._static_watches
        ):
            self.static_hits.append(
                StaticWriteHit(field=instr.value, method=method.qualified_name, pc=pc)
            )

    def on_invoke(self, name: str, args: list) -> None:
        if name in self._api_watches:
            preview = ", ".join(repr(a)[:24] for a in args[:3])
            self.watch_hits.append(
                WatchHit(
                    api=name,
                    args_preview=preview,
                    trace_back=tuple(self._trace),
                )
            )

    # -- queries ------------------------------------------------------------------

    def hits_for(self, api: str) -> List[WatchHit]:
        return [hit for hit in self.watch_hits if hit.api == api]

    def source_methods(self, api: str) -> Set[str]:
        """Methods the attacker traces the watched call back to."""
        return {
            hit.source_method for hit in self.hits_for(api) if hit.source_method
        }

    def trace_tail(self, count: int = 10) -> List[Tuple[str, int]]:
        return list(self._trace)[-count:]
