"""UI event model.

Apps expose event handlers as methods named ``on_<kind>`` (any class may
declare them -- think one activity per class).  A fuzzer or a simulated
user produces a stream of :class:`Event` records; the runtime dispatches
each to the matching handler of the chosen class.

The event vocabulary covers what Monkey/Dynodroid inject: touches, key
presses, text entry, menu selections, scrolls, long presses, back
presses, timer ticks and sensor changes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class EventKind(enum.Enum):
    """Every injectable event, with its handler-argument shape."""

    TOUCH = "touch"            # (x, y)
    LONG_PRESS = "long_press"  # (x, y)
    KEY = "key"                # (code,)
    TEXT = "text"              # (string,)
    MENU = "menu"              # (item_id,)
    SCROLL = "scroll"          # (dy,)
    BACK = "back"              # ()
    TICK = "tick"              # (millis,)
    SENSOR = "sensor"          # (value,)


#: Handler parameter counts by kind.
ARITY = {
    EventKind.TOUCH: 2,
    EventKind.LONG_PRESS: 2,
    EventKind.KEY: 1,
    EventKind.TEXT: 1,
    EventKind.MENU: 1,
    EventKind.SCROLL: 1,
    EventKind.BACK: 0,
    EventKind.TICK: 1,
    EventKind.SENSOR: 1,
}


def handler_name_for(kind: EventKind) -> str:
    """Handler method name for an event kind (``on_touch`` etc.)."""
    return f"on_{kind.value}"


@dataclass(frozen=True)
class Event:
    """One injected event, targeted at a class that declares the handler."""

    kind: EventKind
    target_class: str
    args: Tuple = ()

    def __post_init__(self) -> None:
        expected = ARITY[self.kind]
        if len(self.args) != expected:
            raise ValueError(
                f"{self.kind.value} event takes {expected} args, got {len(self.args)}"
            )

    @property
    def handler(self) -> str:
        return f"{self.target_class}.{handler_name_for(self.kind)}"

    #: Simulated latency of injecting + handling one event, in seconds.
    #: (Dynodroid reports roughly 10-20 events/second on a device.)
    DURATION = 0.1


_WORDS = (
    "hello", "test", "fish", "route", "note", "abc", "map", "42", "journal",
    "calendar", "beat", "hash", "log", "pause", "play", "save", "load",
    "north", "x", "",
)


def random_args(kind: EventKind, rng: random.Random, width: int = 1080, height: int = 1920) -> Tuple:
    """Plausible random arguments for an event of ``kind``."""
    if kind in (EventKind.TOUCH, EventKind.LONG_PRESS):
        return (rng.randrange(width), rng.randrange(height))
    if kind is EventKind.KEY:
        return (rng.randrange(0, 285),)  # Android keycode range
    if kind is EventKind.TEXT:
        return (rng.choice(_WORDS),)
    if kind is EventKind.MENU:
        return (rng.randrange(0, 12),)
    if kind is EventKind.SCROLL:
        return (rng.randrange(-400, 401),)
    if kind is EventKind.BACK:
        return ()
    if kind is EventKind.TICK:
        return (rng.choice((16, 100, 250, 1000)),)
    if kind is EventKind.SENSOR:
        return (rng.randrange(0, 10001),)
    raise ValueError(f"unhandled event kind {kind!r}")


def declared_events(dex) -> List[Tuple[EventKind, str]]:
    """(kind, class) pairs an app actually handles, in stable order.

    ``dex`` is a :class:`repro.dex.DexFile`; fuzzers build their event
    alphabet from this -- Monkey fires blindly, the smarter tools fire
    only events some handler listens to.
    """
    pairs = []
    by_name = {kind: handler_name_for(kind) for kind in EventKind}
    for class_name in sorted(dex.classes):
        cls = dex.classes[class_name]
        for kind, name in by_name.items():
            if name in cls.methods:
                pairs.append((kind, class_name))
    return pairs
