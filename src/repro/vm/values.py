"""Runtime value model.

Registers hold Python values restricted to: ``int`` (32-bit signed
semantics, like Dalvik), ``bool``, ``str``, ``bytes``, ``None``,
``list`` (arrays) and :class:`Instance` (objects).  Arithmetic wraps at
32 bits so brute-force domain arguments (Section 5.1: "if X is a 32-bit
integer, the brute force attack may take up to 2^32 t time") are
faithful.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import VMCrash

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
_MASK = 0xFFFFFFFF


def to_int32(value: int) -> int:
    """Wrap an int to signed 32-bit two's-complement."""
    value &= _MASK
    return value - 0x100000000 if value > INT32_MAX else value


def truthy(value) -> bool:
    """Dalvik-style zero test: 0, False, None and "" are 'zero'."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return True


def require_int(value, context: str) -> int:
    """Coerce to int for arithmetic; bools count as 0/1 (weak QCs)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    raise VMCrash(f"{context}: expected int, got {type(value).__name__}")


class Instance:
    """A heap object: a class name plus instance fields."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str, fields: Dict[str, object] = None) -> None:
        self.class_name = class_name
        self.fields: Dict[str, object] = dict(fields or {})

    def get(self, field: str):
        try:
            return self.fields[field]
        except KeyError:
            raise VMCrash(f"{self.class_name} has no field {field!r}") from None

    def put(self, field: str, value) -> None:
        self.fields[field] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.class_name} {self.fields!r}>"
