"""Dispatch-table compilation for the interpreter.

The interpreter's original inner loop re-decoded every instruction on
every execution: one long ``elif`` chain per step, label lookups per
branch, and a method-table probe per INVOKE.  This module compiles a
:class:`~repro.dex.model.DexMethod` once into a :class:`CompiledMethod`
-- a flat table of *step closures*, one per executed unit -- that the
driver loop indexes directly.  Three techniques, all semantics-free:

**Dispatch table.**  Each real instruction becomes a closure
``step(registers, frame) -> next_index`` with its operands, branch
targets (pre-resolved to table indices) and error messages captured at
compile time.  LABEL pseudo-instructions vanish from the compiled
stream (they were free at runtime anyway); the original pc of every
unit is retained so tracers observe exactly the pcs they always did.

**Superinstruction fusion.**  Adjacent pairs that bomb prologues emit
constantly (CONST+CONST, CONST+IF, CONST+INVOKE, INVOKE+IF_EQZ/NEZ)
fuse into one closure.  Fusion is only legal when the second
instruction directly follows the first in the *original* stream
(``j == i + 1``): branch targets always land on LABELs, and a LABEL
between the two would make the second instruction a potential jump
target.  The fused closure performs the second component's budget,
cost and tracer bookkeeping itself, bit-identically to two driver
iterations.

**Inline caches.**  Every INVOKE site gets a cache cell (per
interpreter, per compiled body).  App-method targets are cached
unconditionally: :meth:`Runtime.load_dex` forbids shadowing, so a
name -> DexMethod binding can never change once observed.  Framework
targets cache the post-alias handler name and its CALL_COSTS weight,
guarded by the runtime's method-generation counter (a payload that
``load_dex``-es a class whose method name previously resolved to the
framework must win the method-first dispatch, exactly as before).  The
handler *function* is looked up live on every call -- caching it would
blind ``bomb.probe("hooks")`` to handler-table swaps.

Compiled bodies are cached on the method (``method._compiled``) and
dropped by the existing :meth:`DexMethod.invalidate` path, which every
in-repo mutator (MethodEditor, attacks, weaving) already calls.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional

from repro.dex.opcodes import Op
from repro.errors import BudgetExhausted, VMCrash
from repro.vm.values import Instance, require_int, truthy

_MASK = 0xFFFFFFFF
_INT32_MAX = 2147483647
_WRAP = 0x100000000


def _eq(a, b) -> bool:
    # Cross-type equality never holds (but bool/int interoperate as in Java).
    if isinstance(a, bool):
        a = int(a)
    if isinstance(b, bool):
        b = int(b)
    return type(a) is type(b) and a == b


_COMPARES: Dict[Op, Callable] = {
    Op.IF_EQ: _eq,
    Op.IF_NE: lambda a, b: not _eq(a, b),
    Op.IF_LT: lambda a, b: require_int(a, "if_lt") < require_int(b, "if_lt"),
    Op.IF_GE: lambda a, b: require_int(a, "if_ge") >= require_int(b, "if_ge"),
    Op.IF_GT: lambda a, b: require_int(a, "if_gt") > require_int(b, "if_gt"),
    Op.IF_LE: lambda a, b: require_int(a, "if_le") <= require_int(b, "if_le"),
}

_ZERO_TESTS: Dict[Op, Callable] = {
    Op.IF_EQZ: lambda a: not truthy(a),
    Op.IF_NEZ: truthy,
    Op.IF_LTZ: lambda a: require_int(a, "if_ltz") < 0,
    Op.IF_GEZ: lambda a: require_int(a, "if_gez") >= 0,
}

#: (context string, raw int op) per two-register arithmetic opcode.
_ARITH = {
    Op.ADD: ("add", lambda x, y: x + y),
    Op.SUB: ("sub", lambda x, y: x - y),
    Op.MUL: ("mul", lambda x, y: x * y),
    Op.AND: ("and", lambda x, y: x & y),
    Op.OR: ("or", lambda x, y: x | y),
    Op.XOR: ("xor", lambda x, y: x ^ y),
    Op.SHL: ("shl", lambda x, y: x << (y & 31)),
    Op.SHR: ("shr", lambda x, y: x >> (y & 31)),
}

_ARITH_LIT = {
    Op.ADD_LIT: ("add_lit", lambda x, v: x + v),
    Op.SUB_LIT: ("sub_lit", lambda x, v: x - v),
    Op.MUL_LIT: ("mul_lit", lambda x, v: x * v),
    Op.AND_LIT: ("and_lit", lambda x, v: x & v),
    Op.OR_LIT: ("or_lit", lambda x, v: x | v),
    Op.XOR_LIT: ("xor_lit", lambda x, v: x ^ v),
}


class _Frame:
    """Per-activation state the step closures need."""

    __slots__ = (
        "interp", "runtime", "method", "tracer", "ctx", "budget",
        "depth", "cells", "result",
    )

    def __init__(self, interp, runtime, method, tracer, ctx, budget, depth, cells):
        self.interp = interp
        self.runtime = runtime
        self.method = method
        self.tracer = tracer
        self.ctx = ctx
        self.budget = budget
        self.depth = depth
        self.cells = cells
        self.result = None


class CompiledMethod:
    """One method, compiled: step closures plus tracer-fidelity maps."""

    __slots__ = (
        "steps", "orig_pcs", "orig_instrs", "count", "cell_count",
        "fused_units", "exhausted",
    )

    def __init__(self, steps, orig_pcs, orig_instrs, cell_count, fused_units, exhausted):
        self.steps = steps
        self.orig_pcs = orig_pcs          # compiled index -> original pc of the unit head
        self.orig_instrs = orig_instrs    # compiled index -> original head Instr
        self.count = len(steps)
        self.cell_count = cell_count      # inline-cache cells (one per INVOKE site)
        self.fused_units = fused_units    # superinstruction count (introspection)
        self.exhausted = exhausted        # precomputed BudgetExhausted message


# ---------------------------------------------------------------------------
# Inline-cached call dispatch
# ---------------------------------------------------------------------------


def _resolve_site(runtime, name):
    """Resolve an INVOKE target into a cacheable entry.

    ``(method,)`` for an app method (sound forever: load_dex forbids
    shadowing), ``(None, handler_name, cost, methods_gen)`` for a
    framework call (valid until the runtime loads more methods), or
    ``None`` for an unknown name (never cached -- the slow path raises
    with legacy semantics, and a later ``load_dex`` may define it).
    """
    target = runtime.find_method(name)
    if target is not None:
        return (target,)
    return runtime.framework.resolve_entry(name, runtime._methods_gen)


def _call(frame, name, call_args, cell):
    """INVOKE dispatch through the site's inline-cache cell."""
    runtime = frame.runtime
    cells = frame.cells
    entry = cells[cell]
    if entry is None:
        entry = _resolve_site(runtime, name)
        if entry is None:
            # Unknown name: legacy slow path (raises "unknown method").
            return runtime.framework.call(name, call_args, frame.ctx)
        cells[cell] = entry
    target = entry[0]
    if target is not None:
        return frame.interp.execute(target, call_args, frame.ctx, frame.depth + 1)
    if entry[3] != runtime._methods_gen:
        # New code was loaded since this site resolved: a payload class
        # may now shadow the framework name under method-first dispatch.
        entry = _resolve_site(runtime, name)
        if entry is None:
            return runtime.framework.call(name, call_args, frame.ctx)
        cells[cell] = entry
        target = entry[0]
        if target is not None:
            return frame.interp.execute(target, call_args, frame.ctx, frame.depth + 1)
    return runtime.framework.call_resolved(entry[1], entry[2], call_args, frame.ctx)


# ---------------------------------------------------------------------------
# Single-instruction step factories
# ---------------------------------------------------------------------------


def _wrap32(v):
    v &= _MASK
    return v - _WRAP if v > _INT32_MAX else v


def _build_single(instr, pc, nxt, C):
    """Compile one instruction into a step closure.

    ``C`` is the per-method compile context: qualified name, label ->
    unit-index resolver, and the inline-cache cell allocator.
    """
    op = instr.op

    if op is Op.CONST:
        dst, value = instr.dst, instr.value

        def step(regs, frame, dst=dst, value=value, nxt=nxt):
            regs[dst] = value
            return nxt
        return step

    if op is Op.MOVE:
        dst, a = instr.dst, instr.a

        def step(regs, frame, dst=dst, a=a, nxt=nxt):
            regs[dst] = regs[a]
            return nxt
        return step

    if op is Op.INVOKE:
        return _make_invoke(instr, nxt, C)

    if op in _COMPARES:
        pred = _COMPARES[op]
        a, b = instr.a, instr.b
        t = C.unit_for(instr.target)
        lbl = instr.target

        if t is None:
            def step(regs, frame, pred=pred, a=a, b=b, nxt=nxt, pc=pc, instr=instr, lbl=lbl):
                taken = pred(regs[a], regs[b])
                tr = frame.tracer
                if tr is not None:
                    tr.on_branch(frame.method, pc, instr, taken)
                if taken:
                    raise KeyError(lbl)
                return nxt
            return step

        def step(regs, frame, pred=pred, a=a, b=b, t=t, nxt=nxt, pc=pc, instr=instr):
            taken = pred(regs[a], regs[b])
            tr = frame.tracer
            if tr is not None:
                tr.on_branch(frame.method, pc, instr, taken)
            return t if taken else nxt
        return step

    if op in _ZERO_TESTS:
        pred = _ZERO_TESTS[op]
        a = instr.a
        t = C.unit_for(instr.target)
        lbl = instr.target

        if t is None:
            def step(regs, frame, pred=pred, a=a, nxt=nxt, pc=pc, instr=instr, lbl=lbl):
                taken = pred(regs[a])
                tr = frame.tracer
                if tr is not None:
                    tr.on_branch(frame.method, pc, instr, taken)
                if taken:
                    raise KeyError(lbl)
                return nxt
            return step

        def step(regs, frame, pred=pred, a=a, t=t, nxt=nxt, pc=pc, instr=instr):
            taken = pred(regs[a])
            tr = frame.tracer
            if tr is not None:
                tr.on_branch(frame.method, pc, instr, taken)
            return t if taken else nxt
        return step

    if op is Op.GOTO:
        t = C.unit_for(instr.target)
        if t is None:
            lbl = instr.target

            def step(regs, frame, lbl=lbl):
                raise KeyError(lbl)
            return step

        def step(regs, frame, t=t):
            return t
        return step

    if op is Op.RETURN:
        a = instr.a

        def step(regs, frame, a=a):
            frame.result = regs[a]
            return -1
        return step

    if op is Op.RETURN_VOID:
        def step(regs, frame):
            frame.result = None
            return -1
        return step

    if op in _ARITH:
        ctxname, fn = _ARITH[op]
        dst, a, b = instr.dst, instr.a, instr.b

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt, fn=fn, ctxname=ctxname):
            x = regs[a]
            y = regs[b]
            if type(x) is int and type(y) is int:
                v = fn(x, y)
            else:
                v = fn(require_int(x, ctxname), require_int(y, ctxname))
            v &= _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op in _ARITH_LIT:
        ctxname, fn = _ARITH_LIT[op]
        dst, a, value = instr.dst, instr.a, instr.value

        def step(regs, frame, dst=dst, a=a, value=value, nxt=nxt, fn=fn, ctxname=ctxname):
            x = regs[a]
            if type(x) is not int:
                x = require_int(x, ctxname)
            v = fn(x, value)
            v &= _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.DIV:
        dst, a, b = instr.dst, instr.a, instr.b
        msg = f"division by zero in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt, msg=msg):
            divisor = regs[b]
            if type(divisor) is not int:
                divisor = require_int(divisor, "div")
            if divisor == 0:
                raise VMCrash(msg)
            x = regs[a]
            if type(x) is not int:
                x = require_int(x, "div")
            v = int(x / divisor) & _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.REM:
        dst, a, b = instr.dst, instr.a, instr.b
        msg = f"remainder by zero in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt, msg=msg):
            divisor = regs[b]
            if type(divisor) is not int:
                divisor = require_int(divisor, "rem")
            if divisor == 0:
                raise VMCrash(msg)
            dividend = regs[a]
            if type(dividend) is not int:
                dividend = require_int(dividend, "rem")
            v = (dividend - int(dividend / divisor) * divisor) & _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.DIV_LIT:
        dst, a, value = instr.dst, instr.a, instr.value
        if value == 0:
            msg = f"division by zero literal in {C.qname}@{pc}"

            def step(regs, frame, msg=msg):
                raise VMCrash(msg)
            return step

        def step(regs, frame, dst=dst, a=a, value=value, nxt=nxt):
            x = regs[a]
            if type(x) is not int:
                x = require_int(x, "div_lit")
            v = int(x / value) & _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.REM_LIT:
        dst, a, value = instr.dst, instr.a, instr.value
        if value == 0:
            msg = f"remainder by zero literal in {C.qname}@{pc}"

            def step(regs, frame, msg=msg):
                raise VMCrash(msg)
            return step

        def step(regs, frame, dst=dst, a=a, value=value, nxt=nxt):
            x = regs[a]
            if type(x) is not int:
                x = require_int(x, "rem_lit")
            v = (x - int(x / value) * value) & _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.NEG:
        dst, a = instr.dst, instr.a

        def step(regs, frame, dst=dst, a=a, nxt=nxt):
            x = regs[a]
            if type(x) is not int:
                x = require_int(x, "neg")
            v = (-x) & _MASK
            regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.NOT:
        dst, a = instr.dst, instr.a

        def step(regs, frame, dst=dst, a=a, nxt=nxt):
            value = regs[a]
            if isinstance(value, bool):
                regs[dst] = not value
            else:
                v = (~require_int(value, "not")) & _MASK
                regs[dst] = v - _WRAP if v > _INT32_MAX else v
            return nxt
        return step

    if op is Op.CMP:
        dst, a, b = instr.dst, instr.a, instr.b

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt):
            left = regs[a]
            right = regs[b]
            regs[dst] = (left > right) - (left < right)
            return nxt
        return step

    if op is Op.SWITCH:
        a = instr.a
        table = {}
        bad = {}
        for key, label in instr.value.items():
            t = C.unit_for(label)
            if t is None:
                table[key] = -2
                bad[key] = label
            else:
                table[key] = t

        def step(regs, frame, a=a, table=table, bad=bad, nxt=nxt, pc=pc, instr=instr):
            key = regs[a]
            if type(key) is bool:
                key = int(key)
            dest = table.get(key)
            tr = frame.tracer
            if tr is not None:
                tr.on_branch(frame.method, pc, instr, dest is not None)
            if dest is None:
                return nxt
            if dest < 0:
                raise KeyError(bad[key])
            return dest
        return step

    if op is Op.THROW:
        a = instr.a

        def step(regs, frame, a=a):
            raise VMCrash(str(regs[a]))
        return step

    if op is Op.NEW_INSTANCE:
        dst, value = instr.dst, instr.value

        def step(regs, frame, dst=dst, value=value, nxt=nxt):
            regs[dst] = frame.runtime.new_instance(value)
            return nxt
        return step

    if op is Op.IGET:
        dst, a, fname = instr.dst, instr.a, instr.value
        msg = f"iget on non-object in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, fname=fname, nxt=nxt, msg=msg):
            obj = regs[a]
            if not isinstance(obj, Instance):
                raise VMCrash(msg)
            regs[dst] = obj.get(fname)
            return nxt
        return step

    if op is Op.IPUT:
        a, b, fname = instr.a, instr.b, instr.value
        msg = f"iput on non-object in {C.qname}@{pc}"

        def step(regs, frame, a=a, b=b, fname=fname, nxt=nxt, msg=msg):
            obj = regs[b]
            if not isinstance(obj, Instance):
                raise VMCrash(msg)
            obj.put(fname, regs[a])
            return nxt
        return step

    if op is Op.SGET:
        dst, fname = instr.dst, instr.value

        def step(regs, frame, dst=dst, fname=fname, nxt=nxt):
            regs[dst] = frame.runtime.sget(fname)
            return nxt
        return step

    if op is Op.SPUT:
        a, fname = instr.a, instr.value

        def step(regs, frame, a=a, fname=fname, nxt=nxt):
            frame.runtime.sput(fname, regs[a])
            return nxt
        return step

    if op is Op.NEW_ARRAY:
        dst, a = instr.dst, instr.a

        def step(regs, frame, dst=dst, a=a, nxt=nxt):
            length = require_int(regs[a], "new_array")
            if length < 0 or length > 1 << 24:
                raise VMCrash(f"bad array length {length}")
            regs[dst] = [None] * length
            return nxt
        return step

    if op is Op.AGET:
        dst, a, b = instr.dst, instr.a, instr.b
        msg = f"aget on non-array in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt, msg=msg):
            array = regs[a]
            index = require_int(regs[b], "aget")
            if not isinstance(array, list):
                raise VMCrash(msg)
            if not 0 <= index < len(array):
                raise VMCrash(f"array index {index} out of bounds ({len(array)})")
            regs[dst] = array[index]
            return nxt
        return step

    if op is Op.APUT:
        dst, a, b = instr.dst, instr.a, instr.b
        msg = f"aput on non-array in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, b=b, nxt=nxt, msg=msg):
            array = regs[dst]
            index = require_int(regs[b], "aput")
            if not isinstance(array, list):
                raise VMCrash(msg)
            if not 0 <= index < len(array):
                raise VMCrash(f"array index {index} out of bounds ({len(array)})")
            array[index] = regs[a]
            return nxt
        return step

    if op is Op.ARRAY_LEN:
        dst, a = instr.dst, instr.a
        msg = f"array_len on non-array in {C.qname}@{pc}"

        def step(regs, frame, dst=dst, a=a, nxt=nxt, msg=msg):
            array = regs[a]
            if not isinstance(array, list):
                raise VMCrash(msg)
            regs[dst] = len(array)
            return nxt
        return step

    if op is Op.NOP:
        def step(regs, frame, nxt=nxt):
            return nxt
        return step

    msg = f"unimplemented opcode {op!r}"

    def step(regs, frame, msg=msg):  # pragma: no cover - complete ISA
        raise VMCrash(msg)
    return step


def _make_invoke(instr, nxt, C):
    cell = C.alloc_cell()
    name = instr.value
    arg_regs = instr.args
    dst = instr.dst

    if dst is None:
        def step(regs, frame, name=name, arg_regs=arg_regs, cell=cell, nxt=nxt):
            call_args = [regs[r] for r in arg_regs]
            tr = frame.tracer
            if tr is not None:
                tr.on_invoke(name, call_args)
            _call(frame, name, call_args, cell)
            return nxt
        return step

    def step(regs, frame, dst=dst, name=name, arg_regs=arg_regs, cell=cell, nxt=nxt):
        call_args = [regs[r] for r in arg_regs]
        tr = frame.tracer
        if tr is not None:
            tr.on_invoke(name, call_args)
        regs[dst] = _call(frame, name, call_args, cell)
        return nxt
    return step


# ---------------------------------------------------------------------------
# Superinstruction (fused-pair) step factories
# ---------------------------------------------------------------------------


def _fusable(op1, op2) -> bool:
    """A pair may fuse when the *shape* matches a bomb-prologue idiom.

    Adjacency in the original stream is checked by the caller; here we
    only gate on opcode shape.
    """
    if op1 is Op.CONST:
        return (
            op2 is Op.CONST
            or op2 is Op.INVOKE
            or op2 in _COMPARES
            or op2 in _ZERO_TESTS
        )
    if op1 is Op.INVOKE:
        return op2 in _ZERO_TESTS
    return False


def _build_fused(in1, pc1, in2, pc2, nxt, C):
    """One closure executing two instructions.

    The driver loop performs budget/cost/tracer bookkeeping for the
    first component; the closure replicates the same bookkeeping for
    the second, in the same order (budget check, cost, on_instr), so
    exhaustion mid-pair and every tracer observation land exactly where
    two separate iterations would put them.
    """
    op1, op2 = in1.op, in2.op
    exhausted = C.exhausted

    if op1 is Op.CONST:
        d1, v1 = in1.dst, in1.value

        if op2 is Op.CONST:
            d2, v2 = in2.dst, in2.value

            def step(regs, frame, d1=d1, v1=v1, d2=d2, v2=v2, nxt=nxt,
                     pc2=pc2, in2=in2, exhausted=exhausted):
                regs[d1] = v1
                cell = frame.budget
                cell[0] -= 1
                if cell[0] < 0:
                    raise BudgetExhausted(exhausted)
                frame.runtime.cost_units += 1
                tr = frame.tracer
                if tr is not None:
                    tr.on_instr(frame.method, pc2, in2)
                regs[d2] = v2
                return nxt
            return step

        if op2 is Op.INVOKE:
            icell = C.alloc_cell()
            name, arg_regs, dst2 = in2.value, in2.args, in2.dst

            def step(regs, frame, d1=d1, v1=v1, name=name, arg_regs=arg_regs,
                     dst2=dst2, icell=icell, nxt=nxt, pc2=pc2, in2=in2,
                     exhausted=exhausted):
                regs[d1] = v1
                cell = frame.budget
                cell[0] -= 1
                if cell[0] < 0:
                    raise BudgetExhausted(exhausted)
                frame.runtime.cost_units += 1
                tr = frame.tracer
                if tr is not None:
                    tr.on_instr(frame.method, pc2, in2)
                call_args = [regs[r] for r in arg_regs]
                if tr is not None:
                    tr.on_invoke(name, call_args)
                result = _call(frame, name, call_args, icell)
                if dst2 is not None:
                    regs[dst2] = result
                return nxt
            return step

        pred = _COMPARES.get(op2)
        if pred is not None:
            a2, b2 = in2.a, in2.b
            t = C.unit_for(in2.target)
            lbl = in2.target

            def step(regs, frame, d1=d1, v1=v1, pred=pred, a2=a2, b2=b2,
                     t=t, lbl=lbl, nxt=nxt, pc2=pc2, in2=in2,
                     exhausted=exhausted):
                regs[d1] = v1
                cell = frame.budget
                cell[0] -= 1
                if cell[0] < 0:
                    raise BudgetExhausted(exhausted)
                frame.runtime.cost_units += 1
                tr = frame.tracer
                if tr is not None:
                    tr.on_instr(frame.method, pc2, in2)
                taken = pred(regs[a2], regs[b2])
                if tr is not None:
                    tr.on_branch(frame.method, pc2, in2, taken)
                if taken:
                    if t is None:
                        raise KeyError(lbl)
                    return t
                return nxt
            return step

        pred = _ZERO_TESTS[op2]
        a2 = in2.a
        t = C.unit_for(in2.target)
        lbl = in2.target

        def step(regs, frame, d1=d1, v1=v1, pred=pred, a2=a2, t=t, lbl=lbl,
                 nxt=nxt, pc2=pc2, in2=in2, exhausted=exhausted):
            regs[d1] = v1
            cell = frame.budget
            cell[0] -= 1
            if cell[0] < 0:
                raise BudgetExhausted(exhausted)
            frame.runtime.cost_units += 1
            tr = frame.tracer
            if tr is not None:
                tr.on_instr(frame.method, pc2, in2)
            taken = pred(regs[a2])
            if tr is not None:
                tr.on_branch(frame.method, pc2, in2, taken)
            if taken:
                if t is None:
                    raise KeyError(lbl)
                return t
            return nxt
        return step

    # INVOKE + IF_EQZ / IF_NEZ / IF_LTZ / IF_GEZ
    icell = C.alloc_cell()
    name, arg_regs, dst1 = in1.value, in1.args, in1.dst
    pred = _ZERO_TESTS[op2]
    a2 = in2.a
    t = C.unit_for(in2.target)
    lbl = in2.target

    def step(regs, frame, name=name, arg_regs=arg_regs, dst1=dst1,
             icell=icell, pred=pred, a2=a2, t=t, lbl=lbl, nxt=nxt,
             pc2=pc2, in2=in2, exhausted=exhausted):
        call_args = [regs[r] for r in arg_regs]
        tr = frame.tracer
        if tr is not None:
            tr.on_invoke(name, call_args)
        result = _call(frame, name, call_args, icell)
        if dst1 is not None:
            regs[dst1] = result
        cell = frame.budget
        cell[0] -= 1
        if cell[0] < 0:
            raise BudgetExhausted(exhausted)
        frame.runtime.cost_units += 1
        if tr is not None:
            tr.on_instr(frame.method, pc2, in2)
        taken = pred(regs[a2])
        if tr is not None:
            tr.on_branch(frame.method, pc2, in2, taken)
        if taken:
            if t is None:
                raise KeyError(lbl)
            return t
        return nxt
    return step


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class _CompileContext:
    __slots__ = ("qname", "exhausted", "unit_for", "_cells")

    def __init__(self, qname, exhausted, unit_for):
        self.qname = qname
        self.exhausted = exhausted
        self.unit_for = unit_for
        self._cells = 0

    def alloc_cell(self) -> int:
        index = self._cells
        self._cells = index + 1
        return index


def compile_method(method) -> CompiledMethod:
    """Compile ``method`` into a step table; caches on ``method._compiled``.

    The cache is dropped by :meth:`DexMethod.invalidate` -- the same
    hook structural editors already call for the label cache.
    """
    instrs = method.instructions
    labels = method.label_map()
    qname = method.qualified_name
    exhausted = f"instruction budget exhausted in {qname}"

    real = [idx for idx, ins in enumerate(instrs) if ins.op is not Op.LABEL]

    # Partition into units: fuse a pair only when the second instruction
    # is directly adjacent in the original stream (no LABEL between --
    # branch targets always land on LABELs, so a fused tail can never be
    # jumped into).
    units: List[tuple] = []
    k = 0
    n = len(real)
    while k < n:
        i = real[k]
        if (
            k + 1 < n
            and real[k + 1] == i + 1
            and _fusable(instrs[i].op, instrs[i + 1].op)
        ):
            units.append((i, i + 1))
            k += 2
            continue
        units.append((i,))
        k += 1

    heads = [u[0] for u in units]

    def unit_for(label_name: str) -> Optional[int]:
        """Unit index a label jumps to, or None when the label is
        undefined (the step then raises KeyError at *execution* time,
        exactly as the uncompiled ``labels[target]`` lookup did)."""
        orig = labels.get(label_name)
        if orig is None:
            return None
        # First unit whose head sits at-or-after the LABEL marker.  A
        # fused tail can never satisfy this (it directly follows its
        # head with no room for a LABEL), so the result is a unit head
        # -- or len(units), which the driver turns into the same
        # fell-off-the-end crash the original loop raised.
        return bisect_left(heads, orig)

    C = _CompileContext(qname, exhausted, unit_for)
    steps = []
    orig_pcs = []
    orig_instrs = []
    fused = 0
    for uidx, unit in enumerate(units):
        i = unit[0]
        nxt = uidx + 1
        if len(unit) == 2:
            fused += 1
            step = _build_fused(instrs[i], i, instrs[unit[1]], unit[1], nxt, C)
        else:
            step = _build_single(instrs[i], i, nxt, C)
        steps.append(step)
        orig_pcs.append(i)
        orig_instrs.append(instrs[i])

    code = CompiledMethod(steps, orig_pcs, orig_instrs, C._cells, fused, exhausted)
    method._compiled = code
    return code
