"""Bomb containment: graceful degradation when payload machinery fails.

A logic bomb is supposed to be invisible until tampering is proven.  A
corrupt ciphertext, a rotten payload blob or a class-load failure is
*not* proof of tampering -- crashing the host app over it would turn
the protection itself into a denial of service.  Containment draws a
boundary around bomb execution:

* decrypt / deserialize / class-load / interpretation failures inside a
  bomb are caught at the ``bomb.*`` framework boundary, recorded as
  ``payload_error`` events in the :class:`~repro.vm.runtime.BombRegistry`,
  and execution falls through to the original branch semantics (the
  control-slot protocol's fall-through), so the host keeps running;
* a per-bomb **circuit breaker** quarantines a bomb after K consecutive
  failures (``quarantined`` event); further firings skip the payload
  entirely (``payload_skipped``) until the app restarts;
* **deliberate responses are never contained**: a payload that recorded
  a ``responded`` marker before raising (crash / endless-loop
  responses) propagates exactly as without containment, so detection
  semantics and the paper's tables are unchanged.  This covers
  mesh-tripped tamper responses too: a cross-reference guard that finds
  a peer bomb tampered records ``mesh_tripped`` and ``responded`` and
  then raises -- the responded delta makes the crash deliberate, so the
  circuit breaker never quarantines a bomb for defending the mesh;
* ``strict`` mode re-raises contained failures as
  :class:`repro.errors.PayloadError` (with bomb id and fault site) for
  debugging.

Containment is opt-in per :class:`~repro.vm.runtime.Runtime`
(``Runtime(..., containment=ContainmentPolicy())``); without a policy
the legacy crash-through behaviour is preserved bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

#: Control-slot value meaning "fall through" (mirrors
#: repro.core.payloads.CONTROL_FALLTHROUGH; duplicated here so the VM
#: does not import the instrumentation layer).
CONTROL_FALLTHROUGH = 0


@dataclass
class ContainmentPolicy:
    """How a runtime handles bomb-infrastructure failures."""

    #: Consecutive payload failures before a bomb is quarantined.
    max_consecutive_failures: int = 3

    #: Instruction sub-budget for one payload run.  Keeps a payload that
    #: spins (corrupted control flow) from draining the host's budget;
    #: the instructions a payload does execute are still charged to the
    #: host budget.  Deliberate endless-loop responses exhaust this cap
    #: and re-raise (they record ``responded`` first).
    payload_budget: int = 250_000

    #: Re-raise contained failures as PayloadError (debugging).
    strict: bool = False


class CircuitBreaker:
    """Per-bomb consecutive-failure counter with quarantine."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._failures: Dict[str, int] = {}
        self.quarantined: Set[str] = set()

    def is_quarantined(self, bomb_id: str) -> bool:
        return bomb_id in self.quarantined

    def failure(self, bomb_id: str) -> bool:
        """Record one failure; True when this one trips the breaker."""
        count = self._failures.get(bomb_id, 0) + 1
        self._failures[bomb_id] = count
        if count >= self.threshold and bomb_id not in self.quarantined:
            self.quarantined.add(bomb_id)
            return True
        return False

    def success(self, bomb_id: str) -> None:
        """A clean payload run resets the bomb's consecutive count."""
        self._failures.pop(bomb_id, None)

    def consecutive_failures(self, bomb_id: str) -> int:
        return self._failures.get(bomb_id, 0)


def fall_through(register_array):
    """Make a payload register array request fall-through semantics.

    The caller's unpack loop then restores its registers unchanged and
    the control-slot dispatch resumes at the bomb's exit label -- the
    original branch semantics of the instrumented site.
    """
    if isinstance(register_array, list) and len(register_array) >= 2:
        register_array[-2] = CONTROL_FALLTHROUGH
    return register_array
