"""The framework API surface (``android.*``, ``java.*``, ``bomb.*``).

Bytecode reaches the outside world only through INVOKE on these names.
Three namespaces:

``android.*``  the Android system services the paper's detection relies
               on -- ``android.pm.get_public_key`` is the
               ``Certificate.getPublicKey`` equivalent, ``android.pm.
               get_manifest_digest`` reads MANIFEST.MF, ``android.env.
               get`` reads Build/sensor/network state, ``android.res.
               get_string`` reads strings.xml.

``java.*``     string/math library calls (``equals``, ``startsWith``...
               -- the equality methods the QC finder recognizes).

``bomb.*``     the runtime support BombDroid's injected code calls:
               salted hashing, key derivation, AES decryption, dynamic
               payload loading, and measurement markers.  In a real
               deployment the markers would not exist; here they feed
               the :class:`repro.vm.runtime.BombRegistry` that the
               evaluation harness reads.

Every call has a *cost weight* approximating its relative runtime
expense; the interpreter accumulates these into ``runtime.cost_units``,
which is the deterministic execution-time metric used by the Table 5
overhead experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.chaos.faults import fault_point
from repro.crypto import AES128, Salt, derive_key, encode_value, sha1_hex
from repro.errors import (
    BadPaddingError,
    ContainmentBreach,
    CryptoError,
    FaultInjected,
    PayloadError,
    ReproError,
    VMCrash,
    VMError,
)
from repro.vm.containment import fall_through
from repro.vm.sessions import ExecutionContext
from repro.vm.values import require_int, to_int32

#: Cost (in interpreter units) of each framework call, on top of the
#: 1-unit INVOKE itself.  Hashing and decryption are expensive, which is
#: why hot-method exclusion matters for overhead.
CALL_COSTS: Dict[str, int] = {
    "bomb.hash": 15,
    "bomb.derive": 15,
    "bomb.decrypt": 300,
    "bomb.load_run": 150,
    "bomb.sha1_hex": 80,
    "bomb.stego_extract": 20,
    # Mesh guard digests: the listed cost is the cached-lookup price;
    # the first computation per method adds _DIGEST_COST (method bodies
    # are immutable at runtime, so memoizing is sound and keeps guard
    # re-verification off the Table 5 overhead).
    "bomb.shape_digest": 5,
    "bomb.method_digest": 5,
    # A probe reads a tracer flag or compares the handler table to its
    # baseline -- cheap checks, priced accordingly (they run on every
    # inner-trigger evaluation of a meshed bomb).
    "bomb.probe": 3,
    "android.pm.get_method_hash": 120,
    "android.pm.get_public_key": 30,
    "android.pm.get_manifest_digest": 30,
    "android.pm.get_code_blob": 50,
    "android.res.get_string": 5,
    "android.env.get": 5,
}
_DEFAULT_COST = 2

#: Extra cost of actually hashing a method body on a digest-cache miss.
_DIGEST_COST = 115


class Framework:
    """Dispatcher for framework API calls."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self._handlers: Dict[str, Callable] = {}
        self._register_all()
        # Per-app alias symbols (mesh ALIASED prologue shape).  The
        # alias key rides in the installed package's resources, so a
        # repackaged copy keeps resolving -- only a copy that *removed*
        # resources would break, and that copy does not run at all.
        package = getattr(runtime, "package", None)
        resources = getattr(package, "resources", None) if package else None
        from repro.vm.aliases import alias_table_from_resources

        self._aliases: Dict[str, str] = alias_table_from_resources(resources)
        # Snapshot for the anti-hook probe: any later handler swap or
        # addition (API interception) flips ``bomb.probe("hooks")``.
        self._baseline_handlers: Dict[str, Callable] = dict(self._handlers)
        # Mesh guard digests, memoized per (kind, method): app method
        # bodies never change at runtime, so every guard re-verification
        # after the first is a cheap lookup.
        self._digest_cache: Dict[Tuple[str, str], str] = {}

    def call(self, name: str, args: List, ctx):
        """Dispatch one framework call.

        ``ctx`` is the caller's :class:`ExecutionContext`; a legacy
        mutable budget list is adopted in place (the cell is shared, so
        decrements stay visible to the list's owner).
        """
        if not isinstance(ctx, ExecutionContext):
            ctx = ExecutionContext.adopt(self._runtime, ctx)
        handler = self._handlers.get(name)
        if handler is None and name in self._aliases:
            name = self._aliases[name]
            handler = self._handlers.get(name)
        if handler is None:
            raise VMCrash(f"unknown method {name!r}")
        fault_point("vm.framework", device=self._runtime.device)
        self._runtime.cost_units += CALL_COSTS.get(name, _DEFAULT_COST)
        return handler(args, ctx)

    def resolve_entry(self, name: str, methods_gen: int):
        """Resolve ``name`` into an inline-cacheable framework entry.

        Returns ``(None, resolved_name, cost, methods_gen)`` -- alias
        resolution and cost are fixed at install time, so both are safe
        to cache; the generation counter guards against a later payload
        class shadowing the name under method-first dispatch.  The
        handler *function* is intentionally not part of the entry:
        :meth:`call_resolved` looks it up live so handler-table swaps
        (the hooking attack surface) behave exactly as uncached calls.
        Returns None for unknown names (never cached; the slow path
        raises the legacy VMCrash).
        """
        resolved = name
        if resolved not in self._handlers and resolved in self._aliases:
            resolved = self._aliases[resolved]
        if resolved not in self._handlers:
            return None
        return (None, resolved, CALL_COSTS.get(resolved, _DEFAULT_COST), methods_gen)

    def call_resolved(self, name: str, cost: int, args: List, ctx):
        """Invoke a pre-resolved framework entry (inline-cache hit path).

        Byte-identical to :meth:`call` after alias resolution: live
        handler lookup, the ``vm.framework`` fault point, then the
        cached cost weight.
        """
        handler = self._handlers.get(name)
        if handler is None:
            raise VMCrash(f"unknown method {name!r}")
        fault_point("vm.framework", device=self._runtime.device)
        self._runtime.cost_units += cost
        return handler(args, ctx)

    def knows(self, name: str) -> bool:
        return name in self._handlers or name in self._aliases

    def _register_all(self) -> None:
        register = self._handlers.__setitem__

        # -- android.* ------------------------------------------------------
        register("android.env.get", self._env_get)
        register("android.time.now", self._time_now)
        register("android.pm.get_public_key", self._get_public_key)
        register("android.pm.get_manifest_digest", self._get_manifest_digest)
        register("android.pm.get_code_blob", self._get_code_blob)
        register("android.res.get_string", self._res_get_string)
        register("android.log.i", self._log)
        register("android.ui.alert", self._alert)
        register("android.ui.toast", self._toast)
        register("android.net.report", self._report)
        register("android.reflect.call", self._reflect_call)

        # -- java.* ---------------------------------------------------------
        register("java.str.equals", self._str_equals)
        register("java.str.starts_with", self._str_starts_with)
        register("java.str.ends_with", self._str_ends_with)
        register("java.str.contains", self._str_contains)
        register("java.str.length", self._str_length)
        register("java.str.concat", self._str_concat)
        register("java.str.substring", self._str_substring)
        register("java.str.char_at", self._str_char_at)
        register("java.str.index_of", self._str_index_of)
        register("java.str.hash_code", self._str_hash_code)
        register("java.str.from_int", self._str_from_int)
        register("java.str.to_int", self._str_to_int)
        register("java.math.abs", self._math_abs)
        register("java.math.min", self._math_min)
        register("java.math.max", self._math_max)
        register("java.rand.next", self._rand_next)

        # -- bomb.* ----------------------------------------------------------
        register("bomb.hash", self._bomb_hash)
        register("bomb.sha1_hex", self._bomb_sha1_hex)
        register("bomb.stego_extract", self._bomb_stego_extract)
        register("android.pm.get_method_hash", self._get_method_hash)
        register("bomb.derive", self._bomb_derive)
        register("bomb.decrypt", self._bomb_decrypt)
        register("bomb.load_run", self._bomb_load_run)
        register("bomb.mark", self._bomb_mark)
        register("bomb.shape_digest", self._bomb_shape_digest)
        register("bomb.method_digest", self._bomb_method_digest)
        register("bomb.probe", self._bomb_probe)

    # ------------------------------------------------------------------
    # android.*
    # ------------------------------------------------------------------

    def _env_get(self, args, ctx):
        (name,) = args
        return self._runtime.device.get(name)

    def _time_now(self, args, ctx):
        return int(self._runtime.device.clock)

    def _get_public_key(self, args, ctx):
        """Hex fingerprint of the *installed* certificate's public key.

        The Android system manages the certificate after install; app
        code cannot change it (threat model, Section 2.1).
        """
        package = self._runtime.require_package("android.pm.get_public_key")
        return package.cert_fingerprint_hex

    def _get_manifest_digest(self, args, ctx):
        (entry,) = args
        package = self._runtime.require_package("android.pm.get_manifest_digest")
        digest = package.manifest_digests.get(entry)
        if digest is None:
            raise VMCrash(f"MANIFEST.MF has no entry {entry!r}")
        return digest

    def _get_code_blob(self, args, ctx):
        package = self._runtime.require_package("android.pm.get_code_blob")
        return package.code_blob

    def _res_get_string(self, args, ctx):
        (key,) = args
        package = self._runtime.require_package("android.res.get_string")
        value = package.resources.get(key)
        if value is None:
            raise VMCrash(f"strings.xml has no entry {key!r}")
        return value

    def _log(self, args, ctx):
        (message,) = args
        self._runtime.logs.append(str(message))
        return None

    def _alert(self, args, ctx):
        (message,) = args
        self._runtime.ui_effects.append(("alert", str(message)))
        return None

    def _toast(self, args, ctx):
        (message,) = args
        self._runtime.ui_effects.append(("toast", str(message)))
        return None

    def _report(self, args, ctx):
        """Deliver a developer report: record locally and, when the
        device has a report client, send it through the signed wire
        channel.  Delivery failures never crash the app -- the client
        spools and the local record stands either way."""
        (message,) = args
        runtime = self._runtime
        runtime.reports.append(str(message))
        client = runtime.report_client
        if client is not None:
            client.send_text(str(message), timestamp=runtime.device.clock)
        return None

    def _reflect_call(self, args, ctx):
        """Reflection: call a framework API whose name is a runtime string.

        This is how SSN hides ``getPublicKey`` -- and why checking the
        reflection destination (the instrumentation attack) reveals it.
        """
        name = args[0]
        if not isinstance(name, str):
            raise VMCrash("reflective call needs a string method name")
        self._runtime.reflection_log.append(name)
        return self.call(name, list(args[1:]), ctx)

    # ------------------------------------------------------------------
    # java.*
    # ------------------------------------------------------------------

    @staticmethod
    def _as_str(value, context: str) -> str:
        if not isinstance(value, str):
            raise VMCrash(f"{context}: expected string, got {type(value).__name__}")
        return value

    def _str_equals(self, args, ctx):
        a, b = args
        return isinstance(a, str) and isinstance(b, str) and a == b

    def _str_starts_with(self, args, ctx):
        a, b = args
        return self._as_str(a, "starts_with").startswith(self._as_str(b, "starts_with"))

    def _str_ends_with(self, args, ctx):
        a, b = args
        return self._as_str(a, "ends_with").endswith(self._as_str(b, "ends_with"))

    def _str_contains(self, args, ctx):
        a, b = args
        return self._as_str(b, "contains") in self._as_str(a, "contains")

    def _str_length(self, args, ctx):
        (a,) = args
        return len(self._as_str(a, "length"))

    def _str_concat(self, args, ctx):
        a, b = args
        if isinstance(b, int) and not isinstance(b, bool):
            b = str(b)
        return self._as_str(a, "concat") + self._as_str(b, "concat")

    def _str_substring(self, args, ctx):
        s, start, end = args
        s = self._as_str(s, "substring")
        start = require_int(start, "substring")
        end = require_int(end, "substring")
        if not 0 <= start <= end <= len(s):
            raise VMCrash(f"substring({start},{end}) out of bounds for length {len(s)}")
        return s[start:end]

    def _str_char_at(self, args, ctx):
        s, index = args
        s = self._as_str(s, "char_at")
        index = require_int(index, "char_at")
        if not 0 <= index < len(s):
            raise VMCrash(f"char_at({index}) out of bounds for length {len(s)}")
        return ord(s[index])

    def _str_index_of(self, args, ctx):
        s, needle = args
        return self._as_str(s, "index_of").find(self._as_str(needle, "index_of"))

    def _str_hash_code(self, args, ctx):
        """Java's String.hashCode: h = 31*h + c, wrapped to 32 bits."""
        (s,) = args
        result = 0
        for ch in self._as_str(s, "hash_code"):
            result = to_int32(31 * result + ord(ch))
        return result

    def _str_from_int(self, args, ctx):
        (value,) = args
        return str(require_int(value, "from_int"))

    def _str_to_int(self, args, ctx):
        (s,) = args
        try:
            return to_int32(int(self._as_str(s, "to_int")))
        except ValueError:
            raise VMCrash(f"cannot parse int from {s!r}") from None

    def _math_abs(self, args, ctx):
        (a,) = args
        return to_int32(abs(require_int(a, "abs")))

    def _math_min(self, args, ctx):
        a, b = args
        return min(require_int(a, "min"), require_int(b, "min"))

    def _math_max(self, args, ctx):
        a, b = args
        return max(require_int(a, "max"), require_int(b, "max"))

    def _rand_next(self, args, ctx):
        """Uniform int in [0, bound) -- SSN's probabilistic invocation."""
        (bound,) = args
        bound = require_int(bound, "rand.next")
        if bound <= 0:
            raise VMCrash("rand.next bound must be positive")
        return self._runtime.rng.randrange(bound)

    # ------------------------------------------------------------------
    # bomb.*
    # ------------------------------------------------------------------

    def _bomb_hash(self, args, ctx):
        """``Hash(X | salt)`` as a hex string; records HASH_EVALUATED.

        Unencodable runtime values (null, objects, arrays) can never
        equal the removed constant, so they hash to a sentinel that
        matches no stored digest instead of crashing the app.
        """
        value, salt_hex, bomb_id = args
        self._runtime.bombs.record(bomb_id, "evaluated")
        try:
            encoded = encode_value(value)
        except TypeError:
            return "00" * 20
        return sha1_hex(encoded + bytes.fromhex(salt_hex))

    def _bomb_derive(self, args, ctx):
        """AES key from the live trigger operand (never from a constant)."""
        value, salt_hex = args
        runtime = self._runtime
        try:
            key = derive_key(value, Salt(bytes.fromhex(salt_hex)))
            return fault_point("crypto.kdf.derive", key, device=runtime.device)
        except (TypeError, FaultInjected) as exc:
            if runtime.containment is not None:
                # Degrade to a key that cannot decrypt anything: the
                # failure is then attributed (with a bomb id) at the
                # decrypt boundary, where containment handles it.
                return b"\x00" * 16
            raise VMCrash(str(exc), site="crypto.kdf.derive") from None

    # -- containment boundary -------------------------------------------

    def _contain(self, bomb_id: str, site: str, exc, fallback):
        """Handle one bomb-infrastructure failure.

        Legacy (no policy): crash through, now with attribution.
        Contained: record ``payload_error``, feed the circuit breaker
        (``quarantined`` on trip), and return ``fallback`` so the
        instrumented site resumes with its original branch semantics.
        Strict policies re-raise as PayloadError after recording.
        """
        runtime = self._runtime
        policy = runtime.containment
        if policy is None:
            if isinstance(exc, VMCrash):
                raise exc
            raise VMCrash(
                f"bomb {bomb_id} failed at {site}: {exc}",
                bomb_id=bomb_id, site=site,
            ) from None
        runtime.bombs.record(bomb_id, "payload_error")
        if runtime.breaker.failure(bomb_id):
            runtime.bombs.record(bomb_id, "quarantined")
        if policy.strict:
            raise PayloadError(
                f"bomb {bomb_id} failed at {site}: {exc}",
                bomb_id=bomb_id, site=site,
            ) from exc
        return fallback

    def _bomb_decrypt(self, args, ctx):
        """Decrypt a payload blob; wrong keys crash (bad padding).

        Under containment a failed decrypt (or a quarantined bomb)
        yields the empty-blob sentinel, which ``bomb.load_run`` turns
        into a fall-through -- the host app never sees the failure.
        """
        ciphertext, key, bomb_id = args
        if not isinstance(ciphertext, bytes) or not isinstance(key, bytes):
            raise VMCrash("bomb.decrypt expects bytes arguments")
        runtime = self._runtime
        if runtime.containment is not None and runtime.breaker.is_quarantined(bomb_id):
            runtime.bombs.record(bomb_id, "payload_skipped")
            return b""
        try:
            ciphertext = fault_point(
                "crypto.aes.decrypt", ciphertext, device=runtime.device
            )
            blob = AES128(key).decrypt_cbc(ciphertext, b"\x00" * 16)
        except (BadPaddingError, CryptoError, FaultInjected) as exc:
            return self._contain(
                bomb_id,
                "crypto.aes.decrypt",
                VMCrash(
                    f"payload decryption failed: {exc}",
                    bomb_id=bomb_id, site="crypto.aes.decrypt",
                ),
                fallback=b"",
            )
        runtime.bombs.record(bomb_id, "outer_satisfied")
        return blob

    def _bomb_load_run(self, args, ctx):
        """Load a decrypted dex blob and run its entry with the register
        file array; returns the (possibly mutated) array.

        Loading is cached by blob digest ("the code decryption is
        one-time effort by caching it in memory", Section 8.4).

        This is the containment boundary around payload execution:
        load/deserialize failures and *accidental* interpretation
        failures are contained; deliberate responses (which record a
        ``responded`` marker first) always propagate.
        """
        blob, entry, register_array, bomb_id = args
        if not isinstance(blob, bytes):
            raise VMCrash("bomb.load_run expects a bytes blob")
        runtime = self._runtime
        policy = runtime.containment
        if policy is not None and (
            blob == b"" or runtime.breaker.is_quarantined(bomb_id)
        ):
            # Decrypt already contained this firing (or the bomb is
            # quarantined): resume original branch semantics.
            return fall_through(register_array)
        runtime.bombs.record(bomb_id, "payload_run")
        try:
            method = runtime.load_blob_method(blob, entry, bomb_id=bomb_id)
        except (VMCrash, FaultInjected) as exc:
            site = getattr(exc, "site", None) or "vm.classload"
            return self._contain(
                bomb_id, site, exc, fallback=fall_through(register_array)
            )
        responded_before = runtime.bombs.counts.get(bomb_id, {}).get("responded", 0)
        try:
            result = runtime.interpreter.execute_payload(
                method, [register_array], ctx, policy
            )
        except (VMError, FaultInjected) as exc:
            responded = runtime.bombs.counts.get(bomb_id, {}).get("responded", 0)
            if policy is None or responded > responded_before:
                # Deliberate response (crash / endless loop), or legacy
                # crash-through semantics: never contained.
                raise
            return self._contain(
                bomb_id,
                getattr(exc, "site", None) or "vm.interpreter",
                exc,
                fallback=fall_through(register_array),
            )
        except ReproError:
            raise
        except Exception as exc:  # pragma: no cover - library bug guard
            raise ContainmentBreach(
                f"non-library failure escaped bomb {bomb_id}: {exc!r}"
            ) from exc
        if policy is not None:
            runtime.breaker.success(bomb_id)
        return result

    def _bomb_sha1_hex(self, args, ctx):
        """SHA-1 of a string or bytes value, as hex (code scanning)."""
        (value,) = args
        if isinstance(value, str):
            value = value.encode("utf-8")
        if not isinstance(value, bytes):
            raise VMCrash("bomb.sha1_hex expects bytes or string")
        return sha1_hex(value)

    def _bomb_stego_extract(self, args, ctx):
        """Recover a hidden hex digest fragment from a carrier string.

        The extraction logic ships inside encrypted payload code, so an
        attacker staring at the suspicious-looking strings.xml entry
        still "does not know how to manipulate" it (Section 4.1).
        """
        from repro.apk.stego import extract_from_cover

        carrier, length = args
        if not isinstance(carrier, str):
            raise VMCrash("bomb.stego_extract expects a carrier string")
        try:
            return extract_from_cover(carrier, require_int(length, "stego_extract")).hex()
        except Exception as exc:
            raise VMCrash(f"stego extraction failed: {exc}") from None

    def _get_method_hash(self, args, ctx):
        """SHA-1 hex of a loaded method's instruction stream.

        Backs code-snippet scanning: a bomb can pin the integrity of
        another bomb's prologue (or any method) and detect the code
        instrumentation attack at runtime.
        """
        from repro.dex.hashing import method_instruction_hash

        (name,) = args
        method = self._runtime.find_method(str(name))
        if method is None:
            raise VMCrash(f"get_method_hash: no method {name!r}")
        return method_instruction_hash(method)

    def _bomb_shape_digest(self, args, ctx):
        """Bytes-masked digest of a loaded method (mesh cross-guards).

        Mesh guards live inside encrypted payloads and pin the *shape*
        of a peer bomb's host method -- opcodes, branches, string/int
        constants -- while ignoring bytes-constant contents, so peer
        ciphertext rewrites at protect time do not create a circular
        dependency.  A missing method returns the empty string, which
        matches no expected digest: deleting the peer's method trips
        the guard rather than crashing it.
        """
        from repro.dex.hashing import method_shape_hash

        (name,) = args
        key = ("shape", str(name))
        cached = self._digest_cache.get(key)
        if cached is not None:
            return cached
        self._runtime.cost_units += _DIGEST_COST
        method = self._runtime.find_method(str(name))
        digest = "" if method is None else method_shape_hash(method)
        self._digest_cache[key] = digest
        return digest

    def _bomb_method_digest(self, args, ctx):
        """Full-content digest of a loaded method (mesh content pins).

        Same as ``android.pm.get_method_hash`` but tolerant of a
        missing method (returns ``""`` so the guard compare fails and
        trips instead of crashing inside the payload).  Content pins
        catch ciphertext *blanking*, which the shape digest by design
        does not see.
        """
        from repro.dex.hashing import method_instruction_hash

        (name,) = args
        key = ("content", str(name))
        cached = self._digest_cache.get(key)
        if cached is not None:
            return cached
        self._runtime.cost_units += _DIGEST_COST
        method = self._runtime.find_method(str(name))
        digest = "" if method is None else method_instruction_hash(method)
        self._digest_cache[key] = digest
        return digest

    def _bomb_probe(self, args, ctx):
        """Anti-analysis probes usable as inner triggers.

        ``debugger``: a tracer (the :class:`repro.vm.debugger.Debugger`
        attack surface) is attached to this runtime.
        ``hooks``: the framework handler table differs from its
        post-install baseline -- the vtable-hijack / API-interception
        surface of :mod:`repro.attacks.hooking`.

        Probes return environment *facts*; the emitted trigger code
        OR-combines them with the probabilistic inner condition, so a
        probed bomb evaluates detection whenever analysis tooling is
        present, regardless of the device-population draw.
        """
        (kind,) = args
        runtime = self._runtime
        if kind == "debugger":
            return getattr(runtime, "tracer", None) is not None
        if kind == "hooks":
            base = self._baseline_handlers
            if set(self._handlers) != set(base):
                return True
            return any(self._handlers[name] is not base[name] for name in base)
        raise VMCrash(f"unknown probe kind {kind!r}")

    def _bomb_mark(self, args, ctx):
        """Measurement marker emitted by generated payload code."""
        bomb_id, kind = args
        self._runtime.bombs.record(bomb_id, kind)
        if kind == "detected":
            self._runtime.detections.append(bomb_id)
        return None
