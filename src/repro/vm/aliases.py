"""Per-app alias symbols for the bomb runtime helpers.

The mesh planner's ALIASED prologue shape routes the trigger invokes
(``bomb.hash``, ``bomb.derive``, ...) through per-app derived names so
the Listing-3 anchor string stops being a constant across apps -- a
single-pattern text match on ``bomb.hash`` no longer finds every site.

The derivation is shared between the protector (which emits the aliased
invokes) and the runtime (whose :class:`~repro.vm.framework.Framework`
must resolve them back).  The only secret is a per-app *alias key*: a
random hex string stored under an innocuous ``strings.xml`` entry, so
it survives attacker repackaging (resources must be preserved or the
app breaks) while naming nothing greppable.  Knowing the scheme without
the key does not help: the alias of ``bomb.hash`` is
``sha1(key | name)`` and therefore different in every app.

Alias class names use a lowercase ``u<hex>`` prefix; app classes in the
corpus are capitalized, so the interpreter's method-first dispatch never
shadows an alias with a real app method.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.crypto import sha1_hex

#: strings.xml key carrying the per-app alias key.  Deliberately shaped
#: like ordinary app configuration.
ALIAS_RESOURCE_KEY = "sync_profile"

#: Framework calls the ALIASED prologue shape may rename.  All of them
#: appear only in bomb prologues (main dex); payload-internal calls stay
#: canonical because payloads are ciphertext anyway.
ALIASABLE_APIS = (
    "bomb.hash",
    "bomb.derive",
    "bomb.decrypt",
    "bomb.load_run",
)


def derive_alias(alias_key: str, name: str) -> str:
    """The per-app alias symbol for framework call ``name``."""
    digest = sha1_hex(f"{alias_key}|{name}".encode("utf-8"))
    return f"u{digest[:6]}.a{digest[6:12]}"


def alias_table(alias_key: str) -> Dict[str, str]:
    """Mapping ``alias -> canonical name`` for one app's alias key."""
    return {derive_alias(alias_key, name): name for name in ALIASABLE_APIS}


def alias_table_from_resources(
    resources: Optional[Mapping[str, str]],
) -> Dict[str, str]:
    """Alias table for an installed package's resources; empty when the
    app ships no alias key (unmeshed apps, baselines)."""
    if not resources:
        return {}
    alias_key = resources.get(ALIAS_RESOURCE_KEY)
    if not alias_key:
        return {}
    return alias_table(str(alias_key))
