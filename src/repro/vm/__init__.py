"""Execution substrate: a register-machine VM standing in for ART.

Components:

``values``       runtime value helpers (32-bit int semantics, instances)
``device``       device/environment profiles and the population sampler
                 (the diversity that inner triggers exploit)
``events``       UI event model consumed by fuzzers and play sessions
``framework``    the Android-framework API surface (``android.*``,
                 ``java.*`` and the ``bomb.*`` helpers)
``dispatch``     the dispatch-table compiler (superinstruction fusion,
                 inline-cache call sites) behind the table engine
``interpreter``  the bytecode interpreter with tracing hooks
``reference``    the pre-dispatch-table loop, kept as semantic oracle
``sessions``     ExecutionContext/SessionResult (the session API) and
                 the batched real-play-session engine
``runtime``      class loading (including dynamic loading of decrypted
                 bomb payloads), static state, app installation
``containment``  graceful degradation for bomb-infrastructure failures
                 (ContainmentPolicy, per-bomb circuit breaker)
"""

from repro.vm.values import Instance, to_int32, truthy
from repro.vm.device import (
    DeviceProfile,
    DevicePopulation,
    ENV_DOMAINS,
    attacker_lab_profiles,
)
from repro.vm.events import Event, EventKind, handler_name_for
from repro.vm.interpreter import (
    CompositeTracer,
    CountingTracer,
    CoverageTracer,
    Interpreter,
    Tracer,
)
from repro.vm.sessions import (
    ExecutionContext,
    PlayOutcome,
    SessionEngine,
    SessionResult,
)
from repro.vm.containment import CircuitBreaker, ContainmentPolicy, fall_through
from repro.vm.runtime import Runtime, BombRegistry, BombEvent

__all__ = [
    "CompositeTracer",
    "ExecutionContext",
    "PlayOutcome",
    "SessionEngine",
    "SessionResult",
    "Instance",
    "to_int32",
    "truthy",
    "DeviceProfile",
    "DevicePopulation",
    "ENV_DOMAINS",
    "attacker_lab_profiles",
    "Event",
    "EventKind",
    "handler_name_for",
    "Interpreter",
    "Tracer",
    "CoverageTracer",
    "CountingTracer",
    "CircuitBreaker",
    "ContainmentPolicy",
    "fall_through",
    "Runtime",
    "BombRegistry",
    "BombEvent",
]
