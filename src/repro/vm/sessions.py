"""First-class execution sessions and the batched play-session engine.

Historically every execution entry point threaded a *mutable budget
list* (``budget: List[int]``) through the interpreter, the framework
and back -- an implementation detail promoted to an API.  This module
replaces that plumbing:

:class:`ExecutionContext`
    One execution scope: a budget, optional extra tracers, an optional
    containment-policy override.  Created by ``Runtime.session(...)``.
    Works as a context manager (tracers/policy attach on entry, detach
    on exit) and offers measured entry points -- :meth:`invoke`,
    :meth:`run`, :meth:`dispatch` -- that return a
    :class:`SessionResult` instead of a bare value.

:class:`SessionResult`
    Return value plus the things callers previously re-derived by
    diffing runtime state: instructions consumed, cost units, budget
    remaining, and the bomb-registry events ("trips") recorded during
    the call.

:class:`SessionEngine`
    Batched *real* play sessions -- boot, event stream, crash handling
    -- replicating the exact per-session protocol of
    ``OutcomeModel.calibrate`` (same seeds, same device draws, same
    budgets) so fleet calibration and opt-in real-session fleets share
    one engine instead of each reimplementing the loop.

The old ``Interpreter.run`` / ``run_payload`` signatures survive as
deprecated shims (see :mod:`repro.vm.interpreter`) for one release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.faults import fault_point
from repro.errors import MethodNotFound, VMError
from repro.vm.events import Event, handler_name_for

#: Distinguishes "no policy override" from "override with None"
#: (= legacy crash-through semantics) in ExecutionContext.
_UNSET = object()


@dataclass(frozen=True)
class SessionResult:
    """What one measured execution did."""

    value: object              #: the method's return value
    instructions: int          #: instructions interpreted during the call
    cost: int                  #: cost units accrued (Table 5 metric)
    remaining: int             #: budget left in the context afterwards
    trips: tuple               #: BombEvents recorded during the call

    def trip_kinds(self) -> Tuple[str, ...]:
        return tuple(event.kind for event in self.trips)


class ExecutionContext:
    """One execution scope: budget cell + tracers + policy override.

    The budget is still a shared mutable cell under the hood (nested
    frames and payload sub-budgets charge the same counter, exactly as
    before) but callers never see the list -- they read
    :attr:`consumed` / :attr:`remaining` and get per-call numbers from
    :class:`SessionResult`.

    Entering the context (``with`` or any measured call) registers the
    context's tracers with the runtime and, when a ``policy`` override
    was given, swaps the runtime's containment policy and gives it a
    fresh circuit breaker; exiting restores both.  Entry is reentrant,
    so nesting measured calls inside a ``with`` block attaches once.
    """

    __slots__ = (
        "runtime", "budget", "_initial", "_tracers", "_policy",
        "_entered", "_saved",
    )

    def __init__(self, runtime, budget: Optional[int] = None, tracers=(), policy=_UNSET):
        self.runtime = runtime
        cell = [budget if budget is not None else runtime.default_budget]
        self.budget = cell
        self._initial = cell[0]
        self._tracers = tuple(tracers)
        self._policy = policy
        self._entered = 0
        self._saved = None

    @classmethod
    def adopt(cls, runtime, cell: List[int]) -> "ExecutionContext":
        """Wrap an existing mutable budget cell (legacy-shim bridge).

        The cell is shared, not copied: decrements made through the
        context remain visible to whoever owns the list.
        """
        ctx = cls.__new__(cls)
        ctx.runtime = runtime
        ctx.budget = cell
        ctx._initial = cell[0]
        ctx._tracers = ()
        ctx._policy = _UNSET
        ctx._entered = 0
        ctx._saved = None
        return ctx

    # -- budget accounting ------------------------------------------------

    @property
    def consumed(self) -> int:
        """Instructions charged to this context so far.

        The interpreter decrements before the exhaustion check, so the
        cell rests at -1 after a BudgetExhausted; clamping makes
        ``consumed`` equal the instructions actually interpreted.
        """
        return self._initial - max(self.budget[0], 0)

    @property
    def remaining(self) -> int:
        return max(self.budget[0], 0)

    # -- attach / detach --------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        if self._entered == 0:
            self._attach()
        self._entered += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._entered -= 1
        if self._entered == 0:
            self._detach()
        return False

    def _attach(self) -> None:
        runtime = self.runtime
        for tracer in self._tracers:
            runtime.add_tracer(tracer)
        if self._policy is not _UNSET:
            from repro.vm.containment import CircuitBreaker

            policy = self._policy
            self._saved = (runtime.containment, runtime.breaker)
            runtime.containment = policy
            runtime.breaker = CircuitBreaker(
                policy.max_consecutive_failures if policy else 0
            )

    def _detach(self) -> None:
        runtime = self.runtime
        for tracer in self._tracers:
            runtime.remove_tracer(tracer)
        if self._saved is not None:
            runtime.containment, runtime.breaker = self._saved
            self._saved = None

    # -- measured entry points --------------------------------------------

    def _measure(self, fn) -> SessionResult:
        runtime = self.runtime
        with self:
            cost_before = runtime.cost_units
            consumed_before = self.consumed
            events_before = len(runtime.bombs.events)
            value = fn()
            return SessionResult(
                value=value,
                instructions=self.consumed - consumed_before,
                cost=runtime.cost_units - cost_before,
                remaining=self.remaining,
                trips=tuple(runtime.bombs.events[events_before:]),
            )

    def run(self, method, args=()) -> SessionResult:
        """Execute a :class:`DexMethod` under this context's budget."""
        runtime = self.runtime
        return self._measure(
            lambda: runtime.interpreter.execute(method, list(args), self)
        )

    def invoke(self, qualified_name: str, args=()) -> SessionResult:
        """Invoke a loaded method by name (the session-API entry point)."""
        runtime = self.runtime
        method = runtime.find_method(qualified_name)
        if method is None:
            raise MethodNotFound(qualified_name)

        def go():
            tracer = runtime.tracer
            if tracer is not None:
                tracer.on_invoke(qualified_name, list(args))
            return runtime.interpreter.execute(method, list(args), self)

        return self._measure(go)

    def dispatch(self, event: Event) -> SessionResult:
        """Deliver one UI event to its handler, advancing the clock."""
        runtime = self.runtime
        handler = f"{event.target_class}.{handler_name_for(event.kind)}"
        if runtime.find_method(handler) is None:
            raise MethodNotFound(handler)
        fault_point("vm.clock", device=runtime.device)
        runtime.device.advance(Event.DURATION)
        return self.invoke(handler, list(event.args))

    def boot(self) -> List[SessionResult]:
        """Run every class's zero-arg ``main`` entry (app start)."""
        runtime = self.runtime
        results = []
        with self:
            for name in sorted(runtime._methods):
                if name.endswith(".main") and runtime._methods[name].params == 0:
                    results.append(self.invoke(name))
        return results


# ---------------------------------------------------------------------------
# Batched play sessions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlayOutcome:
    """Everything one real interpreted play session observed."""

    index: int                 #: session index within the batch
    seed: int                  #: runtime/generator seed the session used
    events: int                #: UI events delivered (incl. wasted/crashed)
    wasted: int                #: events with no handler in the app
    crashes: int               #: VMError-terminated dispatches
    instructions: int          #: instructions interpreted across the session
    cost: int                  #: cost units accrued (Table 5 metric)
    reports: Tuple[str, ...]   #: developer reports the app emitted
    detections: Tuple[str, ...]  #: bomb ids that recorded ``detected``
    alerts: int                #: "alert" UI effects (bad-experience signal)
    bomb_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    clock: float = 0.0         #: device clock at session end

    @property
    def reported(self) -> bool:
        return bool(self.reports)

    @property
    def bad_experience(self) -> bool:
        return bool(self.detections) or self.alerts > 0


class SessionEngine:
    """Drives batches of *real* interpreted play sessions.

    One engine holds the decoded app (dex + install view) so per-session
    cost is just a fresh :class:`Runtime` over shared method objects --
    whose compiled bodies (``method._compiled``) are shared too, which
    is what makes thousands of sessions per second possible.

    The per-session protocol is byte-compatible with what
    ``OutcomeModel.calibrate`` always did: device drawn from a seeded
    :class:`DevicePopulation`, runtime seeded ``seed * 100 + index``,
    boot with VM errors swallowed, then a seeded Dynodroid event stream
    where handlerless events are wasted and crashes are counted but do
    not end the session.
    """

    def __init__(
        self,
        apk=None,
        *,
        dex=None,
        package=None,
        seed: int = 0,
        events: int = 350,
        budget: Optional[int] = None,
    ) -> None:
        if dex is None:
            if apk is None:
                raise ValueError("SessionEngine needs an apk or a dex")
            dex = apk.dex()
        if package is None and apk is not None:
            package = apk.install_view()
        self.dex = dex
        self.package = package
        self.seed = seed
        self.events = events
        self.budget = budget

    def play_one(
        self, index: int, device=None, events: Optional[int] = None
    ) -> PlayOutcome:
        """Run one full session; ``index`` keys the seeds.

        Without an explicit ``device`` the session draws the first
        sample of a population seeded ``seed * 100 + index`` -- a
        deterministic per-session device, independent of every other
        session (fleet-style use).  Calibration passes devices drawn
        in order from one shared population instead.
        """
        from repro.fuzzing.generators import DynodroidGenerator
        from repro.vm.device import DevicePopulation
        from repro.vm.runtime import Runtime

        session_seed = self.seed * 100 + index
        if device is None:
            device = DevicePopulation(seed=session_seed).sample()
        runtime = Runtime(
            self.dex, device=device, package=self.package, seed=session_seed,
        )
        event_count = self.events if events is None else events
        wasted = crashes = instructions = 0
        try:
            runtime.boot()
        except VMError:
            pass
        for event in DynodroidGenerator(self.dex, seed=session_seed).stream(
            event_count
        ):
            ctx = runtime.session(budget=self.budget)
            try:
                ctx.dispatch(event)
            except MethodNotFound:
                wasted += 1
            except VMError:
                crashes += 1
            finally:
                instructions += ctx.consumed
        return PlayOutcome(
            index=index,
            seed=session_seed,
            events=event_count,
            wasted=wasted,
            crashes=crashes,
            instructions=instructions,
            cost=runtime.cost_units,
            reports=tuple(runtime.reports),
            detections=tuple(runtime.detections),
            alerts=sum(1 for kind, _ in runtime.ui_effects if kind == "alert"),
            bomb_counts={k: dict(v) for k, v in runtime.bombs.counts.items()},
            clock=runtime.device.clock,
        )

    def play(self, sessions: int, events: Optional[int] = None) -> List[PlayOutcome]:
        """Run ``sessions`` calibration-style sessions.

        Devices are drawn *in order* from one population seeded with the
        engine seed -- the exact draw sequence calibration always used.
        """
        from repro.vm.device import DevicePopulation

        population = DevicePopulation(seed=self.seed)
        return [
            self.play_one(index, device=population.sample(), events=events)
            for index in range(sessions)
        ]
