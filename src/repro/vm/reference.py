"""The reference interpreter: the pre-dispatch-table execution loop.

This is the original decode-as-you-go register-machine loop, kept
verbatim (modulo the :class:`~repro.vm.sessions.ExecutionContext`
threading every engine now uses) as the *semantic oracle*:

* the differential test suite executes the full instrumented corpus on
  both engines and asserts bit-identical results -- return values,
  instruction counts, bomb stats, containment trips, tracer streams;
* the VM benchmark reports the dispatch-table engine's speedup against
  this loop, which is the pre-PR baseline.

Select it with ``Runtime(..., engine="reference")``.  It intentionally
has no compiled-body cache, no superinstructions and no inline caches:
every step re-decodes, every branch resolves through the label map,
every INVOKE probes the method table.
"""

from __future__ import annotations

from typing import List

from repro.dex.model import DexMethod
from repro.dex.opcodes import Op
from repro.errors import BudgetExhausted, VMCrash
from repro.vm.dispatch import _COMPARES, _ZERO_TESTS
from repro.vm.interpreter import MAX_CALL_DEPTH, _EngineBase
from repro.vm.sessions import ExecutionContext
from repro.vm.values import Instance, require_int, to_int32


class ReferenceInterpreter(_EngineBase):
    """Executes methods by direct interpretation (no compilation)."""

    def execute(self, method: DexMethod, args: List, ctx: ExecutionContext, depth: int = 0):
        budget = ctx.budget
        if depth > MAX_CALL_DEPTH:
            raise VMCrash(f"call depth exceeded at {method.qualified_name}")
        if len(args) != method.params:
            raise VMCrash(
                f"{method.qualified_name} takes {method.params} args, got {len(args)}"
            )
        registers: List = [None] * method.registers
        registers[: len(args)] = args
        instructions = method.instructions
        labels = method.label_map()
        runtime = self._runtime
        tracer = runtime.tracer
        pc = 0
        count = len(instructions)

        while pc < count:
            instr = instructions[pc]
            op = instr.op
            if op is Op.LABEL:
                pc += 1
                continue
            budget[0] -= 1
            if budget[0] < 0:
                raise BudgetExhausted(f"instruction budget exhausted in {method.qualified_name}")
            runtime.cost_units += 1
            if tracer is not None:
                tracer.on_instr(method, pc, instr)

            if op is Op.CONST:
                registers[instr.dst] = instr.value
            elif op is Op.MOVE:
                registers[instr.dst] = registers[instr.a]
            elif op is Op.ADD:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "add") + require_int(registers[instr.b], "add")
                )
            elif op is Op.SUB:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "sub") - require_int(registers[instr.b], "sub")
                )
            elif op is Op.MUL:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "mul") * require_int(registers[instr.b], "mul")
                )
            elif op is Op.DIV:
                divisor = require_int(registers[instr.b], "div")
                if divisor == 0:
                    raise VMCrash(f"division by zero in {method.qualified_name}@{pc}")
                registers[instr.dst] = to_int32(
                    int(require_int(registers[instr.a], "div") / divisor)
                )
            elif op is Op.REM:
                divisor = require_int(registers[instr.b], "rem")
                if divisor == 0:
                    raise VMCrash(f"remainder by zero in {method.qualified_name}@{pc}")
                dividend = require_int(registers[instr.a], "rem")
                registers[instr.dst] = to_int32(dividend - int(dividend / divisor) * divisor)
            elif op is Op.AND:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "and") & require_int(registers[instr.b], "and")
                )
            elif op is Op.OR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "or") | require_int(registers[instr.b], "or")
                )
            elif op is Op.XOR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "xor") ^ require_int(registers[instr.b], "xor")
                )
            elif op is Op.SHL:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "shl")
                    << (require_int(registers[instr.b], "shl") & 31)
                )
            elif op is Op.SHR:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "shr")
                    >> (require_int(registers[instr.b], "shr") & 31)
                )
            elif op is Op.NEG:
                registers[instr.dst] = to_int32(-require_int(registers[instr.a], "neg"))
            elif op is Op.NOT:
                value = registers[instr.a]
                if isinstance(value, bool):
                    registers[instr.dst] = not value
                else:
                    registers[instr.dst] = to_int32(~require_int(value, "not"))
            elif op is Op.CMP:
                left = registers[instr.a]
                right = registers[instr.b]
                registers[instr.dst] = (left > right) - (left < right)
            elif op is Op.ADD_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "add_lit") + instr.value
                )
            elif op is Op.SUB_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "sub_lit") - instr.value
                )
            elif op is Op.MUL_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "mul_lit") * instr.value
                )
            elif op is Op.DIV_LIT:
                if instr.value == 0:
                    raise VMCrash(f"division by zero literal in {method.qualified_name}@{pc}")
                registers[instr.dst] = to_int32(
                    int(require_int(registers[instr.a], "div_lit") / instr.value)
                )
            elif op is Op.REM_LIT:
                if instr.value == 0:
                    raise VMCrash(f"remainder by zero literal in {method.qualified_name}@{pc}")
                dividend = require_int(registers[instr.a], "rem_lit")
                registers[instr.dst] = to_int32(
                    dividend - int(dividend / instr.value) * instr.value
                )
            elif op is Op.AND_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "and_lit") & instr.value
                )
            elif op is Op.OR_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "or_lit") | instr.value
                )
            elif op is Op.XOR_LIT:
                registers[instr.dst] = to_int32(
                    require_int(registers[instr.a], "xor_lit") ^ instr.value
                )
            elif op is Op.GOTO:
                pc = labels[instr.target]
                continue
            elif op in _COMPARES:
                taken = _COMPARES[op](registers[instr.a], registers[instr.b])
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, taken)
                if taken:
                    pc = labels[instr.target]
                    continue
            elif op in _ZERO_TESTS:
                taken = _ZERO_TESTS[op](registers[instr.a])
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, taken)
                if taken:
                    pc = labels[instr.target]
                    continue
            elif op is Op.SWITCH:
                key = registers[instr.a]
                if isinstance(key, bool):
                    key = int(key)
                target = instr.value.get(key)
                if tracer is not None:
                    tracer.on_branch(method, pc, instr, target is not None)
                if target is not None:
                    pc = labels[target]
                    continue
            elif op is Op.RETURN:
                return registers[instr.a]
            elif op is Op.RETURN_VOID:
                return None
            elif op is Op.THROW:
                raise VMCrash(str(registers[instr.a]))
            elif op is Op.NEW_INSTANCE:
                registers[instr.dst] = runtime.new_instance(instr.value)
            elif op is Op.IGET:
                obj = registers[instr.a]
                if not isinstance(obj, Instance):
                    raise VMCrash(f"iget on non-object in {method.qualified_name}@{pc}")
                registers[instr.dst] = obj.get(instr.value)
            elif op is Op.IPUT:
                obj = registers[instr.b]
                if not isinstance(obj, Instance):
                    raise VMCrash(f"iput on non-object in {method.qualified_name}@{pc}")
                obj.put(instr.value, registers[instr.a])
            elif op is Op.SGET:
                registers[instr.dst] = runtime.sget(instr.value)
            elif op is Op.SPUT:
                runtime.sput(instr.value, registers[instr.a])
            elif op is Op.NEW_ARRAY:
                length = require_int(registers[instr.a], "new_array")
                if length < 0 or length > 1 << 24:
                    raise VMCrash(f"bad array length {length}")
                registers[instr.dst] = [None] * length
            elif op is Op.AGET:
                array = registers[instr.a]
                index = require_int(registers[instr.b], "aget")
                if not isinstance(array, list):
                    raise VMCrash(f"aget on non-array in {method.qualified_name}@{pc}")
                if not 0 <= index < len(array):
                    raise VMCrash(f"array index {index} out of bounds ({len(array)})")
                registers[instr.dst] = array[index]
            elif op is Op.APUT:
                array = registers[instr.dst]
                index = require_int(registers[instr.b], "aput")
                if not isinstance(array, list):
                    raise VMCrash(f"aput on non-array in {method.qualified_name}@{pc}")
                if not 0 <= index < len(array):
                    raise VMCrash(f"array index {index} out of bounds ({len(array)})")
                array[index] = registers[instr.a]
            elif op is Op.ARRAY_LEN:
                array = registers[instr.a]
                if not isinstance(array, list):
                    raise VMCrash(f"array_len on non-array in {method.qualified_name}@{pc}")
                registers[instr.dst] = len(array)
            elif op is Op.INVOKE:
                call_args = [registers[r] for r in instr.args]
                if tracer is not None:
                    tracer.on_invoke(instr.value, call_args)
                target = runtime.find_method(instr.value)
                if target is not None:
                    result = self.execute(target, call_args, ctx, depth + 1)
                else:
                    result = runtime.framework.call(instr.value, call_args, ctx)
                if instr.dst is not None:
                    registers[instr.dst] = result
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - unreachable with a complete ISA
                raise VMCrash(f"unimplemented opcode {op!r}")
            pc += 1

        raise VMCrash(f"{method.qualified_name}: control fell off the end of the method")
