"""The developer's aggregated decision states.

Historically exported as ``repro.userside.aggregation.AggregatedVerdict``
(still re-exported there); the enum lives here so the report pipeline
does not depend back on the user-side simulation package.
"""

from __future__ import annotations

import enum


class AggregatedVerdict(enum.Enum):
    CLEAN = "clean"
    SUSPECT = "suspect"          # a few reports; below action threshold
    TAKEDOWN = "takedown"        # enough evidence for a market request
