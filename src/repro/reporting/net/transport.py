"""Device-side TCP transport for :class:`~repro.reporting.client.ReportClient`.

A ``ReportClient`` takes any callable ``transport(signed) -> SubmitStatus``
and handles retry/backoff/spooling when it raises
:class:`~repro.errors.TransportError`.  :class:`TcpTransport` is that
callable over a real socket: encode the report as one DRPT frame, send
it, read back the one status byte the service answers per frame.  Every
network failure -- refused connect, reset, EOF mid-read, a chaos-armed
``net.partition`` -- collapses into ``TransportError``, so the client's
retry semantics carry over a socket unchanged.

**Cluster failover is the transport's job, not the client's.**  The
endpoint may be:

* a single ``(host, port)`` pair,
* a *list* of pairs (the cluster's known endpoints; the transport
  rotates to the next on a connect failure, so a dead leader costs one
  failed attempt, not a dead client), or
* a callable returning ``(host, port)`` (a fleet re-points thousands of
  logical clients at a promoted follower by rebinding one cell).

A fenced stale leader answers ``NOT_LEADER`` followed by a redirect
payload (``epoch | new endpoint``); the transport re-points itself and
retries the same frame against the new leader *within the same call*,
bounded by ``redirect_budget``.  The budget is deliberately distinct
from the client's retry/backoff budget: a redirect is not a failure --
no backoff is charged, and the client's ``max_attempts`` is untouched --
so spooled reports drain through a failover in one ``flush()`` pass.
Exactly-once holds because ``NOT_LEADER`` is answered *before* the
frame reaches the server: a redirected resend is the report's first
arrival anywhere, and the promoted leader's recovered dedup window
absorbs any frame the old leader had already accepted.

Chaos integration: ``net.partition`` (raise mode) severs the link
before the frame leaves, ``net.slow_link`` (latency mode) advances the
transport's virtual link clock -- the fleet charges that skew to the
device's report timestamps rather than sleeping, keeping chaotic runs
replayable from their seed.
"""

from __future__ import annotations

import socket
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.chaos.faults import fault_point
from repro.errors import FaultInjected, TransportError, WireError
from repro.reporting.net.framing import decode_redirect, decode_status
from repro.reporting.server import SubmitStatus
from repro.reporting.wire import SignedReport, encode_report

Endpoint = Union[
    Tuple[str, int],
    Sequence[Tuple[str, int]],
    Callable[[], Tuple[str, int]],
]

#: ``>Q epoch | >H len`` -- fixed part of a NOT_LEADER redirect payload.
_REDIRECT_HEADER = 10


class _LinkClock:
    """Accumulates ``net.slow_link`` skew (the latency-mode ``device``)."""

    __slots__ = ("skew",)

    def __init__(self) -> None:
        self.skew = 0.0

    def advance(self, seconds: float) -> None:
        self.skew += seconds


class TcpTransport:
    """One persistent client connection to the ingest cluster."""

    def __init__(
        self,
        endpoint: Endpoint,
        *,
        timeout: float = 10.0,
        redirect_budget: int = 2,
    ) -> None:
        self._endpoint_fn: Optional[Callable[[], Tuple[str, int]]] = None
        self._targets: List[Tuple[str, int]] = []
        self._active = 0
        if callable(endpoint):
            self._endpoint_fn = endpoint
        elif endpoint and isinstance(endpoint[0], (tuple, list)):
            self._targets = [(host, int(port)) for host, port in endpoint]
        else:
            host, port = endpoint  # type: ignore[misc]
            self._targets = [(host, int(port))]
        self.timeout = timeout
        self.redirect_budget = redirect_budget
        self._sock: Optional[socket.socket] = None
        self._link = _LinkClock()
        #: Severed-link count (``net.partition`` fires).
        self.partitions = 0
        #: NOT_LEADER redirects followed across the transport's lifetime.
        self.redirects = 0
        #: Highest epoch any redirect carried (0 before the first).
        self.last_epoch = 0
        # Endpoint learned from a redirect; overrides the configured
        # target until the next redirect (or a connect failure to it).
        self._redirect: Optional[Tuple[str, int]] = None

    @property
    def delay_injected(self) -> float:
        """Total virtual seconds of ``net.slow_link`` skew injected."""
        return self._link.skew

    def endpoint(self) -> Tuple[str, int]:
        if self._redirect is not None:
            return self._redirect
        if self._endpoint_fn is not None:
            return self._endpoint_fn()
        return self._targets[self._active % len(self._targets)]

    def __call__(self, signed: SignedReport) -> SubmitStatus:
        try:
            fault_point("net.partition")
        except FaultInjected:
            self.close()
            self.partitions += 1
            raise TransportError("link partitioned") from None
        fault_point("net.slow_link", device=self._link)
        frame = encode_report(signed)
        redirects_left = self.redirect_budget
        while True:
            try:
                status, redirect = self._send_frame(frame)
            except OSError as exc:
                self.close()
                self._rotate()
                raise TransportError(f"report transport failed: {exc}") from exc
            if status is not SubmitStatus.NOT_LEADER:
                return status
            self._follow_redirect(redirect)
            if redirects_left <= 0:
                # The cluster keeps pointing elsewhere: surface it as a
                # transport failure so the client's backoff takes over
                # (by then the redirect target is already re-pointed).
                raise TransportError(
                    f"redirect budget exhausted at epoch {self.last_epoch}"
                )
            redirects_left -= 1

    def _send_frame(
        self, frame: bytes
    ) -> Tuple[SubmitStatus, Optional[Tuple[int, str]]]:
        sock = self._connect()
        sock.sendall(frame)
        answer = self._recv_status(sock)
        if answer is None:
            # EOF instead of a status byte: server died under us.
            self.close()
            raise TransportError("server closed the connection mid-report")
        return answer

    def send_many(self, frames: List[bytes]) -> List[SubmitStatus]:
        """Pipeline many frames in one write; statuses come back in order.

        The bench uses this to measure service-side throughput without
        a per-frame client round trip.  NOT_LEADER answers are re-sent
        once to the redirect target; their statuses are overwritten in
        place (a NOT_LEADER frame never reached the old server, so the
        resend is its first arrival).
        """
        if not frames:
            return []
        statuses, retry = self._pipeline(frames)
        if retry:
            self.close()
            retry_statuses, still = self._pipeline([frames[i] for i in retry])
            for position, status in zip(retry, retry_statuses):
                statuses[position] = status
        return statuses

    def _pipeline(
        self, frames: List[bytes]
    ) -> Tuple[List[SubmitStatus], List[int]]:
        try:
            sock = self._connect()
            sock.sendall(b"".join(frames))
            statuses: List[SubmitStatus] = []
            retry: List[int] = []
            for position in range(len(frames)):
                answer = self._recv_status(sock)
                if answer is None:
                    self.close()
                    raise TransportError("server closed mid-pipeline")
                status, redirect = answer
                if status is SubmitStatus.NOT_LEADER:
                    self._follow_redirect(redirect)
                    retry.append(position)
                statuses.append(status)
            return statuses, retry
        except OSError as exc:
            self.close()
            self._rotate()
            raise TransportError(f"pipelined transport failed: {exc}") from exc

    def _recv_status(
        self, sock: socket.socket
    ) -> Optional[Tuple[SubmitStatus, Optional[Tuple[int, str]]]]:
        data = sock.recv(1)
        if not data:
            return None
        try:
            status = decode_status(data[0])
        except WireError as exc:
            self.close()
            raise TransportError(str(exc)) from exc
        if status is not SubmitStatus.NOT_LEADER:
            return status, None
        # A NOT_LEADER byte is followed by its redirect payload.
        header = self._recv_exact(sock, _REDIRECT_HEADER)
        endpoint_len = int.from_bytes(header[8:10], "big")
        payload = header + self._recv_exact(sock, endpoint_len)
        try:
            epoch, endpoint = decode_redirect(payload)
        except WireError as exc:
            self.close()
            raise TransportError(str(exc)) from exc
        return status, (epoch, endpoint)

    def _recv_exact(self, sock: socket.socket, count: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            data = sock.recv(count - len(chunks))
            if not data:
                self.close()
                raise TransportError("server closed mid-redirect")
            chunks.extend(data)
        return bytes(chunks)

    def _follow_redirect(self, redirect: Optional[Tuple[int, str]]) -> None:
        """Re-point at the endpoint a NOT_LEADER answer named."""
        self.close()
        self.redirects += 1
        if redirect is None:
            return
        epoch, endpoint = redirect
        if epoch > self.last_epoch:
            self.last_epoch = epoch
        if endpoint:
            from repro.reporting.net.framing import parse_endpoint

            try:
                self._redirect = parse_endpoint(endpoint)
            except WireError:
                self._redirect = None

    def _rotate(self) -> None:
        """Advance to the next configured endpoint after a failure.

        A failed redirect target falls back to the configured list --
        the transport never wedges itself on a dead endpoint it was
        redirected to.
        """
        if self._redirect is not None:
            self._redirect = None
            return
        if len(self._targets) > 1:
            self._active = (self._active + 1) % len(self._targets)

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.endpoint(), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
