"""Device-side TCP transport for :class:`~repro.reporting.client.ReportClient`.

A ``ReportClient`` takes any callable ``transport(signed) -> SubmitStatus``
and handles retry/backoff/spooling when it raises
:class:`~repro.errors.TransportError`.  :class:`TcpTransport` is that
callable over a real socket: encode the report as one DRPT frame, send
it, read back the one status byte the service answers per frame.  Every
network failure -- refused connect, reset, EOF mid-read, a chaos-armed
``net.partition`` -- collapses into ``TransportError``, so the client's
retry semantics carry over a socket unchanged.

The endpoint may be a callable returning ``(host, port)`` so a fleet
can re-point thousands of logical clients at a promoted follower by
rebinding one cell; the transport drops its cached connection whenever
a send fails and redials the *current* endpoint on the next attempt.

Chaos integration: ``net.partition`` (raise mode) severs the link
before the frame leaves, ``net.slow_link`` (latency mode) advances the
transport's virtual link clock -- the fleet charges that skew to the
device's report timestamps rather than sleeping, keeping chaotic runs
replayable from their seed.
"""

from __future__ import annotations

import socket
from typing import Callable, List, Optional, Tuple, Union

from repro.chaos.faults import fault_point
from repro.errors import FaultInjected, TransportError, WireError
from repro.reporting.net.framing import decode_status
from repro.reporting.server import SubmitStatus
from repro.reporting.wire import SignedReport, encode_report

Endpoint = Union[Tuple[str, int], Callable[[], Tuple[str, int]]]


class _LinkClock:
    """Accumulates ``net.slow_link`` skew (the latency-mode ``device``)."""

    __slots__ = ("skew",)

    def __init__(self) -> None:
        self.skew = 0.0

    def advance(self, seconds: float) -> None:
        self.skew += seconds


class TcpTransport:
    """One persistent client connection to the ingest service."""

    def __init__(self, endpoint: Endpoint, *, timeout: float = 10.0) -> None:
        self._endpoint = endpoint
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._link = _LinkClock()
        #: Severed-link count (``net.partition`` fires).
        self.partitions = 0

    @property
    def delay_injected(self) -> float:
        """Total virtual seconds of ``net.slow_link`` skew injected."""
        return self._link.skew

    def endpoint(self) -> Tuple[str, int]:
        target = self._endpoint
        return target() if callable(target) else target

    def __call__(self, signed: SignedReport) -> SubmitStatus:
        try:
            fault_point("net.partition")
        except FaultInjected:
            self.close()
            self.partitions += 1
            raise TransportError("link partitioned") from None
        fault_point("net.slow_link", device=self._link)
        frame = encode_report(signed)
        try:
            return self._send_frame(frame)
        except OSError as exc:
            self.close()
            raise TransportError(f"report transport failed: {exc}") from exc

    def _send_frame(self, frame: bytes) -> SubmitStatus:
        sock = self._connect()
        sock.sendall(frame)
        status = self._recv_status(sock)
        if status is None:
            # EOF instead of a status byte: server died under us.
            self.close()
            raise TransportError("server closed the connection mid-report")
        return status

    def send_many(self, frames: List[bytes]) -> List[SubmitStatus]:
        """Pipeline many frames in one write; statuses come back in order.

        The bench uses this to measure service-side throughput without
        a per-frame client round trip.
        """
        if not frames:
            return []
        try:
            sock = self._connect()
            sock.sendall(b"".join(frames))
            statuses: List[SubmitStatus] = []
            for _ in frames:
                status = self._recv_status(sock)
                if status is None:
                    self.close()
                    raise TransportError("server closed mid-pipeline")
                statuses.append(status)
            return statuses
        except OSError as exc:
            self.close()
            raise TransportError(f"pipelined transport failed: {exc}") from exc

    def _recv_status(self, sock: socket.socket) -> Optional[SubmitStatus]:
        data = sock.recv(1)
        if not data:
            return None
        try:
            return decode_status(data[0])
        except WireError as exc:
            self.close()
            raise TransportError(str(exc)) from exc

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.endpoint(), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
